module add64 (
    input  wire a0,
    input  wire a1,
    input  wire a2,
    input  wire a3,
    input  wire a4,
    input  wire a5,
    input  wire a6,
    input  wire a7,
    input  wire a8,
    input  wire a9,
    input  wire a10,
    input  wire a11,
    input  wire a12,
    input  wire a13,
    input  wire a14,
    input  wire a15,
    input  wire a16,
    input  wire a17,
    input  wire a18,
    input  wire a19,
    input  wire a20,
    input  wire a21,
    input  wire a22,
    input  wire a23,
    input  wire a24,
    input  wire a25,
    input  wire a26,
    input  wire a27,
    input  wire a28,
    input  wire a29,
    input  wire a30,
    input  wire a31,
    input  wire a32,
    input  wire a33,
    input  wire a34,
    input  wire a35,
    input  wire a36,
    input  wire a37,
    input  wire a38,
    input  wire a39,
    input  wire a40,
    input  wire a41,
    input  wire a42,
    input  wire a43,
    input  wire a44,
    input  wire a45,
    input  wire a46,
    input  wire a47,
    input  wire a48,
    input  wire a49,
    input  wire a50,
    input  wire a51,
    input  wire a52,
    input  wire a53,
    input  wire a54,
    input  wire a55,
    input  wire a56,
    input  wire a57,
    input  wire a58,
    input  wire a59,
    input  wire a60,
    input  wire a61,
    input  wire a62,
    input  wire a63,
    input  wire b0,
    input  wire b1,
    input  wire b2,
    input  wire b3,
    input  wire b4,
    input  wire b5,
    input  wire b6,
    input  wire b7,
    input  wire b8,
    input  wire b9,
    input  wire b10,
    input  wire b11,
    input  wire b12,
    input  wire b13,
    input  wire b14,
    input  wire b15,
    input  wire b16,
    input  wire b17,
    input  wire b18,
    input  wire b19,
    input  wire b20,
    input  wire b21,
    input  wire b22,
    input  wire b23,
    input  wire b24,
    input  wire b25,
    input  wire b26,
    input  wire b27,
    input  wire b28,
    input  wire b29,
    input  wire b30,
    input  wire b31,
    input  wire b32,
    input  wire b33,
    input  wire b34,
    input  wire b35,
    input  wire b36,
    input  wire b37,
    input  wire b38,
    input  wire b39,
    input  wire b40,
    input  wire b41,
    input  wire b42,
    input  wire b43,
    input  wire b44,
    input  wire b45,
    input  wire b46,
    input  wire b47,
    input  wire b48,
    input  wire b49,
    input  wire b50,
    input  wire b51,
    input  wire b52,
    input  wire b53,
    input  wire b54,
    input  wire b55,
    input  wire b56,
    input  wire b57,
    input  wire b58,
    input  wire b59,
    input  wire b60,
    input  wire b61,
    input  wire b62,
    input  wire b63,
    input  wire cin,
    output wire s0,
    output wire s1,
    output wire s2,
    output wire s3,
    output wire s4,
    output wire s5,
    output wire s6,
    output wire s7,
    output wire s8,
    output wire s9,
    output wire s10,
    output wire s11,
    output wire s12,
    output wire s13,
    output wire s14,
    output wire s15,
    output wire s16,
    output wire s17,
    output wire s18,
    output wire s19,
    output wire s20,
    output wire s21,
    output wire s22,
    output wire s23,
    output wire s24,
    output wire s25,
    output wire s26,
    output wire s27,
    output wire s28,
    output wire s29,
    output wire s30,
    output wire s31,
    output wire s32,
    output wire s33,
    output wire s34,
    output wire s35,
    output wire s36,
    output wire s37,
    output wire s38,
    output wire s39,
    output wire s40,
    output wire s41,
    output wire s42,
    output wire s43,
    output wire s44,
    output wire s45,
    output wire s46,
    output wire s47,
    output wire s48,
    output wire s49,
    output wire s50,
    output wire s51,
    output wire s52,
    output wire s53,
    output wire s54,
    output wire s55,
    output wire s56,
    output wire s57,
    output wire s58,
    output wire s59,
    output wire s60,
    output wire s61,
    output wire s62,
    output wire s63,
    output wire cout
);
    wire n129;
    wire n131;
    wire n134;
    wire n136;
    wire n139;
    wire n141;
    wire n144;
    wire n146;
    wire n149;
    wire n151;
    wire n154;
    wire n156;
    wire n159;
    wire n161;
    wire n164;
    wire n166;
    wire n169;
    wire n171;
    wire n174;
    wire n176;
    wire n179;
    wire n181;
    wire n184;
    wire n186;
    wire n189;
    wire n191;
    wire n194;
    wire n196;
    wire n199;
    wire n201;
    wire n204;
    wire n206;
    wire n209;
    wire n211;
    wire n214;
    wire n216;
    wire n219;
    wire n221;
    wire n224;
    wire n226;
    wire n229;
    wire n231;
    wire n234;
    wire n236;
    wire n239;
    wire n241;
    wire n244;
    wire n246;
    wire n249;
    wire n251;
    wire n254;
    wire n256;
    wire n259;
    wire n261;
    wire n264;
    wire n266;
    wire n269;
    wire n271;
    wire n274;
    wire n276;
    wire n279;
    wire n281;
    wire n284;
    wire n286;
    wire n289;
    wire n291;
    wire n294;
    wire n296;
    wire n299;
    wire n301;
    wire n304;
    wire n306;
    wire n309;
    wire n311;
    wire n314;
    wire n316;
    wire n319;
    wire n321;
    wire n324;
    wire n326;
    wire n329;
    wire n331;
    wire n334;
    wire n336;
    wire n339;
    wire n341;
    wire n344;
    wire n346;
    wire n349;
    wire n351;
    wire n354;
    wire n356;
    wire n359;
    wire n361;
    wire n364;
    wire n366;
    wire n369;
    wire n371;
    wire n374;
    wire n376;
    wire n379;
    wire n381;
    wire n384;
    wire n386;
    wire n389;
    wire n391;
    wire n394;
    wire n396;
    wire n399;
    wire n401;
    wire n404;
    wire n406;
    wire n409;
    wire n411;
    wire n414;
    wire n416;
    wire n419;
    wire n421;
    wire n424;
    wire n426;
    wire n429;
    wire n431;
    wire n434;
    wire n436;
    wire n439;
    wire n441;
    wire n444;
    wire n446;
    wire n130;
    wire n132;
    wire n133;
    wire n135;
    wire n137;
    wire n138;
    wire n140;
    wire n142;
    wire n143;
    wire n145;
    wire n147;
    wire n148;
    wire n150;
    wire n152;
    wire n153;
    wire n155;
    wire n157;
    wire n158;
    wire n160;
    wire n162;
    wire n163;
    wire n165;
    wire n167;
    wire n168;
    wire n170;
    wire n172;
    wire n173;
    wire n175;
    wire n177;
    wire n178;
    wire n180;
    wire n182;
    wire n183;
    wire n185;
    wire n187;
    wire n188;
    wire n190;
    wire n192;
    wire n193;
    wire n195;
    wire n197;
    wire n198;
    wire n200;
    wire n202;
    wire n203;
    wire n205;
    wire n207;
    wire n208;
    wire n210;
    wire n212;
    wire n213;
    wire n215;
    wire n217;
    wire n218;
    wire n220;
    wire n222;
    wire n223;
    wire n225;
    wire n227;
    wire n228;
    wire n230;
    wire n232;
    wire n233;
    wire n235;
    wire n237;
    wire n238;
    wire n240;
    wire n242;
    wire n243;
    wire n245;
    wire n247;
    wire n248;
    wire n250;
    wire n252;
    wire n253;
    wire n255;
    wire n257;
    wire n258;
    wire n260;
    wire n262;
    wire n263;
    wire n265;
    wire n267;
    wire n268;
    wire n270;
    wire n272;
    wire n273;
    wire n275;
    wire n277;
    wire n278;
    wire n280;
    wire n282;
    wire n283;
    wire n285;
    wire n287;
    wire n288;
    wire n290;
    wire n292;
    wire n293;
    wire n295;
    wire n297;
    wire n298;
    wire n300;
    wire n302;
    wire n303;
    wire n305;
    wire n307;
    wire n308;
    wire n310;
    wire n312;
    wire n313;
    wire n315;
    wire n317;
    wire n318;
    wire n320;
    wire n322;
    wire n323;
    wire n325;
    wire n327;
    wire n328;
    wire n330;
    wire n332;
    wire n333;
    wire n335;
    wire n337;
    wire n338;
    wire n340;
    wire n342;
    wire n343;
    wire n345;
    wire n347;
    wire n348;
    wire n350;
    wire n352;
    wire n353;
    wire n355;
    wire n357;
    wire n358;
    wire n360;
    wire n362;
    wire n363;
    wire n365;
    wire n367;
    wire n368;
    wire n370;
    wire n372;
    wire n373;
    wire n375;
    wire n377;
    wire n378;
    wire n380;
    wire n382;
    wire n383;
    wire n385;
    wire n387;
    wire n388;
    wire n390;
    wire n392;
    wire n393;
    wire n395;
    wire n397;
    wire n398;
    wire n400;
    wire n402;
    wire n403;
    wire n405;
    wire n407;
    wire n408;
    wire n410;
    wire n412;
    wire n413;
    wire n415;
    wire n417;
    wire n418;
    wire n420;
    wire n422;
    wire n423;
    wire n425;
    wire n427;
    wire n428;
    wire n430;
    wire n432;
    wire n433;
    wire n435;
    wire n437;
    wire n438;
    wire n440;
    wire n442;
    wire n443;
    wire n445;
    wire n447;
    wire n448;
    xor g0 (n129, a0, b0);
    and g1 (n131, a0, b0);
    xor g2 (n134, a1, b1);
    and g3 (n136, a1, b1);
    xor g4 (n139, a2, b2);
    and g5 (n141, a2, b2);
    xor g6 (n144, a3, b3);
    and g7 (n146, a3, b3);
    xor g8 (n149, a4, b4);
    and g9 (n151, a4, b4);
    xor g10 (n154, a5, b5);
    and g11 (n156, a5, b5);
    xor g12 (n159, a6, b6);
    and g13 (n161, a6, b6);
    xor g14 (n164, a7, b7);
    and g15 (n166, a7, b7);
    xor g16 (n169, a8, b8);
    and g17 (n171, a8, b8);
    xor g18 (n174, a9, b9);
    and g19 (n176, a9, b9);
    xor g20 (n179, a10, b10);
    and g21 (n181, a10, b10);
    xor g22 (n184, a11, b11);
    and g23 (n186, a11, b11);
    xor g24 (n189, a12, b12);
    and g25 (n191, a12, b12);
    xor g26 (n194, a13, b13);
    and g27 (n196, a13, b13);
    xor g28 (n199, a14, b14);
    and g29 (n201, a14, b14);
    xor g30 (n204, a15, b15);
    and g31 (n206, a15, b15);
    xor g32 (n209, a16, b16);
    and g33 (n211, a16, b16);
    xor g34 (n214, a17, b17);
    and g35 (n216, a17, b17);
    xor g36 (n219, a18, b18);
    and g37 (n221, a18, b18);
    xor g38 (n224, a19, b19);
    and g39 (n226, a19, b19);
    xor g40 (n229, a20, b20);
    and g41 (n231, a20, b20);
    xor g42 (n234, a21, b21);
    and g43 (n236, a21, b21);
    xor g44 (n239, a22, b22);
    and g45 (n241, a22, b22);
    xor g46 (n244, a23, b23);
    and g47 (n246, a23, b23);
    xor g48 (n249, a24, b24);
    and g49 (n251, a24, b24);
    xor g50 (n254, a25, b25);
    and g51 (n256, a25, b25);
    xor g52 (n259, a26, b26);
    and g53 (n261, a26, b26);
    xor g54 (n264, a27, b27);
    and g55 (n266, a27, b27);
    xor g56 (n269, a28, b28);
    and g57 (n271, a28, b28);
    xor g58 (n274, a29, b29);
    and g59 (n276, a29, b29);
    xor g60 (n279, a30, b30);
    and g61 (n281, a30, b30);
    xor g62 (n284, a31, b31);
    and g63 (n286, a31, b31);
    xor g64 (n289, a32, b32);
    and g65 (n291, a32, b32);
    xor g66 (n294, a33, b33);
    and g67 (n296, a33, b33);
    xor g68 (n299, a34, b34);
    and g69 (n301, a34, b34);
    xor g70 (n304, a35, b35);
    and g71 (n306, a35, b35);
    xor g72 (n309, a36, b36);
    and g73 (n311, a36, b36);
    xor g74 (n314, a37, b37);
    and g75 (n316, a37, b37);
    xor g76 (n319, a38, b38);
    and g77 (n321, a38, b38);
    xor g78 (n324, a39, b39);
    and g79 (n326, a39, b39);
    xor g80 (n329, a40, b40);
    and g81 (n331, a40, b40);
    xor g82 (n334, a41, b41);
    and g83 (n336, a41, b41);
    xor g84 (n339, a42, b42);
    and g85 (n341, a42, b42);
    xor g86 (n344, a43, b43);
    and g87 (n346, a43, b43);
    xor g88 (n349, a44, b44);
    and g89 (n351, a44, b44);
    xor g90 (n354, a45, b45);
    and g91 (n356, a45, b45);
    xor g92 (n359, a46, b46);
    and g93 (n361, a46, b46);
    xor g94 (n364, a47, b47);
    and g95 (n366, a47, b47);
    xor g96 (n369, a48, b48);
    and g97 (n371, a48, b48);
    xor g98 (n374, a49, b49);
    and g99 (n376, a49, b49);
    xor g100 (n379, a50, b50);
    and g101 (n381, a50, b50);
    xor g102 (n384, a51, b51);
    and g103 (n386, a51, b51);
    xor g104 (n389, a52, b52);
    and g105 (n391, a52, b52);
    xor g106 (n394, a53, b53);
    and g107 (n396, a53, b53);
    xor g108 (n399, a54, b54);
    and g109 (n401, a54, b54);
    xor g110 (n404, a55, b55);
    and g111 (n406, a55, b55);
    xor g112 (n409, a56, b56);
    and g113 (n411, a56, b56);
    xor g114 (n414, a57, b57);
    and g115 (n416, a57, b57);
    xor g116 (n419, a58, b58);
    and g117 (n421, a58, b58);
    xor g118 (n424, a59, b59);
    and g119 (n426, a59, b59);
    xor g120 (n429, a60, b60);
    and g121 (n431, a60, b60);
    xor g122 (n434, a61, b61);
    and g123 (n436, a61, b61);
    xor g124 (n439, a62, b62);
    and g125 (n441, a62, b62);
    xor g126 (n444, a63, b63);
    and g127 (n446, a63, b63);
    xor g128 (n130, n129, cin);
    and g129 (n132, n129, cin);
    or g130 (n133, n131, n132);
    buf g131 (s0, n130);
    xor g132 (n135, n134, n133);
    and g133 (n137, n134, n133);
    or g134 (n138, n136, n137);
    buf g135 (s1, n135);
    xor g136 (n140, n139, n138);
    and g137 (n142, n139, n138);
    or g138 (n143, n141, n142);
    buf g139 (s2, n140);
    xor g140 (n145, n144, n143);
    and g141 (n147, n144, n143);
    or g142 (n148, n146, n147);
    buf g143 (s3, n145);
    xor g144 (n150, n149, n148);
    and g145 (n152, n149, n148);
    or g146 (n153, n151, n152);
    buf g147 (s4, n150);
    xor g148 (n155, n154, n153);
    and g149 (n157, n154, n153);
    or g150 (n158, n156, n157);
    buf g151 (s5, n155);
    xor g152 (n160, n159, n158);
    and g153 (n162, n159, n158);
    or g154 (n163, n161, n162);
    buf g155 (s6, n160);
    xor g156 (n165, n164, n163);
    and g157 (n167, n164, n163);
    or g158 (n168, n166, n167);
    buf g159 (s7, n165);
    xor g160 (n170, n169, n168);
    and g161 (n172, n169, n168);
    or g162 (n173, n171, n172);
    buf g163 (s8, n170);
    xor g164 (n175, n174, n173);
    and g165 (n177, n174, n173);
    or g166 (n178, n176, n177);
    buf g167 (s9, n175);
    xor g168 (n180, n179, n178);
    and g169 (n182, n179, n178);
    or g170 (n183, n181, n182);
    buf g171 (s10, n180);
    xor g172 (n185, n184, n183);
    and g173 (n187, n184, n183);
    or g174 (n188, n186, n187);
    buf g175 (s11, n185);
    xor g176 (n190, n189, n188);
    and g177 (n192, n189, n188);
    or g178 (n193, n191, n192);
    buf g179 (s12, n190);
    xor g180 (n195, n194, n193);
    and g181 (n197, n194, n193);
    or g182 (n198, n196, n197);
    buf g183 (s13, n195);
    xor g184 (n200, n199, n198);
    and g185 (n202, n199, n198);
    or g186 (n203, n201, n202);
    buf g187 (s14, n200);
    xor g188 (n205, n204, n203);
    and g189 (n207, n204, n203);
    or g190 (n208, n206, n207);
    buf g191 (s15, n205);
    xor g192 (n210, n209, n208);
    and g193 (n212, n209, n208);
    or g194 (n213, n211, n212);
    buf g195 (s16, n210);
    xor g196 (n215, n214, n213);
    and g197 (n217, n214, n213);
    or g198 (n218, n216, n217);
    buf g199 (s17, n215);
    xor g200 (n220, n219, n218);
    and g201 (n222, n219, n218);
    or g202 (n223, n221, n222);
    buf g203 (s18, n220);
    xor g204 (n225, n224, n223);
    and g205 (n227, n224, n223);
    or g206 (n228, n226, n227);
    buf g207 (s19, n225);
    xor g208 (n230, n229, n228);
    and g209 (n232, n229, n228);
    or g210 (n233, n231, n232);
    buf g211 (s20, n230);
    xor g212 (n235, n234, n233);
    and g213 (n237, n234, n233);
    or g214 (n238, n236, n237);
    buf g215 (s21, n235);
    xor g216 (n240, n239, n238);
    and g217 (n242, n239, n238);
    or g218 (n243, n241, n242);
    buf g219 (s22, n240);
    xor g220 (n245, n244, n243);
    and g221 (n247, n244, n243);
    or g222 (n248, n246, n247);
    buf g223 (s23, n245);
    xor g224 (n250, n249, n248);
    and g225 (n252, n249, n248);
    or g226 (n253, n251, n252);
    buf g227 (s24, n250);
    xor g228 (n255, n254, n253);
    and g229 (n257, n254, n253);
    or g230 (n258, n256, n257);
    buf g231 (s25, n255);
    xor g232 (n260, n259, n258);
    and g233 (n262, n259, n258);
    or g234 (n263, n261, n262);
    buf g235 (s26, n260);
    xor g236 (n265, n264, n263);
    and g237 (n267, n264, n263);
    or g238 (n268, n266, n267);
    buf g239 (s27, n265);
    xor g240 (n270, n269, n268);
    and g241 (n272, n269, n268);
    or g242 (n273, n271, n272);
    buf g243 (s28, n270);
    xor g244 (n275, n274, n273);
    and g245 (n277, n274, n273);
    or g246 (n278, n276, n277);
    buf g247 (s29, n275);
    xor g248 (n280, n279, n278);
    and g249 (n282, n279, n278);
    or g250 (n283, n281, n282);
    buf g251 (s30, n280);
    xor g252 (n285, n284, n283);
    and g253 (n287, n284, n283);
    or g254 (n288, n286, n287);
    buf g255 (s31, n285);
    xor g256 (n290, n289, n288);
    and g257 (n292, n289, n288);
    or g258 (n293, n291, n292);
    buf g259 (s32, n290);
    xor g260 (n295, n294, n293);
    and g261 (n297, n294, n293);
    or g262 (n298, n296, n297);
    buf g263 (s33, n295);
    xor g264 (n300, n299, n298);
    and g265 (n302, n299, n298);
    or g266 (n303, n301, n302);
    buf g267 (s34, n300);
    xor g268 (n305, n304, n303);
    and g269 (n307, n304, n303);
    or g270 (n308, n306, n307);
    buf g271 (s35, n305);
    xor g272 (n310, n309, n308);
    and g273 (n312, n309, n308);
    or g274 (n313, n311, n312);
    buf g275 (s36, n310);
    xor g276 (n315, n314, n313);
    and g277 (n317, n314, n313);
    or g278 (n318, n316, n317);
    buf g279 (s37, n315);
    xor g280 (n320, n319, n318);
    and g281 (n322, n319, n318);
    or g282 (n323, n321, n322);
    buf g283 (s38, n320);
    xor g284 (n325, n324, n323);
    and g285 (n327, n324, n323);
    or g286 (n328, n326, n327);
    buf g287 (s39, n325);
    xor g288 (n330, n329, n328);
    and g289 (n332, n329, n328);
    or g290 (n333, n331, n332);
    buf g291 (s40, n330);
    xor g292 (n335, n334, n333);
    and g293 (n337, n334, n333);
    or g294 (n338, n336, n337);
    buf g295 (s41, n335);
    xor g296 (n340, n339, n338);
    and g297 (n342, n339, n338);
    or g298 (n343, n341, n342);
    buf g299 (s42, n340);
    xor g300 (n345, n344, n343);
    and g301 (n347, n344, n343);
    or g302 (n348, n346, n347);
    buf g303 (s43, n345);
    xor g304 (n350, n349, n348);
    and g305 (n352, n349, n348);
    or g306 (n353, n351, n352);
    buf g307 (s44, n350);
    xor g308 (n355, n354, n353);
    and g309 (n357, n354, n353);
    or g310 (n358, n356, n357);
    buf g311 (s45, n355);
    xor g312 (n360, n359, n358);
    and g313 (n362, n359, n358);
    or g314 (n363, n361, n362);
    buf g315 (s46, n360);
    xor g316 (n365, n364, n363);
    and g317 (n367, n364, n363);
    or g318 (n368, n366, n367);
    buf g319 (s47, n365);
    xor g320 (n370, n369, n368);
    and g321 (n372, n369, n368);
    or g322 (n373, n371, n372);
    buf g323 (s48, n370);
    xor g324 (n375, n374, n373);
    and g325 (n377, n374, n373);
    or g326 (n378, n376, n377);
    buf g327 (s49, n375);
    xor g328 (n380, n379, n378);
    and g329 (n382, n379, n378);
    or g330 (n383, n381, n382);
    buf g331 (s50, n380);
    xor g332 (n385, n384, n383);
    and g333 (n387, n384, n383);
    or g334 (n388, n386, n387);
    buf g335 (s51, n385);
    xor g336 (n390, n389, n388);
    and g337 (n392, n389, n388);
    or g338 (n393, n391, n392);
    buf g339 (s52, n390);
    xor g340 (n395, n394, n393);
    and g341 (n397, n394, n393);
    or g342 (n398, n396, n397);
    buf g343 (s53, n395);
    xor g344 (n400, n399, n398);
    and g345 (n402, n399, n398);
    or g346 (n403, n401, n402);
    buf g347 (s54, n400);
    xor g348 (n405, n404, n403);
    and g349 (n407, n404, n403);
    or g350 (n408, n406, n407);
    buf g351 (s55, n405);
    xor g352 (n410, n409, n408);
    and g353 (n412, n409, n408);
    or g354 (n413, n411, n412);
    buf g355 (s56, n410);
    xor g356 (n415, n414, n413);
    and g357 (n417, n414, n413);
    or g358 (n418, n416, n417);
    buf g359 (s57, n415);
    xor g360 (n420, n419, n418);
    and g361 (n422, n419, n418);
    or g362 (n423, n421, n422);
    buf g363 (s58, n420);
    xor g364 (n425, n424, n423);
    and g365 (n427, n424, n423);
    or g366 (n428, n426, n427);
    buf g367 (s59, n425);
    xor g368 (n430, n429, n428);
    and g369 (n432, n429, n428);
    or g370 (n433, n431, n432);
    buf g371 (s60, n430);
    xor g372 (n435, n434, n433);
    and g373 (n437, n434, n433);
    or g374 (n438, n436, n437);
    buf g375 (s61, n435);
    xor g376 (n440, n439, n438);
    and g377 (n442, n439, n438);
    or g378 (n443, n441, n442);
    buf g379 (s62, n440);
    xor g380 (n445, n444, n443);
    and g381 (n447, n444, n443);
    or g382 (n448, n446, n447);
    buf g383 (s63, n445);
    buf g384 (cout, n448);
endmodule
