//! Cross-validation between independent substrates: each pair of engines
//! must agree on the quantities they both compute.

use sft::atpg::{generate_test, generate_test_set, TestResult, TestSetOptions};
use sft::bdd::{circuit_bdds, Manager};
use sft::circuits::builders;
use sft::delay::{enumerate_paths, robust_count_for_pair, robust_detection_masks, TwoPatternSim};
use sft::netlist::{Circuit, GateKind};
use sft::sim::{campaign, fault_list, CampaignConfig, SimEngine};
use sft::truth::TruthTable;

/// PODEM and exhaustive random simulation agree on which faults are
/// detectable in a fully exercisable circuit.
#[test]
fn podem_agrees_with_saturating_campaign() {
    let c = builders::ripple_carry_adder(4); // 9 inputs: 512 patterns saturate
    let faults = fault_list(&c);
    let r = campaign(
        &c,
        &faults,
        &CampaignConfig { max_patterns: 1 << 15, plateau: 0, seed: 1, ..Default::default() },
    );
    for (fault, det) in faults.iter().zip(&r.detection_pattern) {
        let podem = generate_test(&c, *fault, 100_000);
        match (det, &podem) {
            (Some(_), TestResult::Test(_)) => {}
            (None, TestResult::Untestable) => {}
            other => panic!("fault {fault}: campaign vs PODEM disagree: {other:?}"),
        }
    }
}

/// The 6 faults the Table-6 campaign leaves undetected on `irs_h`
/// (coverage 0.9922 at 65,536 patterns) are all **testable but
/// random-pattern-resistant**: PODEM finds a test for every one (none is
/// redundant — consistent with the suite preparation having already
/// removed redundancies), so the residual coverage gap is a property of
/// the pattern budget, not of the circuit. Each PODEM test is
/// cross-checked in the fault simulator. Recorded in EXPERIMENTS.md.
#[test]
fn irs_h_undetected_faults_are_random_resistant_not_redundant() {
    let entry = sft::circuits::suite()
        .into_iter()
        .find(|e| e.name == "irs_h")
        .expect("irs_h is in the suite");
    let faults = fault_list(&entry.circuit);
    let r = campaign(
        &entry.circuit,
        &faults,
        &CampaignConfig { max_patterns: 1 << 16, plateau: 0, seed: 0x5f7, ..Default::default() },
    );
    // Both fault-simulation engines must agree on the full Table-6 run.
    let wide = campaign(
        &entry.circuit,
        &faults,
        &CampaignConfig {
            max_patterns: 1 << 16,
            plateau: 0,
            seed: 0x5f7,
            engine: SimEngine::Wide,
            ..Default::default()
        },
    );
    assert_eq!(r, wide, "ctrace and wide engines must agree on irs_h");
    let undetected: Vec<_> = faults
        .iter()
        .zip(&r.detection_pattern)
        .filter(|(_, det)| det.is_none())
        .map(|(f, _)| *f)
        .collect();
    assert_eq!(undetected.len(), 6, "the Table-6 residue must be stable");
    let mut fsim = sft::sim::FaultSim::new(&entry.circuit);
    for fault in undetected {
        let TestResult::Test(assignment) = generate_test(&entry.circuit, fault, 2_000_000) else {
            panic!("undetected fault {fault} must be testable (random-resistant), not redundant");
        };
        // Cross-substrate check: the PODEM vector really detects the fault
        // under parallel-pattern fault simulation.
        let words: Vec<u64> = assignment.iter().map(|&bit| if bit { !0u64 } else { 0 }).collect();
        let masks = fsim.detect_masks(&[fault], &words);
        assert_ne!(masks[0] & 1, 0, "PODEM test for {fault} must detect it in the simulator");
    }
}

/// BDD satisfy counts agree with truth-table on-set sizes for every output
/// of structural circuits.
#[test]
fn bdd_sat_count_agrees_with_truth_tables() {
    let c = builders::comparator(3); // 6 inputs
    let mut manager = Manager::new();
    let outputs = circuit_bdds(&mut manager, &c).unwrap();
    for (slot, &f) in outputs.iter().enumerate() {
        let table = TruthTable::from_fn(6, |m| {
            let assignment: Vec<bool> = (0..6).map(|i| m >> (5 - i) & 1 == 1).collect();
            c.eval_assignment(&assignment)[slot]
        });
        // Input i maps to BDD variable i; the truth-table MSB convention
        // reverses bit order, which sat_count does not care about.
        assert_eq!(manager.sat_count(f, 6), u128::from(table.on_count()), "output {slot}");
    }
}

/// The generated compact test set achieves exactly the campaign's
/// saturated coverage on an exhaustively-coverable circuit.
#[test]
fn test_set_matches_saturated_coverage() {
    let c = builders::mux_tree(3); // 11 inputs
    let set = generate_test_set(&c, &TestSetOptions::default());
    assert_eq!(set.aborted, 0);
    let faults = fault_list(&c);
    let r = campaign(
        &c,
        &faults,
        &CampaignConfig { max_patterns: 1 << 17, plateau: 0, seed: 9, ..Default::default() },
    );
    // Campaign leaves exactly the redundant faults; test set targets the
    // rest deterministically.
    assert_eq!(r.remaining(), set.redundant, "redundant fault counts must agree");
}

/// The non-enumerative robust PDF count equals the enumerative count on a
/// structural circuit, for many random pairs.
#[test]
fn nonenumerative_pdf_count_agrees_on_adder() {
    let c = builders::ripple_carry_adder(3);
    let paths = enumerate_paths(&c, 100_000).unwrap();
    let sim = TwoPatternSim::new(&c);
    let n = c.inputs().len();
    let v1: Vec<u64> =
        (0..n as u64).map(|i| 0xa076_1d64_78bd_642fu64.wrapping_mul(i + 1)).collect();
    let v2: Vec<u64> =
        (0..n as u64).map(|i| 0xe703_7ed1_a0b4_28dbu64.wrapping_mul(i + 5)).collect();
    let waves = sim.simulate(&v1, &v2);
    let analysis = robust_detection_masks(&c, &waves);
    for bit in 0..64 {
        let fast = robust_count_for_pair(&c, &waves, &analysis, bit);
        let slow: u128 = paths
            .iter()
            .map(|p| {
                let (r, f) = analysis.path_masks(&waves, p);
                u128::from((r | f) >> bit & 1)
            })
            .sum();
        assert_eq!(fast, slow, "pair {bit}");
    }
}

/// Procedure-1 path labels are consistent with explicit enumeration on
/// every structural builder circuit small enough to enumerate.
#[test]
fn path_count_matches_enumeration_on_builders() {
    for c in [
        builders::ripple_carry_adder(5),
        builders::comparator(5),
        builders::mux_tree(3),
        builders::decoder(3),
        builders::parity_tree(8),
        builders::alu_slice(),
    ] {
        let counted = c.path_count();
        let enumerated = enumerate_paths(&c, 1 << 22).unwrap().len() as u128;
        assert_eq!(counted, enumerated, "{}", c.name());
    }
}

/// Equivalent 2-input gate counting is invariant under chain merging
/// (a k-input gate costs exactly what its 2-input decomposition costs).
#[test]
fn eq2_invariant_under_chain_merging() {
    let mut wide = Circuit::new("wide");
    let ins: Vec<_> = (0..6).map(|i| wide.add_input(format!("i{i}"))).collect();
    let g = wide.add_gate(GateKind::And, ins.clone()).unwrap();
    wide.add_output(g, "y");

    let mut tree = Circuit::new("tree");
    let ins: Vec<_> = (0..6).map(|i| tree.add_input(format!("i{i}"))).collect();
    let mut layer = ins;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(tree.add_gate(GateKind::And, vec![pair[0], pair[1]]).unwrap());
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    tree.add_output(layer[0], "y");
    assert_eq!(wide.two_input_gate_count(), tree.two_input_gate_count());
    assert!(sft::bdd::equivalent(&wide, &tree).unwrap().is_equivalent());
}
