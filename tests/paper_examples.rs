//! Integration tests reproducing the worked examples of the paper text.

use sft::core::testability::{unit_test_set, TestTarget};
use sft::core::{build_standalone_unit, identify, ComparisonSpec, IdentifyOptions};
use sft::netlist::{Circuit, GateKind};
use sft::truth::TruthTable;

/// Section 2's example: the two equivalent covers of f1 yield 310 vs 300
/// paths under the labels N_p = (10, 100, 20, 20).
#[test]
fn section2_f1_cover_choice() {
    // K_p vectors from the SOP literal counts.
    let build = |cubes: &[[i8; 4]]| -> Circuit {
        let mut c = Circuit::new("f1");
        let x: Vec<_> = (1..=4).map(|i| c.add_input(format!("x{i}"))).collect();
        let nx: Vec<_> =
            x.iter().map(|&xi| c.add_gate(GateKind::Not, vec![xi]).expect("valid")).collect();
        let mut terms = Vec::new();
        for cube in cubes {
            let fanins: Vec<_> = cube
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0)
                .map(|(i, &v)| if v > 0 { x[i] } else { nx[i] })
                .collect();
            terms.push(c.add_gate(GateKind::And, fanins).expect("valid"));
        }
        let f = c.add_gate(GateKind::Or, terms).expect("valid");
        c.add_output(f, "f1");
        c
    };
    // f_{1,1} = !x1 x2 x4 + x1 !x2 !x3 + x2 !x3 x4
    let f11 = build(&[[-1, 1, 0, 1], [1, -1, -1, 0], [0, 1, -1, 1]]);
    // f_{1,2} as *printed* ("x1 !x2 x4") is not equivalent to f_{1,1} and
    // contradicts the paper's own K_p values {3,2,2,2} (it would give x3
    // only one literal). The consistent reading — the consensus-style cover
    // with third term x1 !x3 x4 — makes the functions equivalent AND yields
    // exactly the K_p values the paper states. We build that.
    let f12 = build(&[[-1, 1, 0, 1], [1, -1, -1, 0], [1, 0, -1, 1]]);
    assert!(sft::bdd::equivalent(&f11, &f12).unwrap().is_equivalent());
    // K_p = paths from each input to the output.
    let kp = |c: &Circuit| -> Vec<u128> {
        let out = c.outputs()[0];
        c.inputs().iter().map(|&i| c.path_count_between(i, out)).collect()
    };
    let kp1 = kp(&f11);
    let kp2 = kp(&f12);
    assert_eq!(kp1, vec![2, 3, 2, 2], "the paper's K_p for f_{{1,1}}");
    assert_eq!(kp2, vec![3, 2, 2, 2], "the paper's K_p for f_{{1,2}}");
    // Weighted path counts under the paper's labels. (The paper prints
    // "2·10 + 3·100 + 2·20 + 2·20 = 310"; the products are right but the
    // printed total is not — the sums are 400 and 310, and the conclusion
    // that the second implementation has fewer paths stands.)
    let labels = [10u128, 100, 20, 20];
    let weighted = |kp: &[u128]| kp.iter().zip(&labels).map(|(k, n)| k * n).sum::<u128>();
    assert_eq!(weighted(&kp1), 400);
    assert_eq!(weighted(&kp2), 310);
    assert!(weighted(&kp2) < weighted(&kp1), "second cover wins, as the paper argues");
}

/// Section 3.1's example: f2 is a comparison function with L=5, U=10 under
/// the reversal permutation, and its unit implements it exactly.
#[test]
fn section31_f2() {
    let f2 = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14]).unwrap();
    let spec = identify(&f2, &IdentifyOptions::default()).expect("comparison function");
    assert_eq!(spec.upper - spec.lower, 5);
    let unit = build_standalone_unit(&spec).unwrap();
    for m in 0..16u64 {
        let assignment: Vec<bool> = (0..4).map(|i| m >> (3 - i) & 1 == 1).collect();
        assert_eq!(unit.eval_assignment(&assignment)[0], f2.value(m));
    }
}

/// Section 3.2.2's example: f(y1,y2,y3) = y1 y3 under the permutation
/// (y1, y3, y2) has L = 6, U = 7, all variables free or trivial — a single
/// AND gate.
#[test]
fn section322_single_cube() {
    let spec = ComparisonSpec::new(vec![0, 2, 1], 6, 7).unwrap();
    assert_eq!(spec.free_count(), 2);
    assert!(spec.geq_block_trivial() && spec.leq_block_trivial());
    let unit = build_standalone_unit(&spec).unwrap();
    assert_eq!(unit.two_input_gate_count(), 1);
}

/// Table 1: the complete robust test set for the Figure 6 unit, row by row.
#[test]
fn table1_rows_exact() {
    let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 11, 12).unwrap();
    let tests = unit_test_set(&spec);
    // Collect (position, target, base vector) triples with transitions
    // normalized out.
    let mut rows: Vec<(usize, TestTarget, Vec<Option<bool>>)> = Vec::new();
    for t in &tests {
        let base: Vec<Option<bool>> =
            t.v1.iter().zip(&t.v2).map(|(&a, &b)| if a == b { Some(a) } else { None }).collect();
        if !rows.iter().any(|(p, g, b)| *p == t.position && *g == t.target && *b == base) {
            rows.push((t.position, t.target, base));
        }
    }
    let expect: Vec<(usize, TestTarget, Vec<Option<bool>>)> = vec![
        (0, TestTarget::Free, vec![None, Some(false), Some(true), Some(true)]),
        (1, TestTarget::GeqBlock, vec![Some(true), None, Some(false), Some(false)]),
        (2, TestTarget::GeqBlock, vec![Some(true), Some(false), None, Some(true)]),
        (3, TestTarget::GeqBlock, vec![Some(true), Some(false), Some(true), None]),
        (1, TestTarget::LeqBlock, vec![Some(true), None, Some(true), Some(true)]),
        (2, TestTarget::LeqBlock, vec![Some(true), Some(true), None, Some(false)]),
        (3, TestTarget::LeqBlock, vec![Some(true), Some(true), Some(false), None]),
    ];
    assert_eq!(rows.len(), expect.len(), "Table 1 has 7 rows");
    for row in &expect {
        assert!(rows.contains(row), "missing Table 1 row {row:?}");
    }
}

/// Figure 3's block simplifications: >=12 and <=3 reduce to bare 2-input
/// gates; >=3 and <=12 need three equivalent 2-input gates.
#[test]
fn figure3_block_sizes() {
    let sizes = [
        (3u64, 15u64, 3u64), // >=3
        (12, 15, 1),         // >=12: AND(x1, x2)
        (0, 12, 3),          // <=12
        (0, 3, 1),           // <=3: AND(!x1, !x2)
    ];
    for (l, u, eq2) in sizes {
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], l, u).unwrap();
        let unit = build_standalone_unit(&spec).unwrap();
        assert_eq!(unit.two_input_gate_count(), eq2, "L={l} U={u}");
        // Every unit implements its interval exactly.
        for m in 0..16u64 {
            let assignment: Vec<bool> = (0..4).map(|i| m >> (3 - i) & 1 == 1).collect();
            assert_eq!(unit.eval_assignment(&assignment)[0], (l..=u).contains(&m));
        }
    }
}

/// The threshold-function view of Section 3: the >=L block is a threshold
/// function with power-of-two weights and T = L.
#[test]
fn threshold_view_consistent() {
    let spec = ComparisonSpec::new(vec![2, 0, 1, 3], 5, 11).unwrap();
    let (weights, t_low, t_high) = spec.threshold_view();
    let table = spec.to_table();
    for m in 0..16u64 {
        let sum: u64 = (0..4).map(|j| (m >> (3 - j) & 1) * weights[j]).sum();
        assert_eq!(table.value(m), sum >= t_low && sum < t_high, "minterm {m}");
    }
}
