//! Property-based tests over the core invariants of the workspace.

use proptest::prelude::*;
use sft::budget::{Budget, CancelFlag, StopReason};
use sft::core::testability::{unit_test_set, validate_test_set};
use sft::core::{build_standalone_unit, identify, ComparisonSpec, IdentifyOptions};
use sft::core::{procedure2, procedure3, resynthesize_with_budget, ResynthOptions};
use sft::netlist::{simplify, Circuit, GateKind, NodeId};
use sft::par::Jobs;
use sft::truth::TruthTable;

/// The resynthesis options used by the parallel/budget property tests.
fn resynth_opts(jobs: Jobs) -> ResynthOptions {
    ResynthOptions { max_candidates_per_gate: 40, jobs, ..ResynthOptions::default() }
}

/// Strategy: a random small combinational circuit over `n` inputs.
fn arb_circuit(inputs: usize, gates: usize) -> impl Strategy<Value = Circuit> {
    let kinds = prop::sample::select(vec![
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ]);
    proptest::collection::vec((kinds, any::<u16>(), any::<u16>()), gates).prop_map(move |specs| {
        let mut c = Circuit::new("arb");
        let mut pool: Vec<NodeId> = (0..inputs).map(|i| c.add_input(format!("i{i}"))).collect();
        for (kind, xa, xb) in specs {
            let a = pool[xa as usize % pool.len()];
            let b = pool[xb as usize % pool.len()];
            let g = if kind == GateKind::Not {
                c.add_gate(GateKind::Not, vec![a]).expect("valid")
            } else if a == b {
                c.add_gate(GateKind::Buf, vec![a]).expect("valid")
            } else {
                c.add_gate(kind, vec![a, b]).expect("valid")
            };
            pool.push(g);
        }
        let out = *pool.last().expect("nonempty");
        c.add_output(out, "y");
        if pool.len() > inputs + 2 {
            c.add_output(pool[inputs + 1], "z");
        }
        c
    })
}

fn exhaustive_outputs(c: &Circuit) -> Vec<Vec<bool>> {
    let n = c.inputs().len();
    (0..1u32 << n)
        .map(|m| {
            let assignment: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            c.eval_assignment(&assignment)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Procedure 2 preserves the function of arbitrary random circuits
    /// (checked exhaustively over all input assignments).
    #[test]
    fn procedure2_preserves_function(c in arb_circuit(5, 14)) {
        let before = exhaustive_outputs(&c);
        let mut work = c.clone();
        let opts = ResynthOptions { max_candidates_per_gate: 40, ..ResynthOptions::default() };
        procedure2(&mut work, &opts).expect("verified resynthesis");
        prop_assert_eq!(exhaustive_outputs(&work), before);
        // And never increases the gate count.
        prop_assert!(work.two_input_gate_count() <= c.two_input_gate_count());
    }

    /// Procedure 3 preserves the function and never increases paths.
    #[test]
    fn procedure3_preserves_function(c in arb_circuit(5, 14)) {
        let before = exhaustive_outputs(&c);
        let mut work = c.clone();
        let opts = ResynthOptions { max_candidates_per_gate: 40, ..ResynthOptions::default() };
        procedure3(&mut work, &opts).expect("verified resynthesis");
        prop_assert_eq!(exhaustive_outputs(&work), before);
        prop_assert!(work.path_count() <= c.path_count());
    }

    /// Normalization (constant propagation, buffer collapsing, strashing,
    /// sweeping) preserves the function.
    #[test]
    fn normalize_preserves_function(c in arb_circuit(5, 16)) {
        let before = exhaustive_outputs(&c);
        let mut work = c.clone();
        simplify::normalize(&mut work);
        prop_assert_eq!(exhaustive_outputs(&work), before);
        work.validate().expect("normalized circuits validate");
    }

    /// Identification certificates always reproduce the function, whatever
    /// the function.
    #[test]
    fn identify_certificates_sound(bits in any::<u32>()) {
        let f = TruthTable::from_bits(5, bits as u128);
        if let Some(spec) = identify(&f, &IdentifyOptions::default()) {
            prop_assert_eq!(spec.to_table(), f);
        }
    }

    /// Every valid interval spec builds a unit implementing exactly the
    /// interval, with at most two paths per input, and a complete robust
    /// test set.
    #[test]
    fn units_correct_and_testable(
        lower in 0u64..32,
        span in 0u64..32,
        perm_seed in any::<u32>(),
        complemented in any::<bool>(),
    ) {
        let upper = (lower + span).min(31);
        // A seeded permutation of 0..5.
        let mut perm: Vec<usize> = (0..5).collect();
        let mut state = perm_seed;
        for i in (1..5).rev() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            perm.swap(i, (state as usize) % (i + 1));
        }
        let spec = ComparisonSpec { perm, lower, upper, complemented };
        spec.validate().expect("constructed valid");
        let unit = build_standalone_unit(&spec).expect("buildable");
        // Exact function.
        let table = spec.to_table();
        for m in 0..32u64 {
            let assignment: Vec<bool> = (0..5).map(|i| m >> (4 - i) & 1 == 1).collect();
            prop_assert_eq!(unit.eval_assignment(&assignment)[0], table.value(m));
        }
        // At most two paths per input.
        let out = unit.outputs()[0];
        for &i in unit.inputs() {
            prop_assert!(unit.path_count_between(i, out) <= 2);
        }
        // Fully robustly testable by the constructive set.
        let tests = unit_test_set(&spec);
        let (covered, total) = validate_test_set(&spec, &tests);
        prop_assert_eq!(covered, total);
    }

    /// Path counting is invariant under buffer insertion on any line.
    #[test]
    fn path_count_buffer_invariant(c in arb_circuit(4, 10), pick in any::<u16>()) {
        let before = c.path_count();
        let mut work = c.clone();
        // Insert a buffer after some gate: consumers of `victim` read the
        // buffer instead.
        let gates: Vec<NodeId> = work
            .iter()
            .filter(|(_, n)| n.kind().is_gate())
            .map(|(id, _)| id)
            .collect();
        let victim = gates[pick as usize % gates.len()];
        let buf = work.add_gate(GateKind::Buf, vec![victim]).expect("valid");
        let consumers: Vec<(NodeId, usize)> = work
            .fanout_table()[victim.index()]
            .iter()
            .copied()
            .filter(|&(g, _)| g != buf)
            .collect();
        for (gate, pin) in consumers {
            let kind = work.node(gate).kind();
            let mut fanins = work.node(gate).fanins().to_vec();
            fanins[pin] = buf;
            work.rewire(gate, kind, fanins).expect("acyclic");
        }
        prop_assert_eq!(work.path_count(), before);
    }

    /// The `.bench` format round-trips arbitrary circuits functionally.
    #[test]
    fn bench_round_trip(c in arb_circuit(4, 12)) {
        let text = sft::netlist::bench_format::write(&c);
        let parsed = sft::netlist::bench_format::parse(&text, "rt").expect("parseable");
        prop_assert_eq!(exhaustive_outputs(&parsed), exhaustive_outputs(&c));
    }

    /// BDD equivalence agrees with exhaustive simulation.
    #[test]
    fn bdd_equivalence_agrees_with_simulation(
        a in arb_circuit(4, 10),
        b in arb_circuit(4, 10),
    ) {
        if a.outputs().len() == b.outputs().len() {
            let sim_equal = exhaustive_outputs(&a) == exhaustive_outputs(&b);
            let bdd_equal = sft::bdd::equivalent(&a, &b).expect("fits").is_equivalent();
            prop_assert_eq!(sim_equal, bdd_equal);
        }
    }

    /// Parallel candidate scoring is a pure refactoring: at any thread
    /// count, `resynthesize_with_budget` on an unlimited budget produces a
    /// circuit *identical* to the serial run, with identical step
    /// accounting (the shared step counter decrements by exactly the same
    /// amount, races included, because the counter never nears zero).
    #[test]
    fn parallel_resynth_matches_serial(c in arb_circuit(5, 14), jobs in 2usize..6) {
        const BIG: u64 = 1 << 40;
        let serial_budget = Budget::unlimited().with_step_limit(BIG);
        let mut serial = c.clone();
        let serial_report =
            resynthesize_with_budget(&mut serial, &resynth_opts(Jobs::serial()), &serial_budget)
                .expect("serial resynthesis");
        let par_budget = Budget::unlimited().with_step_limit(BIG);
        let mut par = c.clone();
        let par_report =
            resynthesize_with_budget(&mut par, &resynth_opts(Jobs::new(jobs)), &par_budget)
                .expect("parallel resynthesis");
        prop_assert_eq!(&par, &serial);
        prop_assert_eq!(par_report.replacements, serial_report.replacements);
        prop_assert_eq!(par_report.stop_reason, serial_report.stop_reason);
        prop_assert_eq!(par_budget.remaining_steps(), serial_budget.remaining_steps());
    }

    /// Under a step budget, a parallel run stops with `StepBudget`, rolls
    /// back transactionally to a BDD-equivalent circuit, and overshoots the
    /// limit by at most `jobs - 1` candidate evaluations (one in-flight
    /// worker per extra thread may pass the non-consuming `check` before
    /// the counter drains).
    #[test]
    fn parallel_resynth_respects_step_budget(
        c in arb_circuit(5, 14),
        limit in 1u64..40,
        jobs in 2usize..6,
    ) {
        // Total work of an unconstrained run, measured on the same input.
        const BIG: u64 = 1 << 40;
        let full = Budget::unlimited().with_step_limit(BIG);
        let mut scratch = c.clone();
        resynthesize_with_budget(&mut scratch, &resynth_opts(Jobs::new(jobs)), &full)
            .expect("unconstrained resynthesis");
        let total_work = BIG - full.remaining_steps().expect("step-limited");

        let budget = Budget::unlimited().with_step_limit(limit);
        let mut work = c.clone();
        let report = resynthesize_with_budget(&mut work, &resynth_opts(Jobs::new(jobs)), &budget)
            .expect("budgeted resynthesis");
        // Whatever happened, the result is verified equivalent.
        prop_assert_eq!(exhaustive_outputs(&work), exhaustive_outputs(&c));
        work.validate().expect("budgeted result validates");
        if limit >= total_work + jobs as u64 {
            // Enough budget even in the worst overshoot case: must finish.
            prop_assert_eq!(report.stop_reason, StopReason::Converged);
        } else if report.stop_reason == StopReason::StepBudget {
            // Interrupted mid-search: the pass rolled back, so the circuit
            // equals a committed (verified) state and the counter drained.
            prop_assert_eq!(budget.remaining_steps(), Some(0));
        }
    }

    /// A cancellation raised before the search starts aborts immediately
    /// and leaves the circuit untouched, at any thread count.
    #[test]
    fn resynth_pre_cancelled_is_a_no_op(c in arb_circuit(5, 12), jobs in 1usize..5) {
        let flag = CancelFlag::new();
        flag.cancel();
        let budget = Budget::unlimited().with_cancel(flag);
        let mut work = c.clone();
        let report = resynthesize_with_budget(&mut work, &resynth_opts(Jobs::new(jobs)), &budget)
            .expect("cancelled resynthesis still returns Ok");
        prop_assert_eq!(report.stop_reason, StopReason::Cancelled);
        prop_assert_eq!(report.replacements, 0);
        prop_assert_eq!(&work, &c);
    }
}

/// Cancelling from another thread mid-search aborts cleanly: the run
/// reports `Cancelled` (or finished first), and the circuit it hands back
/// is always a committed, function-preserving state — never a half-applied
/// pass.
#[test]
fn resynth_mid_run_cancellation_rolls_back_cleanly() {
    use sft::circuits::random::{random_circuit, RandomCircuitConfig};
    // Big enough that a handful of passes take a visible amount of time.
    let c = random_circuit(&RandomCircuitConfig {
        inputs: 12,
        outputs: 6,
        gates: 220,
        window: 10,
        seed: 11,
    });
    for delay_us in [0u64, 50, 400, 2000] {
        let flag = CancelFlag::new();
        let budget = Budget::unlimited().with_cancel(flag.clone());
        let killer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
            flag.cancel();
        });
        let mut work = c.clone();
        let report = resynthesize_with_budget(&mut work, &resynth_opts(Jobs::new(4)), &budget)
            .expect("cancelled resynthesis still returns Ok");
        killer.join().expect("killer thread");
        assert!(
            matches!(report.stop_reason, StopReason::Cancelled | StopReason::Converged),
            "unexpected stop reason {:?}",
            report.stop_reason
        );
        work.validate().expect("result validates after cancellation");
        assert!(
            sft::bdd::equivalent(&work, &c).expect("fits").is_equivalent(),
            "cancelled result must stay equivalent (delay {delay_us}us)"
        );
    }
}
