//! `.bench` round-trip property tests: `write` output must parse back, the
//! write → parse → write composition must be a textual fixpoint, and the
//! round-tripped circuit must compute the same function. Exercised on the
//! full `irs*` substitute suite and on seeded random DAGs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_circuits::random::{random_circuit, RandomCircuitConfig};
use sft_circuits::suite;
use sft_netlist::bench_format::{parse, write};
use sft_netlist::Circuit;

/// Functional agreement: exhaustive when the input space is small, 512
/// seeded random vectors otherwise (the suite's larger entries are beyond
/// comfortable BDD equivalence checking under the natural variable order).
fn assert_same_function(a: &Circuit, b: &Circuit, tag: &str) {
    let n = a.inputs().len();
    assert_eq!(n, b.inputs().len(), "{tag}: input count changed");
    if n <= 12 {
        for m in 0..1u64 << n {
            let v: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(a.eval_assignment(&v), b.eval_assignment(&v), "{tag}: diverged on {v:?}");
        }
    } else {
        let mut rng = StdRng::seed_from_u64(0x5F7_B16C);
        for _ in 0..512 {
            let v: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            assert_eq!(a.eval_assignment(&v), b.eval_assignment(&v), "{tag}: diverged on {v:?}");
        }
    }
}

/// The round-trip contract for one circuit. `write` uses a canonical
/// (level, name) gate order, so one round trip may materialize output
/// aliases as named `BUF` gates but the text is bit-stable from then on:
/// `parse → write` applied twice reaches a textual fixpoint, a further
/// `parse` reproduces the circuit bit-identically, and every iteration
/// preserves the ports and the function.
fn assert_roundtrip(c: &Circuit) {
    let t1 = write(c);
    let c1 = parse(&t1, c.name())
        .unwrap_or_else(|e| panic!("{}: writer output rejected by parser: {e}", c.name()));
    assert_eq!(c1.outputs().len(), c.outputs().len(), "{}: output count changed", c.name());
    assert_same_function(c, &c1, c.name());

    let t2 = write(&c1);
    let c2 = parse(&t2, c.name()).expect("stabilized text parses");
    assert_eq!(write(&c2), t2, "{}: write/parse/write is not a fixpoint", c.name());
    let c3 = parse(&write(&c2), c.name()).expect("fixpoint text parses");
    assert!(c2 == c3, "{}: parse -> write -> parse is not the identity", c.name());
    assert_same_function(c, &c2, c.name());
}

/// Every circuit of the `irs*` suite round-trips through the `.bench`
/// format (these carry real signal names, output aliases and shared
/// fanout, unlike the minimal circuits in the format's unit tests).
#[test]
fn irs_suite_round_trips() {
    for entry in suite() {
        assert_roundtrip(&entry.circuit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Seeded random DAGs round-trip: unnamed internal nodes get synthetic
    /// names on write, which must survive a re-parse unchanged.
    #[test]
    fn random_dags_round_trip(
        inputs in 2usize..10,
        outputs in 1usize..5,
        gates in 5usize..60,
        window in 3usize..24,
        seed in any::<u64>(),
    ) {
        let c = random_circuit(&RandomCircuitConfig { inputs, outputs, gates, window, seed });
        assert_roundtrip(&c);
    }
}
