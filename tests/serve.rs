//! End-to-end tests of `sft serve`: the job-directory protocol, crash
//! recovery (SIGKILL mid-campaign), cache quarantine, and warm-vs-cold
//! bit-identity — all through the real binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn sft() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sft"))
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("sft-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create temp root");
    root
}

/// A small circuit Procedure 2 actually improves (duplicate AND cone).
const DEMO: &str = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(b, a)\no = OR(t1, t2)\ny = AND(o, c)\n";

/// Submits a job: `.bench` first, then the `.job` commit point.
fn submit(root: &Path, stem: &str, bench: &str, job: &str) {
    let incoming = root.join("jobs/incoming");
    std::fs::create_dir_all(&incoming).expect("create incoming");
    std::fs::write(incoming.join(format!("{stem}.bench")), bench).expect("write bench");
    std::fs::write(incoming.join(format!("{stem}.job")), job).expect("write job");
}

fn serve_once(root: &Path, jobs: &str) -> std::process::Output {
    let out = sft()
        .args(["serve", root.to_str().unwrap(), "--once", "--jobs", jobs])
        .output()
        .expect("spawn sft serve");
    assert!(out.status.success(), "serve failed: {out:?}");
    out
}

fn read(path: PathBuf) -> String {
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn wait_for(what: &str, timeout: Duration, mut ready: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !ready() {
        assert!(t0.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The CI smoke shape: three jobs, one malformed; the daemon drains with
/// two `done` results, one `failed` report, and a clean exit.
#[test]
fn smoke_three_jobs_one_malformed() {
    let root = temp_root("smoke");
    submit(&root, "alpha", DEMO, "objective = gates\n");
    submit(&root, "beta", DEMO, "objective = paths\n");
    submit(&root, "broken", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "");
    let out = serve_once(&root, "2");

    for stem in ["alpha", "beta"] {
        let report = read(root.join(format!("jobs/done/{stem}.report.json")));
        assert!(report.contains("\"outcome\":\"done\""), "{stem}: {report}");
        assert!(root.join(format!("jobs/done/{stem}.bench")).exists(), "{stem} result missing");
    }
    let failed = read(root.join("jobs/failed/broken.report.json"));
    assert!(failed.contains("\"outcome\":\"failed\""), "{failed}");
    assert!(failed.contains("FROB"), "{failed}");

    // The resynthesized output is equivalent to the input (the daemon runs
    // the same BDD-verified engine as `sft resynth`).
    let alpha_in = root.join("jobs_alpha_in.bench");
    std::fs::write(&alpha_in, DEMO).unwrap();
    let eq = sft()
        .args([
            "equiv",
            alpha_in.to_str().unwrap(),
            root.join("jobs/done/alpha.bench").to_str().unwrap(),
        ])
        .output()
        .expect("spawn equiv");
    assert!(eq.status.success(), "{eq:?}");

    // Transient dirs drained; final stats line emitted.
    assert_eq!(std::fs::read_dir(root.join("jobs/incoming")).unwrap().count(), 0);
    assert_eq!(std::fs::read_dir(root.join("jobs/running")).unwrap().count(), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("done=2"), "{stdout}");
    assert!(stdout.contains("failed=1"), "{stdout}");
    std::fs::remove_dir_all(&root).unwrap();
}

/// A warm-cache daemon must produce bit-identical results to a cold one,
/// and must say it loaded the image.
#[test]
fn warm_cache_runs_bit_identical_to_cold() {
    let root = temp_root("warmcold");
    submit(&root, "cold", DEMO, "objective = gates\n");
    let cold_out = serve_once(&root, "2");
    let cold_stdout = String::from_utf8_lossy(&cold_out.stdout);
    assert!(cold_stdout.contains("no cache image, starting cold"), "{cold_stdout}");
    assert!(root.join("jobs/cache/identify.sigcache").exists(), "cache image not flushed");

    submit(&root, "warm", DEMO, "objective = gates\n");
    let warm_out = serve_once(&root, "2");
    let warm_stdout = String::from_utf8_lossy(&warm_out.stdout);
    assert!(warm_stdout.contains("warm cache loaded"), "{warm_stdout}");

    let cold_bench = read(root.join("jobs/done/cold.bench"));
    let warm_bench = read(root.join("jobs/done/warm.bench"));
    // Identical netlists modulo the circuit name comment on line 1.
    assert_eq!(
        cold_bench.lines().skip(1).collect::<Vec<_>>(),
        warm_bench.lines().skip(1).collect::<Vec<_>>(),
        "warm-cache result differs from cold-cache result"
    );
    let warm_report = read(root.join("jobs/done/warm.report.json"));
    assert!(warm_report.contains("\"outcome\":\"done\""), "{warm_report}");
    std::fs::remove_dir_all(&root).unwrap();
}

/// The acceptance drill: SIGKILL the daemon mid-campaign, corrupt the
/// cache image, restart — orphans re-run idempotently, the corrupt image
/// is quarantined and rebuilt, finished results never change bytes, and
/// no panic ever reaches the daemon loop.
#[test]
fn kill_daemon_recover_and_quarantine() {
    let root = temp_root("kill");

    // Phase 1 (cold, drained): a baseline job, which also seeds the cache.
    submit(&root, "baseline", DEMO, "objective = gates\n");
    serve_once(&root, "2");
    let baseline_report = read(root.join("jobs/done/baseline.report.json"));
    let baseline_bench = read(root.join("jobs/done/baseline.bench"));
    let cache_path = root.join("jobs/cache/identify.sigcache");
    assert!(cache_path.exists());

    // Phase 2: a slow job plus quick ones, serving daemon, SIGKILL while
    // the slow job is mid-flight.
    submit(&root, "slow", DEMO, "chaos = sleep:3000\n");
    submit(&root, "quick1", DEMO, "");
    submit(&root, "quick2", DEMO, "");
    let mut daemon = sft()
        .args(["serve", root.to_str().unwrap(), "--jobs", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    wait_for("the slow job to be claimed", Duration::from_secs(20), || {
        root.join("jobs/running/slow.job").exists()
    });
    daemon.kill().expect("SIGKILL daemon");
    daemon.wait().expect("reap daemon");
    assert!(
        root.join("jobs/running/slow.job").exists(),
        "kill must strand the in-flight job in running/"
    );

    // Corrupt the cache image in the middle of the payload.
    let mut image = std::fs::read(&cache_path).expect("read cache image");
    let mid = image.len() / 2;
    image[mid] ^= 0x5a;
    std::fs::write(&cache_path, &image).expect("rewrite cache image");

    // Phase 3: restart and drain. Everything left must complete.
    let out = serve_once(&root, "1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantined"), "stderr: {stderr}");
    assert!(
        root.join("jobs/cache/identify.sigcache.corrupt-0").exists(),
        "quarantined image must be kept for forensics"
    );
    assert!(cache_path.exists(), "a fresh image must be flushed on exit");
    assert!(stdout.contains("re-adopted"), "stdout: {stdout}");
    assert!(!stderr.contains("panicked at"), "panic escaped to daemon stderr: {stderr}");

    for stem in ["slow", "quick1", "quick2"] {
        let report = read(root.join(format!("jobs/done/{stem}.report.json")));
        assert!(report.contains("\"outcome\":\"done\""), "{stem}: {report}");
    }
    // Finished results are immutable across the crash and restart.
    assert_eq!(read(root.join("jobs/done/baseline.report.json")), baseline_report);
    assert_eq!(read(root.join("jobs/done/baseline.bench")), baseline_bench);
    // And the re-run jobs agree with the baseline bit-for-bit (same
    // netlist, same options, rebuilt cache).
    let slow_bench = read(root.join("jobs/done/slow.bench"));
    assert_eq!(
        baseline_bench.lines().skip(1).collect::<Vec<_>>(),
        slow_bench.lines().skip(1).collect::<Vec<_>>(),
    );
    assert_eq!(std::fs::read_dir(root.join("jobs/running")).unwrap().count(), 0);
    std::fs::remove_dir_all(&root).unwrap();
}

/// A panicking job must not take down the daemon or poison its results.
#[test]
fn panicking_job_does_not_kill_the_daemon() {
    let root = temp_root("panic");
    submit(&root, "boom", DEMO, "chaos = panic\n");
    submit(&root, "calm", DEMO, "");
    let out = serve_once(&root, "2");
    let boom = read(root.join("jobs/failed/boom.report.json"));
    assert!(boom.contains("\"outcome\":\"panicked\""), "{boom}");
    let calm = read(root.join("jobs/done/calm.report.json"));
    assert!(calm.contains("\"outcome\":\"done\""), "{calm}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("panicked=1"), "{stdout}");
    std::fs::remove_dir_all(&root).unwrap();
}

/// SIGTERM drains in-flight work and exits cleanly.
#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully() {
    let root = temp_root("sigterm");
    submit(&root, "steady", DEMO, "");
    let mut daemon = sft()
        .args(["serve", root.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    wait_for("the job to finish", Duration::from_secs(20), || {
        root.join("jobs/done/steady.report.json").exists()
    });
    let term = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let t0 = Instant::now();
    let status = loop {
        if let Some(status) = daemon.try_wait().expect("poll daemon") {
            break status;
        }
        assert!(t0.elapsed() < Duration::from_secs(20), "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "drain exit must be clean: {status:?}");
    std::fs::remove_dir_all(&root).unwrap();
}
