//! Scale-tier integration tests: the `sft gen` generators must be
//! deterministic, valid, `.bench`-canonical, and the wide-word campaign
//! engine must be bit-identical across word widths and thread counts on a
//! circuit large enough that fault-dropping, FFR stem grouping and the
//! parallel merge all engage (the CI-sized version of the `BENCH_scale`
//! acceptance run).

use proptest::prelude::*;
use sft::circuits::gen::{alu, deep_dag, stitched, wide_adder, wide_multiplier};
use sft::circuits::random::RandomCircuitConfig;
use sft::netlist::bench_format::{parse, write};
use sft::netlist::Circuit;
use sft::par::Jobs;
use sft::sim::{campaign, fault_list, CampaignConfig, SimWidth};

/// The writer contract on generated netlists: one round trip may
/// materialize output aliases as named `BUF` gates, but the text is a
/// fixpoint from then on.
fn assert_textual_fixpoint(c: &Circuit) {
    let t1 = write(c);
    let c1 = parse(&t1, c.name())
        .unwrap_or_else(|e| panic!("{}: writer output rejected by parser: {e}", c.name()));
    let t2 = write(&c1);
    let c2 = parse(&t2, c.name()).expect("stabilized text parses");
    assert_eq!(write(&c2), t2, "{}: write/parse/write is not a textual fixpoint", c.name());
}

#[test]
fn fixed_generators_write_as_textual_fixpoints() {
    for c in [
        wide_multiplier(7),
        wide_multiplier(16),
        wide_adder(33),
        alu(17),
        deep_dag(&RandomCircuitConfig { gates: 900, window: 19, ..Default::default() }),
        stitched(7, &RandomCircuitConfig::default()),
    ] {
        c.validate().unwrap_or_else(|e| panic!("{}: invalid: {e}", c.name()));
        assert_textual_fixpoint(&c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generator family, over random shape parameters, emits a valid
    /// circuit whose `.bench` text reaches the writer fixpoint — and equal
    /// parameters regenerate the identical circuit.
    #[test]
    fn generated_circuits_are_deterministic_canonical_bench(
        width in 1usize..12,
        gates in 50usize..600,
        window in 4usize..48,
        copies in 1usize..6,
        seed in 0u64..1000,
    ) {
        let cfg = RandomCircuitConfig { inputs: 12, outputs: 6, gates, window, seed };
        for c in [wide_multiplier(width), wide_adder(width), alu(width), deep_dag(&cfg), stitched(copies, &cfg)] {
            c.validate().unwrap_or_else(|e| panic!("{}: invalid: {e}", c.name()));
            assert_textual_fixpoint(&c);
        }
        prop_assert_eq!(deep_dag(&cfg), deep_dag(&cfg));
        prop_assert_eq!(stitched(copies, &cfg), stitched(copies, &cfg));
    }
}

/// The committed corpus is byte-identical to a fresh generator run: the
/// generators are pure functions of their parameters and the `.bench`
/// writer is canonical, so any platform- or RNG-drift shows up here.
#[test]
fn committed_corpus_matches_regenerated_output() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let dag = RandomCircuitConfig { inputs: 48, outputs: 24, gates: 4000, window: 40, seed: 11 };
    let stitch = RandomCircuitConfig { inputs: 32, outputs: 16, gates: 260, window: 56, seed: 177 };
    for (file, circuit) in [
        ("mul16.bench", wide_multiplier(16)),
        ("add64.bench", wide_adder(64)),
        ("alu32.bench", alu(32)),
        ("dag4k.bench", deep_dag(&dag)),
        ("stitch16.bench", stitched(16, &stitch)),
    ] {
        let committed = std::fs::read_to_string(dir.join(file))
            .unwrap_or_else(|e| panic!("{file}: unreadable: {e}"));
        assert_eq!(committed, write(&circuit), "{file}: corpus drifted from generator output");
    }
}

/// The acceptance bit-identity check at CI-quick size: a ~50K-gate stitched
/// circuit, campaign results compared between the 64-bit serial reference
/// and wide words (256- and 512-bit) at 1 and 4 threads. Any divergence in
/// detection indices, effective-pattern statistics or stop points fails.
#[test]
fn wide_words_and_threads_are_bit_identical_on_50k_gates() {
    let core = RandomCircuitConfig { inputs: 32, outputs: 16, gates: 260, window: 56, seed: 0xB1 };
    let c = stitched(210, &core);
    assert!(c.two_input_gate_count() >= 50_000, "{} gates", c.two_input_gate_count());
    let faults = fault_list(&c);
    let cfg = |width: SimWidth, jobs: Jobs| CampaignConfig {
        max_patterns: 192,
        plateau: 0,
        seed: 0x51f7,
        jobs,
        width,
        ..CampaignConfig::default()
    };
    let reference = campaign(&c, &faults, &cfg(SimWidth::W64, Jobs::serial()));
    assert!(reference.detected > 0, "campaign must detect something at this size");
    for width in [SimWidth::W64, SimWidth::W256, SimWidth::W512] {
        for jobs in [Jobs::serial(), Jobs::new(4)] {
            if width == SimWidth::W64 && jobs.is_serial() {
                continue;
            }
            let r = campaign(&c, &faults, &cfg(width, jobs));
            assert_eq!(reference, r, "width={width:?} jobs={jobs:?}");
        }
    }
}

/// The at-scale path-count regression: a 100K-gate deep DAG overflows any
/// fixed-width path count; the label arithmetic must saturate (and report
/// it) instead of wrapping.
#[test]
fn path_count_saturates_on_100k_gate_deep_dag() {
    let c = deep_dag(&RandomCircuitConfig {
        inputs: 64,
        outputs: 32,
        gates: 100_000,
        window: 48,
        seed: 3,
    });
    assert!(c.len() > 90_000, "{} nodes", c.len());
    let paths = c.path_count_exact();
    assert!(paths.is_saturated(), "expected saturation, got {paths}");
    assert_eq!(c.path_count(), u128::MAX, "saturated count must clamp, not wrap");
}
