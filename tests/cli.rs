//! Smoke tests for the `sft` command-line driver.

use std::process::Command;

fn sft() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sft"))
}

fn write_bench(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sft-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write bench");
    path
}

const DEMO: &str = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(b, a)\no = OR(t1, t2)\ny = AND(o, c)\n";

#[test]
fn stats_prints_summary() {
    let input = write_bench("stats.bench", DEMO);
    let out = sft().args(["stats", input.to_str().unwrap()]).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("eq2="), "{text}");
    assert!(text.contains("paths="), "{text}");
}

#[test]
fn resynth_then_equiv_round_trip() {
    let input = write_bench("resynth_in.bench", DEMO);
    let output = write_bench("resynth_out.bench", "");
    let out = sft()
        .args([
            "resynth",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--objective",
            "gates",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    // The CLI's own equivalence checker agrees the result is equivalent.
    let eq = sft()
        .args(["equiv", input.to_str().unwrap(), output.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(eq.status.success(), "{eq:?}");
    assert!(String::from_utf8_lossy(&eq.stdout).contains("equivalent"));
}

#[test]
fn equiv_detects_differences() {
    let a = write_bench("eq_a.bench", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n");
    let b = write_bench("eq_b.bench", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
    let out =
        sft().args(["equiv", a.to_str().unwrap(), b.to_str().unwrap()]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("NOT equivalent"));
}

#[test]
fn testgen_emits_vectors() {
    let input = write_bench("testgen.bench", DEMO);
    let out = sft().args(["testgen", input.to_str().unwrap()]).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().any(|l| l.chars().all(|c| c == '0' || c == '1') && !l.is_empty()));
    assert!(text.contains("coverage"));
}

#[test]
fn export_verilog_and_dot() {
    let input = write_bench("export.bench", DEMO);
    for (flag, needle) in [("--verilog", "module"), ("--dot", "digraph")] {
        let out = sft().args(["export", input.to_str().unwrap(), flag]).output().expect("spawn");
        assert!(out.status.success(), "{flag}: {out:?}");
        assert!(String::from_utf8_lossy(&out.stdout).contains(needle), "{flag}");
    }
}

#[test]
fn resynth_with_expired_time_limit_exits_zero_with_partial_result() {
    let input = write_bench("budget_in.bench", DEMO);
    let output = write_bench("budget_out.bench", "");
    // Flags before the files: positional parsing must not eat "0s".
    let out = sft()
        .args(["resynth", "--time-limit", "0s", input.to_str().unwrap(), output.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("deadline"), "{text}");
    assert!(text.contains("stopped early"), "{text}");
    // The written result is a valid .bench, function-identical to the input.
    let eq = sft()
        .args(["equiv", input.to_str().unwrap(), output.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(eq.status.success(), "{eq:?}");
    assert!(String::from_utf8_lossy(&eq.stdout).contains("equivalent"));
}

#[test]
fn resynth_step_limit_reports_stop_reason() {
    let input = write_bench("budget_steps_in.bench", DEMO);
    let output = write_bench("budget_steps_out.bench", "");
    let out = sft()
        .args(["resynth", input.to_str().unwrap(), output.to_str().unwrap(), "--step-limit", "1"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("step-budget"), "{text}");
    let eq = sft()
        .args(["equiv", input.to_str().unwrap(), output.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(eq.status.success(), "{eq:?}");
}

#[test]
fn resynth_rejects_bad_duration() {
    let input = write_bench("bad_dur.bench", DEMO);
    let output = write_bench("bad_dur_out.bench", "");
    let out = sft()
        .args([
            "resynth",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--time-limit",
            "tomorrow",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad duration"));
}

#[test]
fn testgen_with_step_limit_reports_partial_set() {
    let input = write_bench("testgen_budget.bench", DEMO);
    let out = sft()
        .args(["testgen", input.to_str().unwrap(), "--step-limit", "0"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stopped early"), "{text}");
    assert!(text.contains("untargeted"), "{text}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = sft().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn techmap_and_pdf_report() {
    let input = write_bench("tm.bench", DEMO);
    let out = sft().args(["techmap", input.to_str().unwrap()]).output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("literals"));

    let out =
        sft().args(["pdf", input.to_str().unwrap(), "--pairs", "512"]).output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("robust path delay faults"));
}

#[test]
fn resynth_jobs_flag_matches_serial_run() {
    let input = write_bench("jobs_in.bench", DEMO);
    let serial_out = write_bench("jobs_serial.bench", "");
    let par_out = write_bench("jobs_par.bench", "");
    for (path, jobs) in [(&serial_out, "1"), (&par_out, "4")] {
        let out = sft()
            .args(["resynth", input.to_str().unwrap(), path.to_str().unwrap(), "--jobs", jobs])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{out:?}");
    }
    // `--jobs N` is bit-identical to serial: same emitted netlist text.
    let serial = std::fs::read_to_string(&serial_out).expect("serial output");
    let par = std::fs::read_to_string(&par_out).expect("parallel output");
    assert_eq!(serial, par);
}

#[test]
fn jobs_flag_rejects_missing_and_garbage_values() {
    let input = write_bench("jobs_bad.bench", DEMO);
    let output = write_bench("jobs_bad_out.bench", "");
    for extra in [vec!["--jobs"], vec!["--jobs", "zero"]] {
        let mut args = vec!["resynth", input.to_str().unwrap(), output.to_str().unwrap()];
        args.extend(extra);
        let out = sft().args(&args).output().expect("spawn");
        assert!(!out.status.success(), "{out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--jobs"), "{err}");
    }
}

#[test]
fn convert_round_trips_through_verilog_and_aiger() {
    let input = write_bench("conv.bench", DEMO);
    let dir = input.parent().unwrap().to_path_buf();
    for (mid, back) in [("conv.v", "conv_v.bench"), ("conv.aig", "conv_a.bench")] {
        let mid = dir.join(mid);
        let back = dir.join(back);
        let out = sft()
            .args(["convert", input.to_str().unwrap(), mid.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{out:?}");
        let out = sft()
            .args(["convert", mid.to_str().unwrap(), back.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{out:?}");
        let eq = sft()
            .args(["equiv", input.to_str().unwrap(), back.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(eq.status.success(), "{eq:?}");
        assert!(String::from_utf8_lossy(&eq.stdout).contains("equivalent"));
    }
}

#[test]
fn convert_honours_from_to_and_lut_k() {
    let input = write_bench("conv_force.txt", DEMO); // unknown extension
    let dir = input.parent().unwrap().to_path_buf();
    let lut = dir.join("conv_force.lut");
    let out = sft()
        .args([
            "convert",
            input.to_str().unwrap(),
            lut.to_str().unwrap(),
            "--from",
            "bench",
            "--to",
            "lut",
            "--lut-k",
            "3",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&lut).unwrap();
    assert!(text.contains("K 3"), "{text}");

    let bad = sft()
        .args(["convert", input.to_str().unwrap(), lut.to_str().unwrap(), "--from", "edif"])
        .output()
        .expect("spawn");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown format"));
}

#[test]
fn convert_rejects_malformed_inputs_with_typed_errors() {
    let truncated = write_bench("broken.aag", "aag 3 2 0 1 1\n2\n4\n6\n");
    let out_path = write_bench("broken_out.bench", "");
    let out = sft()
        .args(["convert", truncated.to_str().unwrap(), out_path.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line"), "{err}");

    let undeclared = write_bench(
        "ghost.v",
        "module m (input a, output y);\n  and g (y, a, ghost);\nendmodule\n",
    );
    let out = sft()
        .args(["convert", undeclared.to_str().unwrap(), out_path.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ghost"), "{err}");
}

#[test]
fn gen_emits_any_format_by_extension() {
    let dir = std::env::temp_dir().join("sft-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    for name in ["gen8.aag", "gen8.v", "gen8.lut"] {
        let path = dir.join(name);
        let out = sft()
            .args(["gen", "adder", path.to_str().unwrap(), "--width", "8"])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{name}: {out:?}");
        let stats = sft().args(["stats", path.to_str().unwrap()]).output().expect("spawn");
        assert!(stats.status.success(), "{name}: {stats:?}");
        assert!(String::from_utf8_lossy(&stats.stdout).contains("in=17"), "{name}");
    }
}
