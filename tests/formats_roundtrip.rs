//! Cross-format round-trip properties: every circuit must survive
//! `.bench` → Verilog → `.bench` and `.bench` → AIGER → `.bench` (and the
//! LUT-covering detour) with **bit-identical fault-simulation decisions**
//! on the fault sites both sides share.
//!
//! Two signature tiers, matching the preservation contract of
//! `docs/formats.md`:
//!
//! - **Boundary signature** (all formats): output words plus the exact
//!   detection masks of every primary-input stem fault over deterministic
//!   pattern blocks. An input-stem fault replaces the function by its
//!   cofactor, so its detections depend only on the circuit *function* —
//!   comparable across arbitrary re-structurings (AIG decomposition, LUT
//!   covering).
//! - **Named-stem signature** (Verilog only, gate-for-gate mapping):
//!   detection masks of stuck-at faults on every named internal stem that
//!   exists on both sides under the writer's name sanitization.
//!
//! Exercised over the `irs*` suite, seeded random DAGs, and every
//! committed corpus circuit (the regression pin behind `sft convert`).

use proptest::prelude::*;
use sft_circuits::random::{random_circuit, RandomCircuitConfig};
use sft_circuits::suite;
use sft_io::{parse_bytes, verilog, write_bytes, Format, WriteOptions};
use sft_netlist::{Circuit, NodeId};
use sft_sim::{pattern_block, Fault, FaultSim};
use std::collections::HashMap;

const SIG_SEED: u64 = 0x10F0_0815;
const SIG_BLOCKS: u64 = 4; // 4 × 64 = 256 deterministic patterns

/// Detection masks for `faults` over the deterministic pattern blocks.
fn detect_signature(c: &Circuit, faults: &[Fault]) -> Vec<Vec<u64>> {
    let mut fsim = FaultSim::new(c);
    (0..SIG_BLOCKS)
        .map(|b| fsim.detect_masks(faults, &pattern_block(SIG_SEED, b, c.inputs().len())))
        .collect()
}

/// Output words over the deterministic pattern blocks (the fault-free half
/// of the signature).
fn function_signature(c: &Circuit) -> Vec<Vec<u64>> {
    let sim = sft_sim::Simulator::new(c);
    (0..SIG_BLOCKS)
        .map(|b| {
            let values = sim.eval(&pattern_block(SIG_SEED, b, c.inputs().len()));
            sim.output_words(&values)
        })
        .collect()
}

/// Both polarities of every primary-input stem fault, in input order.
fn input_faults(c: &Circuit) -> Vec<Fault> {
    c.inputs().iter().flat_map(|&i| [Fault::stem(i, false), Fault::stem(i, true)]).collect()
}

/// The boundary signature shared by *all* formats: function words and
/// PI-stem fault detections must be bit-identical.
fn assert_boundary_signature(a: &Circuit, b: &Circuit, tag: &str) {
    assert_eq!(a.inputs().len(), b.inputs().len(), "{tag}: input count changed");
    assert_eq!(a.outputs().len(), b.outputs().len(), "{tag}: output count changed");
    assert_eq!(function_signature(a), function_signature(b), "{tag}: function diverged");
    assert_eq!(
        detect_signature(a, &input_faults(a)),
        detect_signature(b, &input_faults(b)),
        "{tag}: input-stem fault decisions diverged"
    );
}

/// Named gate stems present on both sides (Verilog preserves the netlist
/// gate-for-gate, so sanitization-stable names must keep their exact
/// stuck-at behaviour).
fn assert_named_stem_signature(a: &Circuit, b: &Circuit, tag: &str) {
    let named = |c: &Circuit| -> HashMap<String, NodeId> {
        c.iter()
            .filter(|(_, n)| n.kind().is_gate())
            .filter_map(|(id, n)| n.name().map(|s| (s.to_string(), id)))
            .collect()
    };
    let a_named = named(a);
    let b_named = named(b);
    let mut shared: Vec<&String> = a_named.keys().filter(|k| b_named.contains_key(*k)).collect();
    shared.sort();
    assert!(
        shared.len() * 2 >= a_named.len(),
        "{tag}: lost most named stems ({} of {} survive)",
        shared.len(),
        a_named.len()
    );
    let a_faults: Vec<Fault> = shared
        .iter()
        .flat_map(|k| [Fault::stem(a_named[*k], false), Fault::stem(a_named[*k], true)])
        .collect();
    let b_faults: Vec<Fault> = shared
        .iter()
        .flat_map(|k| [Fault::stem(b_named[*k], false), Fault::stem(b_named[*k], true)])
        .collect();
    assert_eq!(
        detect_signature(a, &a_faults),
        detect_signature(b, &b_faults),
        "{tag}: named-stem fault decisions diverged"
    );
}

fn roundtrip(c: &Circuit, format: Format) -> Circuit {
    let opts = WriteOptions::default();
    let bytes = write_bytes(c, format, &opts)
        .unwrap_or_else(|e| panic!("{}: {format} write failed: {e}", c.name()));
    parse_bytes(&bytes, format, c.name())
        .unwrap_or_else(|e| panic!("{}: {format} output rejected by own parser: {e}", c.name()))
}

/// Write → parse → write must be byte-stable from the second write for the
/// canonical text/binary formats.
fn assert_second_write_fixpoint(c: &Circuit, format: Format) {
    let opts = WriteOptions::default();
    let c1 = roundtrip(c, format);
    let w2 = write_bytes(&c1, format, &opts).unwrap();
    let c2 = parse_bytes(&w2, format, c.name()).unwrap();
    let w3 = write_bytes(&c2, format, &opts).unwrap();
    assert_eq!(w2, w3, "{}: {format} write is not a fixpoint from the second write", c.name());
}

#[test]
fn irs_suite_through_verilog() {
    for entry in suite() {
        let back = roundtrip(&entry.circuit, Format::Verilog);
        assert_boundary_signature(&entry.circuit, &back, entry.name);
        assert_named_stem_signature(&entry.circuit, &back, entry.name);
        assert_second_write_fixpoint(&entry.circuit, Format::Verilog);
    }
}

#[test]
fn irs_suite_through_aiger() {
    for entry in suite() {
        for format in [Format::AigerAscii, Format::AigerBinary] {
            let back = roundtrip(&entry.circuit, format);
            assert_boundary_signature(&entry.circuit, &back, entry.name);
            assert_second_write_fixpoint(&entry.circuit, format);
        }
    }
}

#[test]
fn irs_suite_through_lut_covering() {
    for entry in suite() {
        let back = roundtrip(&entry.circuit, Format::Lut);
        assert_boundary_signature(&entry.circuit, &back, entry.name);
        // `.lut` emission is deterministic (same circuit -> same bytes)
        // even though re-covering is not a textual fixpoint.
        let opts = WriteOptions::default();
        assert_eq!(
            write_bytes(&entry.circuit, Format::Lut, &opts).unwrap(),
            write_bytes(&entry.circuit, Format::Lut, &opts).unwrap(),
            "{}: .lut write is not deterministic",
            entry.name
        );
    }
}

/// The corpus regression pin: every committed circuit converts through
/// every format with bit-identical boundary fault decisions, exactly what
/// `sft convert` promises.
#[test]
fn corpus_conversions_pin_fault_decisions() {
    for stem in ["mul16", "add64", "alu32", "dag4k", "stitch16"] {
        let path = format!("corpus/{stem}.bench");
        let bytes = std::fs::read(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let c = parse_bytes(&bytes, Format::Bench, stem).unwrap();
        for format in [Format::Verilog, Format::AigerAscii, Format::AigerBinary, Format::Lut] {
            let back = roundtrip(&c, format);
            assert_boundary_signature(&c, &back, &format!("{stem} via {format}"));
        }
        assert_named_stem_signature(&c, &roundtrip(&c, Format::Verilog), stem);
    }
}

/// The committed `.v` / `.aig` corpus variants are pinned byte-identical
/// to fresh conversions of their `.bench` sources (same guarantee the
/// generator corpus gives the `.bench` writer).
#[test]
fn corpus_converted_variants_are_byte_pinned() {
    let opts = WriteOptions::default();
    for (stem, bench, converted, format) in [
        ("add64", "corpus/add64.bench", "corpus/add64.v", Format::Verilog),
        ("alu32", "corpus/alu32.bench", "corpus/alu32.aig", Format::AigerBinary),
    ] {
        let c = parse_bytes(&std::fs::read(bench).unwrap(), Format::Bench, stem).unwrap();
        let fresh = write_bytes(&c, format, &opts).unwrap();
        let committed = std::fs::read(converted).unwrap_or_else(|e| panic!("{converted}: {e}"));
        assert_eq!(
            fresh, committed,
            "{converted} drifted from a fresh conversion of {bench}; \
             regenerate with `sft convert` (see corpus/README.md)"
        );
    }
}

/// Imported foreign Verilog keeps its module name; exported Verilog keeps
/// circuit names end to end (spot check with one irs entry).
#[test]
fn verilog_round_trip_keeps_names() {
    let entry = &suite()[0];
    let text = verilog::write(&entry.circuit).unwrap();
    let back = verilog::parse(&text).unwrap();
    assert_eq!(back.name(), entry.circuit.name());
    for (slot, _) in entry.circuit.outputs().iter().enumerate() {
        assert_eq!(
            back.output_name(slot).map(sft_io::sanitize),
            entry.circuit.output_name(slot).map(sft_io::sanitize),
            "{}: output label {slot} changed",
            entry.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeded random DAGs hold the boundary signature through every
    /// format, and the named-stem signature through Verilog.
    #[test]
    fn random_dags_round_trip_all_formats(
        inputs in 2usize..10,
        outputs in 1usize..5,
        gates in 5usize..60,
        window in 3usize..24,
        seed in any::<u64>(),
    ) {
        let c = random_circuit(&RandomCircuitConfig { inputs, outputs, gates, window, seed });
        for format in [Format::Verilog, Format::AigerAscii, Format::AigerBinary, Format::Lut] {
            let back = roundtrip(&c, format);
            assert_boundary_signature(&c, &back, &format!("dag seed {seed} via {format}"));
        }
        assert_named_stem_signature(&c, &roundtrip(&c, Format::Verilog), "dag via verilog");
    }
}
