//! Cross-crate integration tests: the full paper pipeline on real
//! workloads.

use sft::atpg::{generate_test, remove_redundancies};
use sft::circuits::builders;
use sft::core::{procedure2, procedure3, Objective, ResynthOptions};
use sft::delay::{pdf_campaign, PdfCampaignConfig};
use sft::netlist::Circuit;
use sft::rambo::{optimize, RamboOptions};
use sft::sim::{campaign, fault_list, CampaignConfig};
use sft::techmap::{map_circuit, Library};

fn opts() -> ResynthOptions {
    ResynthOptions { max_candidates_per_gate: 80, ..ResynthOptions::default() }
}

#[test]
fn procedure2_on_comparator_improves_and_verifies() {
    let original = builders::comparator(8);
    let mut c = original.clone();
    let report = procedure2(&mut c, &opts()).expect("verified resynthesis");
    assert!(report.gates_after <= report.gates_before);
    assert!(sft::bdd::equivalent(&original, &c).unwrap().is_equivalent());
    c.validate().unwrap();
}

#[test]
fn procedure3_on_mux_reduces_paths() {
    let original = builders::mux_tree(4);
    let mut c = original.clone();
    let report = procedure3(&mut c, &opts()).expect("verified resynthesis");
    assert!(report.paths_after <= report.paths_before);
    assert!(sft::bdd::equivalent(&original, &c).unwrap().is_equivalent());
}

#[test]
fn full_table2_recipe_on_adder() {
    let original = builders::ripple_carry_adder(6);
    let mut c = original.clone();
    procedure2(&mut c, &opts()).expect("verified resynthesis");
    let red = remove_redundancies(&mut c, 20_000);
    assert_eq!(red.aborted, 0, "small circuits must not abort");
    assert!(sft::bdd::equivalent(&original, &c).unwrap().is_equivalent());
    // Every remaining fault is testable (the paper's point of running
    // redundancy removal after Procedure 2).
    for fault in fault_list(&c) {
        assert!(generate_test(&c, fault, 50_000).is_test(), "{fault} untestable");
    }
}

#[test]
fn stuck_at_testability_does_not_deteriorate() {
    let original = builders::comparator(6);
    let mut modified = original.clone();
    procedure2(&mut modified, &opts()).expect("verified resynthesis");
    remove_redundancies(&mut modified, 20_000);
    let run = |c: &Circuit| {
        let faults = fault_list(c);
        campaign(
            c,
            &faults,
            &CampaignConfig { max_patterns: 4096, plateau: 0, seed: 5, ..Default::default() },
        )
        .coverage()
    };
    let before = run(&original);
    let after = run(&modified);
    assert!(after >= before - 1e-9, "coverage {before} -> {after}");
}

#[test]
fn pdf_coverage_improves_or_holds_on_reconvergent_logic() {
    // A mux tree has heavy reconvergence; Procedure 2 merges SOP cones into
    // comparison units with fewer paths.
    let original = builders::mux_tree(4);
    let mut modified = original.clone();
    procedure2(&mut modified, &opts()).expect("verified resynthesis");
    let cfg = PdfCampaignConfig {
        max_pairs: 4096,
        plateau: 0,
        seed: 5,
        path_limit: 1 << 20,
        ..Default::default()
    };
    let before = pdf_campaign(&original, &cfg).unwrap();
    let after = pdf_campaign(&modified, &cfg).unwrap();
    assert!(
        after.coverage() >= before.coverage() - 1e-9,
        "robust PDF coverage {:.4} -> {:.4}",
        before.coverage(),
        after.coverage()
    );
    assert!(after.total_faults <= before.total_faults, "fault universe must not grow");
}

#[test]
fn rar_then_procedure2_composes() {
    let original = builders::comparator(5);
    let mut c = original.clone();
    optimize(&mut c, &RamboOptions { candidate_attempts: 40, ..RamboOptions::default() })
        .expect("RAR verified");
    let mut both = c.clone();
    procedure2(&mut both, &opts()).expect("verified resynthesis");
    assert!(both.two_input_gate_count() <= c.two_input_gate_count());
    assert!(sft::bdd::equivalent(&original, &both).unwrap().is_equivalent());
}

#[test]
fn techmap_tracks_gate_reductions() {
    let original = builders::mux_tree(4);
    let mut modified = original.clone();
    procedure2(&mut modified, &opts()).expect("verified resynthesis");
    let lib = Library::standard();
    let before = map_circuit(&original, &lib);
    let after = map_circuit(&modified, &lib);
    // Table 4's observation: mapped size tracks the eq-2 reduction and the
    // longest path does not explode.
    assert!(after.literals <= before.literals + 2, "{before} -> {after}");
    assert!(after.longest_path <= before.longest_path + 2, "{before} -> {after}");
}

#[test]
fn combined_objective_sits_between_extremes() {
    let original = builders::mux_tree(4);
    let run = |objective| {
        let mut c = original.clone();
        let o = ResynthOptions { objective, ..opts() };
        sft::core::resynthesize(&mut c, &o).expect("verified");
        (c.two_input_gate_count(), c.path_count())
    };
    let (g_gates, _) = run(Objective::Gates);
    let (_, p_paths) = run(Objective::Paths);
    let (c_gates, c_paths) = run(Objective::Combined { gate_weight: 1, path_weight: 1 });
    // The combined point is no better than each extreme on its own axis.
    assert!(c_gates >= g_gates);
    assert!(c_paths >= p_paths);
}

#[test]
fn bench_format_round_trip_through_resynthesis() {
    let original = builders::ripple_carry_adder(4);
    let text = sft::netlist::bench_format::write(&original);
    let mut parsed = sft::netlist::bench_format::parse(&text, "rt").unwrap();
    procedure2(&mut parsed, &opts()).expect("verified resynthesis");
    assert!(sft::bdd::equivalent(&original, &parsed).unwrap().is_equivalent());
}
