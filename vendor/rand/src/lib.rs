//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a from-scratch implementation of the tiny `rand` API surface it
//! actually uses: seeded generators (`StdRng`, `SmallRng`), `Rng::gen`,
//! `gen_range`, `gen_bool` and `gen_ratio`. The generator is xorshift64*
//! seeded through SplitMix64 — deterministic per seed, statistically fine for
//! test-vector generation and randomized property tests, and not intended for
//! cryptography.

pub mod rngs {
    /// Deterministic 64-bit generator (xorshift64* seeded via SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    /// Same engine as [`StdRng`]; exists so `rand::rngs::SmallRng` imports work.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn seed_state(seed: u64) -> u64 {
    let mut s = seed;
    let state = splitmix64(&mut s);
    // xorshift64* requires a non-zero state.
    if state == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        state
    }
}

fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Seeding constructors; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed_state(seed) }
    }
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng { state: seed_state(seed) }
    }
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    fn random(word: u64, extra: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn random(word: u64, _extra: u64) -> Self {
                word as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn random(word: u64, extra: u64) -> Self {
        (u128::from(word) << 64) | u128::from(extra)
    }
}

impl Standard for i128 {
    fn random(word: u64, extra: u64) -> Self {
        u128::random(word, extra) as i128
    }
}

impl Standard for bool {
    fn random(word: u64, _extra: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for f64 {
    fn random(word: u64, _extra: u64) -> Self {
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn random(word: u64, _extra: u64) -> Self {
        (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait RangeSample: Copy + PartialOrd {
    fn to_u128(self) -> u128;
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {
        $(impl RangeSample for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            #[allow(clippy::cast_possible_truncation)]
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        })*
    };
}

impl_range_sample!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

/// Range argument for [`Rng::gen_range`]: `lo..hi` or `lo..=hi`.
pub trait SampleRange<T> {
    fn bounds(self) -> (T, T, bool);
}

impl<T: RangeSample> SampleRange<T> for core::ops::Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: RangeSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (s, e) = self.into_inner();
        (s, e, true)
    }
}

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T {
        let w = self.next_u64();
        let e = self.next_u64();
        T::random(w, e)
    }

    fn gen_range<T: RangeSample, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi, inclusive) = range.bounds();
        let lo_u = lo.to_u128();
        let hi_u = hi.to_u128();
        let span = if inclusive {
            hi_u.wrapping_sub(lo_u).wrapping_add(1)
        } else {
            assert!(hi_u > lo_u, "gen_range called with empty range");
            hi_u - lo_u
        };
        if span == 0 {
            // Inclusive range covering the whole domain.
            let w = self.next_u64();
            let e = self.next_u64();
            return T::from_u128(u128::random(w, e));
        }
        // Modulo reduction: bias is negligible for the small spans used here.
        let w = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        T::from_u128(lo_u + w % span)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        let x: f64 = self.gen();
        x < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(numerator <= denominator, "gen_ratio numerator > denominator");
        self.gen_range(0..denominator) < numerator
    }

    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        xorshift64star(&mut self.state)
    }
}

impl Rng for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        xorshift64star(&mut self.state)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod prelude {
    pub use crate::{rngs::SmallRng, rngs::StdRng, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
            let w = rng.gen_range(1..8);
            assert!((1..8).contains(&w));
            let x: u64 = rng.gen_range(5..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_ratio_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..4000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((700..1300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_u128_uses_two_words() {
        let mut rng = StdRng::seed_from_u64(9);
        let v: u128 = rng.gen();
        assert_ne!(v >> 64, 0);
    }
}
