//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate implements the small proptest surface the workspace uses: sampling
//! strategies (`any`, ranges, `Just`, `prop_map`, `prop_shuffle`, tuples,
//! `collection::vec`, `sample::select`) and the `proptest!` /  `prop_assert*`
//! macros. Inputs are randomly sampled per case from a deterministic
//! per-test-function seed; there is no shrinking.

#[doc(hidden)]
pub use rand as __rand;

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of some type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: ShuffleValue,
    {
        Shuffle { inner: self }
    }
}

/// Values whose element order can be shuffled (for `prop_shuffle`).
pub trait ShuffleValue {
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> ShuffleValue for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Strategy producing an unconstrained value of `T`.
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

pub fn any<T: rand::Standard>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Strategy always producing a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: ShuffleValue,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        let mut v = self.inner.sample(rng);
        v.shuffle(rng);
        v
    }
}

impl<T: rand::RangeSample> Strategy for core::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::RangeSample> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specifier for [`vec`]: a fixed `usize` or a `usize` range.
    pub trait VecLen {
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl VecLen for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl VecLen for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl VecLen for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy picking a uniformly random element of a non-empty vector.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Namespace mirror so `prop::sample::select` resolves from the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod strategy {
    pub use crate::{Just, Map, Shuffle, Strategy};
}

pub mod prelude {
    pub use crate::{any, prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub fn fn_seed(name: &str) -> u64 {
    // FNV-1a over the test name so distinct tests draw distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __seed = $crate::fn_seed(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_permutation() {
        let strat = Just((0..8).collect::<Vec<usize>>()).prop_shuffle();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let mut v = strat.sample(&mut rng);
            v.sort_unstable();
            assert_eq!(v, (0..8).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn select_stays_in_options() {
        let strat = crate::sample::select(vec![3u8, 5, 9]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!([3u8, 5, 9].contains(&strat.sample(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, v in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 4);
        }
    }
}
