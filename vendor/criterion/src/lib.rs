//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate provides the small criterion surface the workspace's benches use:
//! `Criterion`, `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input` and `Bencher::iter`. Timing is a
//! simple adaptive loop reporting ns/iter to stdout — good enough to run the
//! benches and compare orders of magnitude, with none of criterion's
//! statistics or reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and a first estimate.
        let start = Instant::now();
        std::hint::black_box(f());
        let probe = start.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_BUDGET.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_bench(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { last_ns_per_iter: 0.0 };
    f(&mut b);
    let ns = b.last_ns_per_iter;
    if ns >= 1e9 {
        println!("{name:<40} {:>12.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{name:<40} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<40} {:>12.3} us/iter", ns / 1e3);
    } else {
        println!("{name:<40} {:>12.0} ns/iter", ns);
    }
}

/// Identifier combining a function name and a parameter, printed `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }
}

/// Re-export so `criterion::black_box` call sites work.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { last_ns_per_iter: 0.0 };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.last_ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("exact/hit", 5);
        assert_eq!(id.id, "exact/hit/5");
    }
}
