//! `bench_check` — guard against performance and decision regressions.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json>
//! ```
//!
//! Compares a freshly generated bench report (`BENCH_resynth.json`,
//! `BENCH_edit.json`, ...) against the committed baseline and exits
//! non-zero when either
//!
//! - a **decision drifted**: any decision field present in a baseline row
//!   (`gates_after`, `paths_after`, `replacements` for resynthesis;
//!   `edits`, `nodes`, `restored` for the edit-throughput bench;
//!   `done`, `failed`, `shed` for the daemon saturation bench;
//!   `gates`, `faults`, `detected`, `coverage` for the fault-simulation
//!   bench, plus `fault_classes`, `faults_ctrace`, `faults_dom` for the
//!   scale bench; `nodes`, `fanin_refs`, `interned_names` plus the
//!   resynthesis decisions for the arena bench) differs for that circuit. Decisions must be independent of timing, caching,
//!   and thread count. The schema is detected per row: only the decision
//!   keys a baseline row actually carries are compared, so one binary
//!   checks every report the perf harness emits. Or,
//! - a **circuit regressed**: its serial time grew by more than 15% beyond
//!   the machine-speed factor. The factor is the median of the per-circuit
//!   fresh/baseline time ratios, so a uniformly slower (or faster) CI
//!   runner shifts every ratio together and trips nothing; only a circuit
//!   that slowed down *relative to the rest of the suite* fails. Circuits
//!   within 2 ms of their expected time are exempt — at that scale the
//!   4-decimal JSON rounding and scheduler noise dominate.
//!
//! The parser handles exactly the flat one-row-per-line JSON that
//! `benches/perf.rs` emits; the workspace vendors no serde.

use std::process::ExitCode;

/// Allowed per-circuit slowdown beyond the median machine-speed ratio.
const TOLERANCE: f64 = 1.15;
/// Absolute slack (seconds) below which timing noise wins over the ratio.
const ABS_SLACK: f64 = 0.002;

/// Row fields that are *decisions* (must be bit-identical between runs),
/// as opposed to timings. A row carries whatever subset its benchmark
/// emits; comparison is over the baseline row's subset.
const DECISION_KEYS: &[&str] = &[
    "gates_after",
    "paths_after",
    "replacements",
    "edits",
    "nodes",
    "restored",
    "done",
    "failed",
    "shed",
    "gates",
    "faults",
    "fault_classes",
    "faults_ctrace",
    "faults_dom",
    "detected",
    "coverage",
    "fanin_refs",
    "interned_names",
];

#[derive(Debug, PartialEq)]
struct Row {
    name: String,
    secs: f64,
    decisions: Vec<(String, String)>,
}

/// Extracts the raw text of `"key": <value>` from a one-line JSON object.
fn field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = row.find(&tag)? + tag.len();
    let rest = row[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"name\"") {
            continue;
        }
        let get =
            |key: &str| field(line, key).ok_or_else(|| format!("row missing \"{key}\": {line}"));
        let decisions: Vec<(String, String)> = DECISION_KEYS
            .iter()
            .filter_map(|&k| field(line, k).map(|v| (k.to_string(), v.to_string())))
            .collect();
        if decisions.is_empty() {
            return Err(format!("row carries no decision fields: {line}"));
        }
        rows.push(Row {
            name: get("name")?.to_string(),
            secs: get("secs_1_thread")?.parse().map_err(|e| format!("secs_1_thread: {e}"))?,
            decisions,
        });
    }
    if rows.is_empty() {
        return Err("no circuit rows found".into());
    }
    Ok(rows)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Compares the suites; returns human-readable failure messages (empty =
/// pass).
fn check(baseline: &[Row], fresh: &[Row]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut ratios = Vec::new();
    let mut pairs = Vec::new();
    for b in baseline {
        let Some(f) = fresh.iter().find(|f| f.name == b.name) else {
            failures.push(format!("{}: missing from fresh report", b.name));
            continue;
        };
        for (key, bv) in &b.decisions {
            match f.decisions.iter().find(|(k, _)| k == key) {
                None => failures
                    .push(format!("{}: decision field {key} missing from fresh row", b.name)),
                Some((_, fv)) if fv != bv => {
                    failures.push(format!("{}: decision drift: {key} {bv} -> {fv}", b.name))
                }
                Some(_) => {}
            }
        }
        // Sub-rounding baseline times carry no ratio information.
        if b.secs > 0.0 {
            ratios.push(f.secs / b.secs);
            pairs.push((b, f));
        }
    }
    if ratios.is_empty() {
        return failures;
    }
    let speed = median(ratios.clone());
    for (b, f) in pairs {
        let expected = b.secs * speed;
        if f.secs > expected * TOLERANCE && f.secs - expected > ABS_SLACK {
            failures.push(format!(
                "{}: serial time regressed: {:.4}s vs {:.4}s expected \
                 (baseline {:.4}s x median machine ratio {:.3}, tolerance {:.0}%)",
                b.name,
                f.secs,
                expected,
                b.secs,
                speed,
                (TOLERANCE - 1.0) * 100.0
            ));
        }
    }
    failures
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        return Err("usage: bench_check <baseline.json> <fresh.json>".into());
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let baseline = parse_rows(&read(baseline_path)?)?;
    let fresh = parse_rows(&read(fresh_path)?)?;
    let failures = check(&baseline, &fresh);
    if failures.is_empty() {
        println!("bench_check: {} circuits OK (tolerance {:.0}%)", baseline.len(), {
            (TOLERANCE - 1.0) * 100.0
        });
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_check FAILED:\n{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, secs: f64, gates: u64, paths: u128, repl: u64) -> Row {
        Row {
            name: name.into(),
            secs,
            decisions: vec![
                ("gates_after".into(), gates.to_string()),
                ("paths_after".into(), paths.to_string()),
                ("replacements".into(), repl.to_string()),
            ],
        }
    }

    #[test]
    fn parses_perf_json_rows() {
        let text = r#"{
  "benchmark": "resynth",
  "circuits": [
    {"name": "irs_a", "gates_before": 64, "gates_after": 64, "paths_before": 325, "paths_after": 318, "replacements": 2, "cache_hits": 10, "cache_misses": 3, "secs_1_thread": 0.0256, "secs_n_threads": 0.0253, "speedup": 1.014},
    {"name": "irs_b", "gates_before": 65, "gates_after": 65, "paths_before": 1083, "paths_after": 1083, "replacements": 0, "cache_hits": 0, "cache_misses": 0, "secs_1_thread": 0.0258, "secs_n_threads": 0.0263, "speedup": 0.980}
  ]
}"#;
        let rows = parse_rows(text).unwrap();
        assert_eq!(rows, vec![row("irs_a", 0.0256, 64, 318, 2), row("irs_b", 0.0258, 65, 1083, 0)]);
    }

    fn edit_row(name: &str, secs: f64, edits: u64, restored: bool) -> Row {
        Row {
            name: name.into(),
            secs,
            decisions: vec![
                ("edits".into(), edits.to_string()),
                ("nodes".into(), "100".into()),
                ("restored".into(), restored.to_string()),
            ],
        }
    }

    #[test]
    fn parses_edit_json_rows() {
        let text = r#"{
  "benchmark": "edit",
  "circuits": [
    {"name": "irs_a", "nodes": 100, "edits": 72, "cycles": 400, "restored": true, "secs_1_thread": 0.0120, "secs_clone_revert": 0.0480, "journal_speedup": 4.000}
  ]
}"#;
        let rows = parse_rows(text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "irs_a");
        assert_eq!(rows[0].secs, 0.0120);
        assert_eq!(
            rows[0].decisions,
            vec![
                ("edits".to_string(), "72".to_string()),
                ("nodes".to_string(), "100".to_string()),
                ("restored".to_string(), "true".to_string()),
            ]
        );
    }

    #[test]
    fn parses_serve_json_rows() {
        let text = r#"{
  "benchmark": "serve",
  "circuits": [
    {"name": "serve_cold", "jobs_submitted": 6, "done": 6, "failed": 0, "shed": 0, "cache_hits": 12, "cache_misses": 30, "cache_loaded_entries": 0, "p50_ms": 4, "p99_ms": 9, "secs_1_thread": 0.0412, "secs_n_threads": 0.0151, "speedup": 2.728}
  ]
}"#;
        let rows = parse_rows(text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "serve_cold");
        assert_eq!(
            rows[0].decisions,
            vec![
                ("done".to_string(), "6".to_string()),
                ("failed".to_string(), "0".to_string()),
                ("shed".to_string(), "0".to_string()),
            ]
        );
    }

    #[test]
    fn parses_scale_json_rows() {
        let text = r#"{
  "benchmark": "scale",
  "circuits": [
    {"name": "stitch400", "gates": 107000, "faults": 479000, "fault_classes": 301000, "faults_ctrace": 352000, "faults_dom": 410000, "detected": 208000, "coverage": 0.4342, "patterns_applied": 1024, "secs_classic_1_thread": 6.1000, "secs_wide_1_thread": 1.2000, "secs_1_thread": 0.7000, "secs_2_threads": 0.4100, "secs_4_threads": 0.2400, "secs_8_threads": 0.1900, "speedup_wide_vs_classic_1t": 5.083, "speedup_ctrace_vs_wide_1t": 1.714, "scaling_4_threads": 2.917}
  ]
}"#;
        let rows = parse_rows(text).unwrap();
        assert_eq!(rows.len(), 1);
        // The regression gate reads the ctrace serial time, not the wide
        // or classic reference timings.
        assert_eq!(rows[0].secs, 0.7);
        // `gates` must not also capture `gates_after`-style keys, and
        // `faults` must not capture `faults_ctrace`/`faults_dom`; the
        // scale row pins exactly the seven campaign decisions.
        assert_eq!(
            rows[0].decisions,
            vec![
                ("gates".to_string(), "107000".to_string()),
                ("faults".to_string(), "479000".to_string()),
                ("fault_classes".to_string(), "301000".to_string()),
                ("faults_ctrace".to_string(), "352000".to_string()),
                ("faults_dom".to_string(), "410000".to_string()),
                ("detected".to_string(), "208000".to_string()),
                ("coverage".to_string(), "0.4342".to_string()),
            ]
        );
    }

    #[test]
    fn parses_arena_json_rows() {
        let text = r#"{
  "benchmark": "arena",
  "circuits": [
    {"name": "stitch420", "nodes": 106211, "fanin_refs": 197671, "interned_names": 106211, "bytes_per_node": 58.6, "replacements": 12, "gates_after": 104888, "secs_build": 1.2000, "secs_soa_rebuild": 0.0110, "secs_soa_new": 0.0040, "secs_entry_cold": 0.0150, "secs_entry_warm": 0.0000001, "speedup_entry_warm_vs_cold": 150000.0, "secs_1_thread": 3.4000}
  ]
}"#;
        let rows = parse_rows(text).unwrap();
        assert_eq!(rows.len(), 1);
        // The regression gate reads the resynthesis-pass time; the arena
        // shape and resynthesis outcomes are the pinned decisions.
        assert_eq!(rows[0].secs, 3.4);
        assert_eq!(
            rows[0].decisions,
            vec![
                ("gates_after".to_string(), "104888".to_string()),
                ("replacements".to_string(), "12".to_string()),
                ("nodes".to_string(), "106211".to_string()),
                ("fanin_refs".to_string(), "197671".to_string()),
                ("interned_names".to_string(), "106211".to_string()),
            ]
        );
    }

    #[test]
    fn gates_key_does_not_match_gates_after() {
        let row = r#"{"name": "irs_a", "gates_before": 64, "gates_after": 60, "paths_after": 318, "replacements": 2, "secs_1_thread": 0.01}"#;
        assert_eq!(field(row, "gates"), None);
        assert_eq!(field(row, "gates_after"), Some("60"));
    }

    #[test]
    fn edit_decision_drift_fails() {
        let base = vec![edit_row("a", 0.01, 72, true), edit_row("b", 0.01, 9, true)];
        let fresh = vec![edit_row("a", 0.01, 72, true), edit_row("b", 0.01, 9, false)];
        let failures = check(&base, &fresh);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("restored true -> false"), "{failures:?}");
    }

    #[test]
    fn uniform_machine_slowdown_passes() {
        let base = vec![row("a", 0.10, 1, 1, 0), row("b", 1.00, 2, 2, 1), row("c", 4.00, 3, 3, 0)];
        // Everything exactly 3x slower: a slower runner, not a regression.
        let fresh =
            vec![row("a", 0.30, 1, 1, 0), row("b", 3.00, 2, 2, 1), row("c", 12.00, 3, 3, 0)];
        assert!(check(&base, &fresh).is_empty());
    }

    #[test]
    fn single_circuit_regression_fails() {
        let base = vec![row("a", 0.10, 1, 1, 0), row("b", 1.00, 2, 2, 1), row("c", 4.00, 3, 3, 0)];
        let fresh = vec![row("a", 0.10, 1, 1, 0), row("b", 1.00, 2, 2, 1), row("c", 8.00, 3, 3, 0)];
        let failures = check(&base, &fresh);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("c: serial time regressed"), "{failures:?}");
    }

    #[test]
    fn decision_drift_fails_even_when_faster() {
        let base = vec![row("a", 0.10, 10, 20, 2), row("b", 0.10, 1, 1, 0)];
        let fresh = vec![row("a", 0.01, 9, 20, 2), row("b", 0.01, 1, 1, 0)];
        let failures = check(&base, &fresh);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("decision drift"), "{failures:?}");
    }

    #[test]
    fn tiny_times_are_noise_exempt() {
        let base = vec![row("a", 0.0001, 1, 1, 0), row("b", 1.00, 2, 2, 1), row("c", 1.0, 3, 3, 0)];
        // 10x ratio on a 0.1 ms circuit is rounding noise, not a regression.
        let fresh =
            vec![row("a", 0.0010, 1, 1, 0), row("b", 1.00, 2, 2, 1), row("c", 1.0, 3, 3, 0)];
        assert!(check(&base, &fresh).is_empty());
    }

    #[test]
    fn missing_circuit_fails() {
        let base = vec![row("a", 0.10, 1, 1, 0), row("b", 0.10, 1, 1, 0)];
        let fresh = vec![row("a", 0.10, 1, 1, 0)];
        let failures = check(&base, &fresh);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }
}
