//! `sft` — command-line driver for the synthesis-for-testability flow.
//!
//! ```text
//! sft stats      <in>                            circuit statistics
//! sft resynth    <in> <out> [opts]               Procedures 2/3
//! sft redundancy <in> <out>                      redundancy removal
//! sft testgen    <in>                            compact stuck-at test set
//! sft equiv      <a> <b>                         BDD equivalence check
//! sft techmap    <in>                            map & report literals/depth
//! sft pdf        <in> [--pairs N]                robust PDF campaign
//! sft convert    <in> <out>                      circuit format conversion
//! sft export     <in> (--verilog|--dot)          one-shot stdout export
//! sft serve      <root> [opts]                   job-directory daemon
//! sft gen        <kind> <out> [opts]             scale-tier circuit generation
//! ```
//!
//! Every command that reads or writes a circuit file speaks all the
//! formats of `docs/formats.md`: ISCAS-89 `.bench`, structural Verilog
//! (`.v`), ASCII/binary AIGER (`.aag`/`.aig`) and LUT-k coverings
//! (`.lut`). The format is chosen by file extension (unknown extensions
//! default to `.bench`) and can be forced with `--from <fmt>` for inputs
//! and `--to <fmt>` for outputs; `--lut-k N` sets the cut width of `.lut`
//! output. `sft convert a.bench b.aig` is the dedicated converter.
//!
//! `sft gen` kinds: `mul`/`adder`/`alu` (arithmetic, `--width N`), `dag`
//! (sliding-window random DAG, `--inputs/--outputs/--gates/--window/--seed`)
//! and `stitch` (`--copies N` XOR-checksummed random cores, same shape
//! options per core). Generation is deterministic in the parameters.
//!
//! Resynthesis options: `--objective gates|paths|combined`, `--k N`,
//! `--negation`, `--covers N`, `--dont-cares`.
//!
//! Effort options (resynth, testgen, pdf): `--time-limit <dur>` (e.g.
//! `500ms`, `10s`, `2m`, `1h`, or bare seconds) and `--step-limit <N>`
//! bound the run. An exhausted budget is not an error: the command prints
//! the stop reason, writes the best verified partial result, and exits 0.
//!
//! Parallelism (resynth, testgen, pdf): `--jobs N` runs the hot loops on
//! `N` worker threads (`0` or `all` = every core; default: all cores).
//! Results are bit-identical at any value; `--jobs 1` additionally
//! restores the exact single-threaded execution order.
//!
//! Fault-simulation engine (testgen): `--engine ctrace` (default) resolves
//! detections by critical-path tracing inside fanout-free regions with
//! dominator-gated stem observability; `--engine wide` keeps the explicit
//! per-fault propagation. The two are bit-identical — the flag is a
//! performance escape hatch, never a result change.
//!
//! `sft serve <root>` watches `<root>/jobs/incoming/` for `.bench`+`.job`
//! pairs and writes results to `<root>/jobs/done|failed/`. Options:
//! `--jobs N` concurrent jobs, `--queue N` waiting slots before shedding,
//! `--once` (drain and exit), `--cache <path>|off` (identification-cache
//! image; default `<root>/jobs/cache/identify.sigcache`), `--time-limit` /
//! `--step-limit` default per-job budgets, `--max-attempts N` and
//! `--stats-every <dur>`. Stop with SIGINT/SIGTERM (once = drain, twice =
//! cancel in-flight) or by creating `<root>/jobs/control/stop`.

use sft::atpg::{generate_test_set_with_budget, remove_redundancies, TestSetOptions};
use sft::budget::{Budget, StopReason};
use sft::circuits::{gen, random::RandomCircuitConfig};
use sft::core::{resynthesize_with_budget, Objective, ResynthOptions};
use sft::delay::{pdf_campaign_with_budget, PdfCampaignConfig};
use sft::io::{Format, WriteOptions};
use sft::netlist::{export, Circuit};
use sft::par::Jobs;
use sft::sim::SimEngine;
use sft::techmap::{map_circuit, Library};
use std::process::ExitCode;
use std::time::Duration;

/// Resolves the circuit format for `path`: an explicit `--from`/`--to`
/// name wins, otherwise the file extension decides, defaulting to
/// `.bench` for unknown extensions.
fn format_for(path: &str, forced: Option<&str>) -> Result<Format, String> {
    match forced {
        Some(name) => Format::from_name(name).ok_or_else(|| {
            format!("unknown format {name:?} (use bench, verilog, aag, aig or lut)")
        }),
        None => Ok(Format::from_path(std::path::Path::new(path)).unwrap_or(Format::Bench)),
    }
}

/// Reads a circuit in the format named by `--from` or the extension.
fn load(path: &str, args: &[String]) -> Result<Circuit, String> {
    let format = format_for(path, opt(args, "--from").as_deref())?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit")
        .to_string();
    sft::io::parse_bytes(&bytes, format, &name).map_err(|e| format!("{path}: {e}"))
}

/// Writes a circuit in the format named by `--to` or the extension.
fn save(path: &str, circuit: &Circuit, args: &[String]) -> Result<(), String> {
    let format = format_for(path, opt(args, "--to").as_deref())?;
    let mut options = WriteOptions::default();
    if let Some(k) = opt(args, "--lut-k") {
        options.lut_k = k.parse().map_err(|_| format!("bad --lut-k value {k:?}"))?;
    }
    let bytes =
        sft::io::write_bytes(circuit, format, &options).map_err(|e| format!("{path}: {e}"))?;
    std::fs::write(path, bytes).map_err(|e| format!("{path}: {e}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Options that take a value; their value token is not a positional arg.
const VALUE_OPTIONS: &[&str] = &[
    "--objective",
    "--k",
    "--covers",
    "--pairs",
    "--time-limit",
    "--step-limit",
    "--jobs",
    "--queue",
    "--cache",
    "--max-attempts",
    "--stats-every",
    "--width",
    "--inputs",
    "--outputs",
    "--gates",
    "--window",
    "--seed",
    "--copies",
    "--from",
    "--to",
    "--lut-k",
    "--engine",
];

/// Parses `--jobs` (default: all cores; `--jobs 1` = exact serial order).
fn jobs_from(args: &[String]) -> Result<Jobs, String> {
    match (flag(args, "--jobs"), opt(args, "--jobs")) {
        (true, None) => Err("--jobs needs a value (a number, 0 or \"all\")".into()),
        (_, Some(v)) => v.parse().map_err(|e| format!("--jobs: {e}")),
        _ => Ok(Jobs::all_cores()),
    }
}

fn engine_from(args: &[String]) -> Result<SimEngine, String> {
    match (flag(args, "--engine"), opt(args, "--engine")) {
        (true, None) => Err("--engine needs a value (wide or ctrace)".into()),
        (_, Some(v)) => {
            SimEngine::parse(&v).ok_or_else(|| format!("unknown engine {v:?} (wide or ctrace)"))
        }
        _ => Ok(SimEngine::default()),
    }
}

/// The non-flag arguments, in order, so flags may appear anywhere
/// (`sft resynth --time-limit 0s in.bench out.bench` works).
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_OPTIONS.contains(&a.as_str()) {
            skip = true;
        } else if !a.starts_with("--") {
            out.push(a);
        }
    }
    out
}

/// Parses `10s`, `500ms`, `2m`, `1h` or bare seconds (`15`).
fn parse_duration(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    let (number, unit) = match text.find(|c: char| !c.is_ascii_digit() && c != '.') {
        Some(i) => text.split_at(i),
        None => (text, "s"),
    };
    let value: f64 =
        number.parse().map_err(|_| format!("bad duration {text:?} (try 10s, 500ms, 2m)"))?;
    let seconds = match unit {
        "ms" => value / 1000.0,
        "s" => value,
        "m" => value * 60.0,
        "h" => value * 3600.0,
        other => return Err(format!("bad duration unit {other:?} (use ms, s, m or h)")),
    };
    if !seconds.is_finite() || seconds < 0.0 {
        return Err(format!("bad duration {text:?}"));
    }
    Ok(Duration::from_secs_f64(seconds))
}

/// Builds the effort budget from `--time-limit` / `--step-limit`.
fn budget_from(args: &[String]) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    match (flag(args, "--time-limit"), opt(args, "--time-limit")) {
        (true, None) => return Err("--time-limit needs a value (e.g. 10s)".into()),
        (_, Some(limit)) => budget = budget.with_time_limit(parse_duration(&limit)?),
        _ => {}
    }
    match (flag(args, "--step-limit"), opt(args, "--step-limit")) {
        (true, None) => return Err("--step-limit needs a value".into()),
        (_, Some(limit)) => {
            let steps: u64 = limit.parse().map_err(|_| format!("bad step limit {limit:?}"))?;
            budget = budget.with_step_limit(steps);
        }
        _ => {}
    }
    Ok(budget)
}

/// One-line stop-reason note for budget-aware commands.
fn print_stop(reason: StopReason) {
    if reason.is_early() {
        println!("stopped early: {reason} (partial result kept)");
    } else {
        println!("stop reason: {reason}");
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(
            "usage: sft <stats|resynth|redundancy|testgen|equiv|techmap|pdf|convert|export|serve|gen> \
                    ...\nsee `sft help`"
                .into(),
        );
    };
    let rest = &args[1..];
    match command.as_str() {
        "help" => {
            println!("see the crate README for full usage; commands:");
            println!(
                "  stats resynth redundancy testgen equiv techmap pdf convert export serve gen"
            );
            Ok(())
        }
        "stats" => {
            let files = positionals(rest);
            let c = load(files.first().ok_or("stats needs an input file")?, rest)?;
            println!("{}: {}", c.name(), c.stats());
            println!("{}: {}", c.name(), c.memory_stats());
            Ok(())
        }
        "resynth" => {
            let files = positionals(rest);
            let input = files.first().ok_or("resynth needs input and output files")?;
            let output = files.get(1).ok_or("resynth needs an output file")?;
            let mut c = load(input, rest)?;
            let objective = match opt(rest, "--objective").as_deref() {
                None | Some("gates") => Objective::Gates,
                Some("paths") => Objective::Paths,
                Some("combined") => Objective::Combined { gate_weight: 1, path_weight: 1 },
                Some(other) => return Err(format!("unknown objective {other:?}")),
            };
            let opts = ResynthOptions {
                objective,
                max_inputs: opt(rest, "--k").and_then(|v| v.parse().ok()).unwrap_or(5),
                allow_input_negation: flag(rest, "--negation"),
                max_cover_units: opt(rest, "--covers").and_then(|v| v.parse().ok()).unwrap_or(1),
                use_satisfiability_dont_cares: flag(rest, "--dont-cares"),
                jobs: jobs_from(rest)?,
                ..ResynthOptions::default()
            };
            let budget = budget_from(rest)?;
            let report =
                resynthesize_with_budget(&mut c, &opts, &budget).map_err(|e| e.to_string())?;
            println!("{report}");
            let stats = sft::core::identify_cache_stats();
            println!(
                "identify cache: {} hits, {} misses, {} entries ({:.1}% hit rate)",
                stats.hits,
                stats.misses,
                stats.entries,
                stats.hit_rate() * 100.0
            );
            print_stop(report.stop_reason);
            save(output, &c, rest)
        }
        "redundancy" => {
            let files = positionals(rest);
            let input = files.first().ok_or("redundancy needs input and output files")?;
            let output = files.get(1).ok_or("redundancy needs an output file")?;
            let mut c = load(input, rest)?;
            let report = remove_redundancies(&mut c, 50_000);
            println!(
                "{} removed, {} aborted, gates {} -> {}",
                report.removed, report.aborted, report.gates_before, report.gates_after
            );
            save(output, &c, rest)
        }
        "testgen" => {
            let files = positionals(rest);
            let c = load(files.first().ok_or("testgen needs an input file")?, rest)?;
            let budget = budget_from(rest)?;
            let opts = TestSetOptions {
                jobs: jobs_from(rest)?,
                engine: engine_from(rest)?,
                ..TestSetOptions::default()
            };
            let set = generate_test_set_with_budget(&c, &opts, &budget);
            println!(
                "# {} faults, {} redundant, {} aborted, {} untargeted, coverage {:.2}%",
                set.total_faults,
                set.redundant,
                set.aborted,
                set.untargeted,
                set.coverage() * 100.0
            );
            if set.stop_reason.is_early() {
                println!("# stopped early: {} (partial test set kept)", set.stop_reason);
            }
            for v in &set.vectors {
                let s: String = v.iter().map(|&b| if b { '1' } else { '0' }).collect();
                println!("{s}");
            }
            Ok(())
        }
        "equiv" => {
            let files = positionals(rest);
            let a = load(files.first().ok_or("equiv needs two files")?, rest)?;
            let b = load(files.get(1).ok_or("equiv needs two files")?, rest)?;
            match sft::bdd::equivalent(&a, &b).map_err(|e| e.to_string())? {
                sft::bdd::CheckResult::Equivalent => {
                    println!("equivalent");
                    Ok(())
                }
                sft::bdd::CheckResult::Different { output, witness } => {
                    let w: String = witness.iter().map(|&x| if x { '1' } else { '0' }).collect();
                    Err(format!("NOT equivalent: output {output} differs on input {w}"))
                }
            }
        }
        "techmap" => {
            let files = positionals(rest);
            let c = load(files.first().ok_or("techmap needs an input file")?, rest)?;
            println!("{}", map_circuit(&c, &Library::standard()));
            Ok(())
        }
        "pdf" => {
            let files = positionals(rest);
            let c = load(files.first().ok_or("pdf needs an input file")?, rest)?;
            let cfg = PdfCampaignConfig {
                max_pairs: opt(rest, "--pairs").and_then(|v| v.parse().ok()).unwrap_or(1 << 14),
                jobs: jobs_from(rest)?,
                ..PdfCampaignConfig::default()
            };
            let budget = budget_from(rest)?;
            let r = pdf_campaign_with_budget(&c, &cfg, &budget).map_err(|e| e.to_string())?;
            println!(
                "{}/{} robust path delay faults detected ({:.2}%) in {} pairs",
                r.detected,
                r.total_faults,
                r.coverage() * 100.0,
                r.pairs_applied
            );
            print_stop(r.stop_reason);
            Ok(())
        }
        "convert" => {
            let files = positionals(rest);
            let input = files.first().ok_or("convert needs input and output files")?;
            let output = files.get(1).ok_or("convert needs an output file")?;
            let c = load(input, rest)?;
            save(output, &c, rest)?;
            println!(
                "{}: {} -> {} ({})",
                c.name(),
                format_for(input, opt(rest, "--from").as_deref())?,
                format_for(output, opt(rest, "--to").as_deref())?,
                c.stats()
            );
            Ok(())
        }
        "export" => {
            let files = positionals(rest);
            let c = load(files.first().ok_or("export needs an input file")?, rest)?;
            if flag(rest, "--verilog") {
                print!("{}", sft::io::verilog::write(&c).map_err(|e| e.to_string())?);
            } else if flag(rest, "--dot") {
                print!("{}", export::write_dot(&c));
            } else {
                return Err("export needs --verilog or --dot".into());
            }
            Ok(())
        }
        "gen" => {
            let files = positionals(rest);
            let kind =
                files.first().ok_or("gen needs a kind: mul, adder, alu, dag or stitch")?.as_str();
            let output = files.get(1).ok_or("gen needs an output file")?;
            let num = |name: &str, default: usize| -> Result<usize, String> {
                match opt(rest, name) {
                    Some(v) => v.parse().map_err(|_| format!("bad value {v:?} for {name}")),
                    None => Ok(default),
                }
            };
            let seed: u64 = match opt(rest, "--seed") {
                Some(v) => v.parse().map_err(|_| format!("bad seed {v:?}"))?,
                None => 1,
            };
            let c = match kind {
                "mul" => gen::wide_multiplier(num("--width", 32)?),
                "adder" => gen::wide_adder(num("--width", 64)?),
                "alu" => gen::alu(num("--width", 64)?),
                "dag" => gen::deep_dag(&RandomCircuitConfig {
                    inputs: num("--inputs", 64)?,
                    outputs: num("--outputs", 32)?,
                    gates: num("--gates", 100_000)?,
                    window: num("--window", 48)?,
                    seed,
                }),
                "stitch" => gen::stitched(
                    num("--copies", 100)?,
                    &RandomCircuitConfig {
                        inputs: num("--inputs", 32)?,
                        outputs: num("--outputs", 16)?,
                        gates: num("--gates", 260)?,
                        window: num("--window", 56)?,
                        seed,
                    },
                ),
                other => {
                    return Err(format!("unknown gen kind {other:?} (mul|adder|alu|dag|stitch)"))
                }
            };
            println!("{}: {}", c.name(), c.stats());
            save(output, &c, rest)
        }
        "serve" => {
            let files = positionals(rest);
            let root = files.first().ok_or("serve needs a root directory")?;
            let mut config = sft::serve::ServeConfig::new(root.as_str());
            config.jobs = jobs_from(rest)?;
            config.once = flag(rest, "--once");
            if let Some(queue) = opt(rest, "--queue") {
                config.queue = queue.parse().map_err(|_| format!("bad queue size {queue:?}"))?;
            }
            match opt(rest, "--cache").as_deref() {
                Some("off") => config.cache = None,
                Some(path) => config.cache = Some(path.into()),
                None => {}
            }
            if let Some(limit) = opt(rest, "--time-limit") {
                config.default_time_limit = Some(parse_duration(&limit)?);
            }
            if let Some(limit) = opt(rest, "--step-limit") {
                let steps: u64 = limit.parse().map_err(|_| format!("bad step limit {limit:?}"))?;
                config.default_step_limit = Some(steps);
            }
            if let Some(n) = opt(rest, "--max-attempts") {
                config.max_attempts = n.parse().map_err(|_| format!("bad attempt count {n:?}"))?;
                if config.max_attempts == 0 {
                    return Err("--max-attempts must be at least 1".into());
                }
            }
            if let Some(period) = opt(rest, "--stats-every") {
                config.stats_every = parse_duration(&period)?;
            }
            sft::serve::serve(&config).map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; see `sft help`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
