//! `sft` — synthesis-for-testability of combinational logic circuits via
//! comparison functions.
//!
//! A from-scratch Rust reproduction of **Pomeranz & Reddy, "On
//! Synthesis-for-Testability of Combinational Logic Circuits", 32nd Design
//! Automation Conference, 1995**, together with every substrate the paper's
//! flow depends on: a gate-level netlist with Procedure-1 path counting, an
//! ISCAS-style `.bench` reader/writer, BDD-based equivalence checking,
//! parallel-pattern stuck-at fault simulation, PODEM ATPG with redundancy
//! removal, a robust path-delay-fault engine, a SIS-style technology
//! mapper, and a redundancy-addition-and-removal baseline optimizer.
//!
//! This facade crate re-exports the workspace members under stable module
//! names. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results on every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use sft::core::{identify, procedure2, IdentifyOptions, ResynthOptions};
//! use sft::netlist::bench_format::parse;
//! use sft::truth::TruthTable;
//!
//! // The paper's f2 is a comparison function with L = 5, U = 10.
//! let f2 = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14])?;
//! let spec = identify(&f2, &IdentifyOptions::default()).expect("comparison function");
//! assert_eq!((spec.lower, spec.upper), (5, 10));
//!
//! // Resynthesize a circuit with Procedure 2 (gates minimized); the edit
//! // is verified equivalent with BDDs internally.
//! let mut c = parse(
//!     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt1 = AND(a, b)\nt2 = AND(b, a)\ny = OR(t1, t2)\n",
//!     "demo",
//! )?;
//! let report = procedure2(&mut c, &ResynthOptions::default())?;
//! assert!(report.gates_after < report.gates_before);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

/// Truth tables and cubes for functions of up to 7 inputs.
pub use sft_truth as truth;

/// Permutation-canonical forms and the shared signature memo table.
pub use sft_canon as canon;

/// The gate-level circuit model, `.bench` I/O, path counting and
/// structural transforms.
pub use sft_netlist as netlist;

/// ROBDDs and combinational equivalence checking.
pub use sft_bdd as bdd;

/// Parallel-pattern logic & stuck-at fault simulation and random-pattern
/// campaigns.
pub use sft_sim as sim;

/// PODEM ATPG, redundancy identification and removal.
pub use sft_atpg as atpg;

/// Path delay faults: enumeration, robust sensitization, two-pattern
/// campaigns.
pub use sft_delay as delay;

/// Comparison functions, comparison units, and Procedures 2 & 3 — the
/// paper's contribution.
pub use sft_core as core;

/// SIS-style technology mapping (Table 4 substrate).
pub use sft_techmap as techmap;

/// The RAMBO_C-style redundancy-addition-and-removal baseline (Table 3).
pub use sft_rambo as rambo;

/// Benchmark circuit generators and the `irs*` substitute suite.
pub use sft_circuits as circuits;

/// The effort governor: budgets (deadline, steps), cancellation, and the
/// workspace-wide [`StopReason`](sft_budget::StopReason) vocabulary.
pub use sft_budget as budget;

/// Fork-join parallelism: the [`Jobs`](sft_par::Jobs) thread-count knob,
/// order-preserving [`parallel_map`](sft_par::parallel_map), admission
/// control, and counter-based RNG stream derivation.
pub use sft_par as par;

/// Multi-format circuit I/O behind one [`Format`](sft_io::Format)-dispatched
/// API: `.bench`, canonical structural Verilog, ASCII/binary AIGER, and
/// LUT-`k` coverings. See `docs/formats.md` for the formats contract.
pub use sft_io as io;

/// The crash-safe job-directory resynthesis daemon behind `sft serve`:
/// persistent warm identification cache, per-job panic isolation,
/// admission control with load shedding, and graceful shutdown.
pub use sft_serve as serve;
