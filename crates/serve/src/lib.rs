//! `sft-serve` — a crash-safe, std-only resynthesis daemon over a job
//! directory.
//!
//! The daemon turns the one-shot `sft resynth` flow into a long-lived
//! service without taking on a network stack: the filesystem is the API.
//! Drop a netlist — `.bench`, structural Verilog `.v`, ASCII/binary AIGER
//! `.aag`/`.aig`, or a `.lut` covering, see `docs/formats.md` — and a small
//! `.job` spec into `<root>/jobs/incoming/` and a result netlist in the
//! same format plus a one-line JSON report appear in `<root>/jobs/done/`
//! (or `<root>/jobs/failed/` with an explicit outcome). All jobs in one daemon share the process-wide
//! comparison-function identification memo, which persists across restarts
//! as a checksummed cache image — a warm daemon answers repeat workloads
//! without redoing the exponential identification work, and produces
//! **bit-identical results** to a cold one.
//!
//! The three design rules, in priority order:
//!
//! 1. **Never take the daemon down for one job.** Panics are contained per
//!    job (`panicked` outcome), poisoned cache shards rebuild themselves,
//!    malformed inputs are typed errors.
//! 2. **Never lose or flap a result.** Every job transition is a rename;
//!    reports are written atomically and are immutable once present;
//!    orphaned jobs re-run idempotently after a crash.
//! 3. **Degrade explicitly, not silently.** Overload sheds jobs with an
//!    `overloaded` report; budget exhaustion completes with the partial
//!    verified result and a stop reason; a corrupt cache image is
//!    quarantined (kept for forensics) and the daemon starts cold.
//!
//! See [`daemon`] for the lifecycle and [`outcome`] for the report format;
//! `DESIGN.md` in the workspace root has the full architecture notes.
//!
//! # Example
//!
//! ```
//! use sft_serve::{serve, ServeConfig};
//! use std::time::Duration;
//!
//! let root = std::env::temp_dir().join(format!("sft-serve-doc-{}", std::process::id()));
//! let incoming = root.join("jobs/incoming");
//! std::fs::create_dir_all(&incoming)?;
//! std::fs::write(incoming.join("tiny.bench"), "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n")?;
//! std::fs::write(incoming.join("tiny.job"), "objective = gates\n")?;
//!
//! let config = ServeConfig {
//!     once: true,                       // drain what's there, then return
//!     cache: None,                      // no persistent cache for the demo
//!     handle_signals: false,
//!     poll: Duration::from_millis(1),
//!     ..ServeConfig::new(&root)
//! };
//! let summary = serve(&config)?;
//! assert_eq!(summary.done, 1);
//! assert!(root.join("jobs/done/tiny.report.json").exists());
//! # std::fs::remove_dir_all(&root)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod daemon;
pub mod outcome;
pub mod spec;

pub use daemon::{serve, ServeConfig, ServeSummary};
pub use outcome::{EngineOutcome, JobReport, Outcome};
pub use spec::{parse_spec, Chaos, JobSpec, SpecError};
