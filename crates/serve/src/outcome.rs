//! Machine-readable job outcomes.
//!
//! Every job the daemon touches ends in exactly one **outcome**, written as
//! a one-line flat-JSON report next to the job's files in `done/` or
//! `failed/`. The taxonomy distinguishes *what the requester should do
//! next*:
//!
//! | outcome      | dir      | meaning                                        |
//! |--------------|----------|------------------------------------------------|
//! | `done`       | `done/`  | engine ran; result `.bench` is next to report  |
//! | `failed`     | `failed/`| bad request or terminal error; fix and resubmit|
//! | `overloaded` | `failed/`| load-shed before running; resubmit later       |
//! | `panicked`   | `failed/`| engine panicked; isolated, daemon kept running |
//!
//! A budget that runs out is **not** a failure: the job completes as `done`
//! with the partial (verified) result and the `stop_reason` says why the
//! engine stopped early — the same anytime contract the library APIs have.
//!
//! Reports are written atomically (temp file + rename) and **first write
//! wins**: a report that already exists is never overwritten, so re-running
//! an orphaned job after a crash cannot flap a result a consumer already
//! read.

use std::fmt;
use std::io;
use std::path::Path;

/// Terminal classification of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The engine ran to a (possibly budget-truncated) verified result.
    Done,
    /// Malformed request or terminal engine error.
    Failed,
    /// Shed by admission control before running.
    Overloaded,
    /// The worker panicked; the panic was contained to this job.
    Panicked,
}

impl Outcome {
    /// The stable string used in reports and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Done => "done",
            Outcome::Failed => "failed",
            Outcome::Overloaded => "overloaded",
            Outcome::Panicked => "panicked",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Engine result fields of a completed job (absent for jobs that never ran).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOutcome {
    /// Why the engine stopped (`converged`, `deadline`, ...).
    pub stop_reason: String,
    /// Committed passes.
    pub passes: usize,
    /// Subcircuit replacements committed.
    pub replacements: usize,
    /// Equivalent 2-input gates before.
    pub gates_before: u64,
    /// Equivalent 2-input gates after.
    pub gates_after: u64,
    /// Path count before (saturating display form, e.g. `">= 123"`).
    pub paths_before: String,
    /// Path count after.
    pub paths_after: String,
}

/// One job's report: everything a requester needs to act on the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The job stem (file name without extension).
    pub job: String,
    /// Terminal classification.
    pub outcome: Outcome,
    /// How many times the daemon attempted the job (1 = first try).
    pub attempts: u32,
    /// Wall-clock of the final attempt, in milliseconds.
    pub elapsed_ms: u64,
    /// Engine results, when the engine ran.
    pub engine: Option<EngineOutcome>,
    /// Process-wide identification-cache hits at job completion.
    pub cache_hits: u64,
    /// Process-wide identification-cache misses at job completion.
    pub cache_misses: u64,
    /// Human-readable error for non-`done` outcomes.
    pub error: Option<String>,
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JobReport {
    /// The report as one flat JSON line (with trailing newline), the same
    /// shape `bench_check` and the CI smoke job consume.
    pub fn to_json_line(&self) -> String {
        let mut fields: Vec<String> = vec![
            format!("\"job\":\"{}\"", json_escape(&self.job)),
            format!("\"outcome\":\"{}\"", self.outcome),
            format!("\"attempts\":{}", self.attempts),
            format!("\"elapsed_ms\":{}", self.elapsed_ms),
        ];
        if let Some(engine) = &self.engine {
            fields.push(format!("\"stop_reason\":\"{}\"", json_escape(&engine.stop_reason)));
            fields.push(format!("\"passes\":{}", engine.passes));
            fields.push(format!("\"replacements\":{}", engine.replacements));
            fields.push(format!("\"gates_before\":{}", engine.gates_before));
            fields.push(format!("\"gates_after\":{}", engine.gates_after));
            fields.push(format!("\"paths_before\":\"{}\"", json_escape(&engine.paths_before)));
            fields.push(format!("\"paths_after\":\"{}\"", json_escape(&engine.paths_after)));
        }
        fields.push(format!("\"cache_hits\":{}", self.cache_hits));
        fields.push(format!("\"cache_misses\":{}", self.cache_misses));
        if let Some(error) = &self.error {
            fields.push(format!("\"error\":\"{}\"", json_escape(error)));
        }
        format!("{{{}}}\n", fields.join(","))
    }
}

/// Atomically writes `bytes` to `path` unless `path` already exists.
///
/// The write goes to a `.tmp` sibling first and is renamed into place, so a
/// crash mid-write can never leave a half-written file at `path`. Returns
/// `false` (keeping the existing file untouched) when `path` is already
/// present — results in `done/` are immutable once a consumer may have
/// seen them.
///
/// # Errors
///
/// Propagates I/O errors from the write or the rename.
pub fn write_new(path: &Path, bytes: &[u8]) -> io::Result<bool> {
    if path.exists() {
        return Ok(false);
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> JobReport {
        JobReport {
            job: "c17".into(),
            outcome: Outcome::Done,
            attempts: 1,
            elapsed_ms: 12,
            engine: Some(EngineOutcome {
                stop_reason: "converged".into(),
                passes: 2,
                replacements: 3,
                gates_before: 10,
                gates_after: 8,
                paths_before: "11".into(),
                paths_after: "9".into(),
            }),
            cache_hits: 5,
            cache_misses: 7,
            error: None,
        }
    }

    #[test]
    fn json_line_is_flat_and_complete() {
        let line = report().to_json_line();
        assert!(line.ends_with('\n'));
        assert!(line.starts_with('{'));
        for needle in [
            "\"job\":\"c17\"",
            "\"outcome\":\"done\"",
            "\"attempts\":1",
            "\"stop_reason\":\"converged\"",
            "\"gates_after\":8",
            "\"paths_after\":\"9\"",
            "\"cache_hits\":5",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(!line.contains("\"error\""));
    }

    #[test]
    fn error_strings_are_escaped() {
        let mut r = report();
        r.outcome = Outcome::Failed;
        r.engine = None;
        r.error = Some("line 3: bad \"quote\"\nnext".into());
        let line = r.to_json_line();
        assert!(line.contains(r#"\"quote\""#));
        assert!(line.contains("\\n"));
        assert_eq!(line.matches('\n').count(), 1, "escaped newline must not split the line");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("tab\tok"), "tab\\tok");
    }

    #[test]
    fn write_new_is_first_write_wins() {
        let dir = std::env::temp_dir().join(format!("sft-serve-outcome-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        let _ = std::fs::remove_file(&path);
        assert!(write_new(&path, b"first").unwrap());
        assert!(!write_new(&path, b"second").unwrap());
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
