//! The `.job` request format: a tiny `key = value` file dropped next to the
//! `.bench` netlist it refers to.
//!
//! The format is deliberately line-oriented and diff-friendly:
//!
//! ```text
//! # resynthesize for path count, at most 2 seconds
//! objective = paths
//! max_inputs = 5
//! time_limit_ms = 2000
//! ```
//!
//! Every key is optional; an empty (or absent) spec runs Procedure 2 with
//! the daemon's defaults. Unknown keys, malformed values and duplicate keys
//! are **typed errors** ([`SpecError`]) — a daemon parses untrusted files,
//! so nothing in this module panics on any input.

use sft_core::{Objective, ResynthOptions};
use sft_par::Jobs;
use std::fmt;
use std::time::Duration;

/// Error parsing a job spec, with the 1-based line it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Deterministic failure injection for tests and drills, requested by the
/// job itself (`chaos = ...`). Real clients simply omit the key; the daemon
/// honors it so its isolation and retry paths stay testable end-to-end
/// without mocking the filesystem or the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaos {
    /// Panic inside the worker after the inputs parse (`chaos = panic`).
    Panic,
    /// Sleep before running the engine (`chaos = sleep:<ms>`).
    Sleep(Duration),
    /// Fail the first `n` attempts with a retryable error, then succeed
    /// (`chaos = fail:<n>`).
    FailAttempts(u32),
}

/// A parsed job request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobSpec {
    /// `objective = gates | paths | combined:<gw>,<pw>`.
    pub objective: Option<Objective>,
    /// `max_inputs = <K>` — the cone input limit (the paper's `K`).
    pub max_inputs: Option<usize>,
    /// `max_passes = <N>`.
    pub max_passes: Option<usize>,
    /// `time_limit_ms = <N>` — per-job wall-clock budget.
    pub time_limit: Option<Duration>,
    /// `step_limit = <N>` — per-job step budget.
    pub step_limit: Option<u64>,
    /// `chaos = panic | sleep:<ms> | fail:<n>` — test-only failure injection.
    pub chaos: Option<Chaos>,
}

impl JobSpec {
    /// The resynthesis options this request asks for.
    ///
    /// Per-job cone scoring is always **serial**: the daemon's parallelism
    /// is across jobs (the admission gate), and serial scoring keeps every
    /// job's output bit-identical between warm-cache and cold-cache runs
    /// even when the job carries a step budget.
    pub fn resynth_options(&self) -> ResynthOptions {
        let defaults = ResynthOptions::default();
        ResynthOptions {
            objective: self.objective.unwrap_or_default(),
            max_inputs: self.max_inputs.unwrap_or(defaults.max_inputs),
            max_passes: self.max_passes.unwrap_or(defaults.max_passes),
            jobs: Jobs::serial(),
            ..defaults
        }
    }
}

fn bad(line: usize, message: impl Into<String>) -> SpecError {
    SpecError { line, message: message.into() }
}

fn parse_objective(value: &str, line: usize) -> Result<Objective, SpecError> {
    match value {
        "gates" => Ok(Objective::Gates),
        "paths" => Ok(Objective::Paths),
        other => {
            let weights = other
                .strip_prefix("combined:")
                .ok_or_else(|| bad(line, format!("unknown objective {other:?}")))?;
            let (gw, pw) = weights
                .split_once(',')
                .ok_or_else(|| bad(line, "combined objective needs combined:<gw>,<pw>"))?;
            let gate_weight =
                gw.trim().parse().map_err(|_| bad(line, format!("bad gate weight {gw:?}")))?;
            let path_weight =
                pw.trim().parse().map_err(|_| bad(line, format!("bad path weight {pw:?}")))?;
            Ok(Objective::Combined { gate_weight, path_weight })
        }
    }
}

fn parse_chaos(value: &str, line: usize) -> Result<Chaos, SpecError> {
    if value == "panic" {
        return Ok(Chaos::Panic);
    }
    if let Some(ms) = value.strip_prefix("sleep:") {
        let ms: u64 = ms.trim().parse().map_err(|_| bad(line, format!("bad sleep {ms:?}")))?;
        return Ok(Chaos::Sleep(Duration::from_millis(ms)));
    }
    if let Some(n) = value.strip_prefix("fail:") {
        let n: u32 = n.trim().parse().map_err(|_| bad(line, format!("bad fail count {n:?}")))?;
        return Ok(Chaos::FailAttempts(n));
    }
    Err(bad(line, format!("unknown chaos mode {value:?} (panic, sleep:<ms>, fail:<n>)")))
}

/// Parses `key = value` job-spec text.
///
/// `#` starts a comment (whole-line or trailing); blank lines are ignored;
/// keys may not repeat.
///
/// # Errors
///
/// [`SpecError`] with a line number for unknown keys, malformed values,
/// duplicate keys, and lines without `=`.
pub fn parse_spec(text: &str) -> Result<JobSpec, SpecError> {
    let mut spec = JobSpec::default();
    let mut seen: Vec<&str> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| bad(lineno, format!("expected key = value, got {line:?}")))?;
        let (key, value) = (key.trim(), value.trim());
        if seen.contains(&key) {
            return Err(bad(lineno, format!("duplicate key {key:?}")));
        }
        match key {
            "objective" => spec.objective = Some(parse_objective(value, lineno)?),
            "max_inputs" => {
                let k: usize =
                    value.parse().map_err(|_| bad(lineno, format!("bad max_inputs {value:?}")))?;
                if !(1..=16).contains(&k) {
                    return Err(bad(lineno, format!("max_inputs {k} outside 1..=16")));
                }
                spec.max_inputs = Some(k);
            }
            "max_passes" => {
                let n: usize =
                    value.parse().map_err(|_| bad(lineno, format!("bad max_passes {value:?}")))?;
                if n == 0 {
                    return Err(bad(lineno, "max_passes must be at least 1"));
                }
                spec.max_passes = Some(n);
            }
            "time_limit_ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| bad(lineno, format!("bad time_limit_ms {value:?}")))?;
                spec.time_limit = Some(Duration::from_millis(ms));
            }
            "step_limit" => {
                let n: u64 =
                    value.parse().map_err(|_| bad(lineno, format!("bad step_limit {value:?}")))?;
                spec.step_limit = Some(n);
            }
            "chaos" => spec.chaos = Some(parse_chaos(value, lineno)?),
            other => return Err(bad(lineno, format!("unknown key {other:?}"))),
        }
        seen.push(key);
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_all_defaults() {
        let spec = parse_spec("").unwrap();
        assert_eq!(spec, JobSpec::default());
        let opts = spec.resynth_options();
        assert_eq!(opts.objective, Objective::Gates);
        assert!(opts.jobs.is_serial());
    }

    #[test]
    fn full_spec_parses() {
        let text = "\
# a comment
objective = combined:2,3   # trailing comment
max_inputs = 6
max_passes = 4
time_limit_ms = 1500
step_limit = 99
chaos = sleep:25
";
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.objective, Some(Objective::Combined { gate_weight: 2, path_weight: 3 }));
        assert_eq!(spec.max_inputs, Some(6));
        assert_eq!(spec.max_passes, Some(4));
        assert_eq!(spec.time_limit, Some(Duration::from_millis(1500)));
        assert_eq!(spec.step_limit, Some(99));
        assert_eq!(spec.chaos, Some(Chaos::Sleep(Duration::from_millis(25))));
    }

    #[test]
    fn chaos_modes_parse() {
        assert_eq!(parse_spec("chaos = panic").unwrap().chaos, Some(Chaos::Panic));
        assert_eq!(parse_spec("chaos = fail:2").unwrap().chaos, Some(Chaos::FailAttempts(2)));
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for (text, needle) in [
            ("objective = frobnicate", "unknown objective"),
            ("objective = combined:1", "combined"),
            ("objective = combined:a,b", "gate weight"),
            ("max_inputs = 0", "outside"),
            ("max_inputs = 99", "outside"),
            ("max_inputs = five", "bad max_inputs"),
            ("max_passes = 0", "at least 1"),
            ("time_limit_ms = -3", "bad time_limit_ms"),
            ("step_limit = 1e9", "bad step_limit"),
            ("chaos = explode", "unknown chaos"),
            ("chaos = sleep:soon", "bad sleep"),
            ("wat = 1", "unknown key"),
            ("just words", "key = value"),
            ("objective = gates\nobjective = paths", "duplicate key"),
        ] {
            match parse_spec(text) {
                Err(e) => assert!(
                    e.message.contains(needle),
                    "{text:?}: message {:?} lacks {needle:?}",
                    e.message
                ),
                Ok(s) => panic!("{text:?} unexpectedly parsed as {s:?}"),
            }
        }
    }

    #[test]
    fn line_numbers_point_at_the_offending_line() {
        let err = parse_spec("objective = gates\n\n# fine\nwat = 1\n").unwrap_err();
        assert_eq!(err.line, 4);
    }
}
