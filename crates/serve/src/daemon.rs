//! The job-directory daemon: scan, admit, isolate, report, survive.
//!
//! # Job lifecycle
//!
//! A request is two files dropped into `<root>/jobs/incoming/`: the netlist
//! payload `<stem>.<ext>` and the spec `<stem>.job` (write the payload
//! first — the `.job` file is the commit point the scanner keys on). The
//! payload may be any circuit format `sft-io` reads — `.bench`, structural
//! Verilog `.v`, ASCII/binary AIGER `.aag`/`.aig`, or a `.lut` covering —
//! and the result netlist is written back in the *same* format. From there:
//!
//! ```text
//! incoming/ --claim (rename)--> running/ --success--> done/   (payload + .report.json)
//!     ^                           |
//!     |        retryable failure, |  terminal failure / panic / shed
//!     +------- attempts left -----+--------> failed/ (.job [+ payload] + .report.json)
//! ```
//!
//! Every transition is a `rename` on the same filesystem, so a job is in
//! exactly one directory at any instant and a crash at any point leaves it
//! in a well-defined place: on restart, everything found in `running/` is
//! an orphan of a dead daemon and is renamed back to `incoming/` to be
//! re-run. Re-running is idempotent — reports and result netlists are
//! written atomically and first-write-wins (see [`crate::outcome`]), so a
//! consumer can never observe a `done/` result change underneath it.
//!
//! # Isolation and degradation
//!
//! Each job runs under `catch_unwind`: a panicking engine produces a
//! `panicked` report for *that job* and the daemon keeps serving (the
//! process-wide identification cache recovers poisoned shards by rebuilding
//! them — see `SigCache`). Admission control bounds concurrent work to the
//! `--jobs` knob with a bounded wait queue on top; jobs beyond both are
//! shed with an explicit `overloaded` outcome rather than queued without
//! bound. Transient failures (unreadable files mid-drop) are retried with
//! linear backoff up to a per-job attempt cap, then reported terminally.
//!
//! # Shutdown
//!
//! The first SIGINT/SIGTERM (or the appearance of `<root>/jobs/control/stop`)
//! stops claiming and drains in-flight jobs; a second signal additionally
//! cancels in-flight engines through their budgets (they roll back to their
//! last verified pass and report `cancelled`). The warm cache is flushed on
//! the way out. SIGKILL needs no cooperation: the rename protocol plus
//! atomic first-write-wins reports make restart recovery exact.

use crate::outcome::{write_new, EngineOutcome, JobReport, Outcome};
use crate::spec::{parse_spec, Chaos};
use sft_budget::{Budget, CancelFlag};
use sft_canon::persist::{self, PersistError};
use sft_canon::CacheStats;
use sft_core::{
    identify_cache_load, identify_cache_poison_recoveries, identify_cache_save,
    identify_cache_stats, resynthesize_with_budget, ResynthReport,
};
use sft_io::{Format, WriteOptions};
use sft_netlist::Circuit;
use sft_par::{Admission, Jobs};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration. Start from [`ServeConfig::new`] and override
/// fields; the defaults are production-shaped (all cores, bounded queue,
/// persistent cache next to the job dirs, signals handled).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root directory; the daemon owns `<root>/jobs/*`.
    pub root: PathBuf,
    /// Concurrent jobs (the admission capacity).
    pub jobs: Jobs,
    /// Jobs allowed to wait in `incoming/` once all slots are busy before
    /// new arrivals are shed with an `overloaded` outcome.
    pub queue: usize,
    /// Process everything present, drain, and exit (for tests, benches and
    /// batch use) instead of serving until a signal.
    pub once: bool,
    /// Identification-cache image path; `None` disables persistence.
    pub cache: Option<PathBuf>,
    /// Wall-clock budget applied to jobs whose spec names none.
    pub default_time_limit: Option<Duration>,
    /// Step budget applied to jobs whose spec names none.
    pub default_step_limit: Option<u64>,
    /// Attempts per job before a retryable failure becomes terminal.
    pub max_attempts: u32,
    /// Base backoff between attempts (linear: `attempt * backoff`).
    pub retry_backoff: Duration,
    /// Scan interval of the main loop.
    pub poll: Duration,
    /// Period of the stats line and cache flush.
    pub stats_every: Duration,
    /// Install SIGINT/SIGTERM handlers (disable when embedding the daemon
    /// in a process that owns its own signal disposition).
    pub handle_signals: bool,
}

impl ServeConfig {
    /// Production-shaped defaults rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        let cache = Some(root.join("jobs").join("cache").join("identify.sigcache"));
        ServeConfig {
            root,
            jobs: Jobs::all_cores(),
            queue: 16,
            once: false,
            cache,
            default_time_limit: None,
            default_step_limit: None,
            max_attempts: 3,
            retry_backoff: Duration::from_millis(50),
            poll: Duration::from_millis(10),
            stats_every: Duration::from_secs(10),
            handle_signals: true,
        }
    }
}

/// Final counter snapshot returned by [`serve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Jobs claimed and started.
    pub accepted: u64,
    /// Jobs that produced a `done` result.
    pub done: u64,
    /// Jobs that ended `failed` or `panicked`.
    pub failed: u64,
    /// Jobs shed with an `overloaded` outcome.
    pub shed: u64,
    /// Retry attempts scheduled (not jobs: one job may retry twice).
    pub retried: u64,
    /// Jobs whose worker panicked (also counted in `failed`).
    pub panicked: u64,
    /// Cache images loaded at startup (0 or 1).
    pub cache_loads: u64,
    /// Entries the loaded image contributed.
    pub cache_loaded_entries: u64,
    /// Corrupt cache images quarantined at startup (0 or 1).
    pub cache_quarantines: u64,
    /// Process-wide identification-cache counters at exit.
    pub cache: CacheStats,
    /// Cache shards rebuilt after lock poisoning.
    pub shard_recoveries: u64,
    /// Job attempts whose payload parse was served from the parsed-netlist
    /// cache (retries and repeat submissions of unchanged payloads).
    pub parse_cache_hits: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    retried: AtomicU64,
    panicked: AtomicU64,
    cache_loads: AtomicU64,
    cache_loaded_entries: AtomicU64,
    cache_quarantines: AtomicU64,
    parse_hits: AtomicU64,
}

impl Counters {
    fn summary(&self) -> ServeSummary {
        ServeSummary {
            accepted: self.accepted.load(Ordering::Relaxed),
            done: self.done.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            cache_loads: self.cache_loads.load(Ordering::Relaxed),
            cache_loaded_entries: self.cache_loaded_entries.load(Ordering::Relaxed),
            cache_quarantines: self.cache_quarantines.load(Ordering::Relaxed),
            cache: identify_cache_stats(),
            shard_recoveries: identify_cache_poison_recoveries(),
            parse_cache_hits: self.parse_hits.load(Ordering::Relaxed),
        }
    }

    fn stats_line(&self) -> String {
        let s = self.summary();
        format!(
            "serve: accepted={} done={} failed={} shed={} retried={} panicked={} | \
             cache: entries={} hits={} misses={} hit_rate={:.1}% loads={} quarantines={} \
             shard_recoveries={} parse_hits={}",
            s.accepted,
            s.done,
            s.failed,
            s.shed,
            s.retried,
            s.panicked,
            s.cache.entries,
            s.cache.hits,
            s.cache.misses,
            s.cache.hit_rate() * 100.0,
            s.cache_loads,
            s.cache_quarantines,
            s.shard_recoveries,
            s.parse_cache_hits,
        )
    }
}

/// Signal plumbing: the handler only bumps an atomic; the main loop polls
/// it. Async-signal-safe by construction (no allocation, no locks).
mod signals {
    use super::{AtomicUsize, Ordering};

    pub static COUNT: AtomicUsize = AtomicUsize::new(0);

    pub fn count() -> usize {
        COUNT.load(Ordering::SeqCst)
    }

    pub fn reset() {
        COUNT.store(0, Ordering::SeqCst);
    }

    #[cfg(unix)]
    pub fn install() {
        extern "C" fn on_signal(_signum: i32) {
            COUNT.fetch_add(1, Ordering::SeqCst);
        }
        // `signal` comes from libc, which std already links on unix; no
        // external crate needed for two classic dispositions.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

struct Dirs {
    incoming: PathBuf,
    running: PathBuf,
    done: PathBuf,
    failed: PathBuf,
    control: PathBuf,
}

impl Dirs {
    fn ensure(root: &Path) -> io::Result<Dirs> {
        let jobs = root.join("jobs");
        let dirs = Dirs {
            incoming: jobs.join("incoming"),
            running: jobs.join("running"),
            done: jobs.join("done"),
            failed: jobs.join("failed"),
            control: jobs.join("control"),
        };
        for d in [&dirs.incoming, &dirs.running, &dirs.done, &dirs.failed, &dirs.control] {
            std::fs::create_dir_all(d)?;
        }
        Ok(dirs)
    }

    fn stop_file(&self) -> PathBuf {
        self.control.join("stop")
    }
}

#[derive(Clone, Copy)]
struct RetryEntry {
    attempts: u32,
    eligible_at: Instant,
}

/// Parsed-netlist cache: the text/binary → arena conversion is the fixed
/// per-attempt cost of a job, so retried attempts (and repeat submissions
/// of an unchanged payload under the same stem) would re-run it on bytes
/// the daemon has already parsed. The cache keys on `(format, stem,
/// payload)` and hands each attempt a flat-copy clone of the cached arena
/// — a memcpy of four columns — instead of a fresh parse. The stem stays
/// in the key because `.bench`/`.lut` payloads take the circuit name from
/// it, while Verilog/AIGER embed their own.
struct ParseCache {
    entries: Mutex<Vec<ParseEntry>>,
}

struct ParseEntry {
    key: u64,
    stem: String,
    payload_len: usize,
    circuit: Arc<Circuit>,
}

impl ParseCache {
    /// Retries dominate the hit population, so a handful of entries
    /// suffices; eviction is oldest-first.
    const CAPACITY: usize = 16;

    fn new() -> Self {
        ParseCache { entries: Mutex::new(Vec::new()) }
    }

    fn key(format: Format, stem: &str, payload: &[u8]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format.extension().hash(&mut h);
        stem.hash(&mut h);
        payload.hash(&mut h);
        h.finish()
    }

    /// Returns a private clone of the parsed circuit, parsing and caching
    /// on miss. The boolean is `true` on a cache hit.
    fn get_or_parse(
        &self,
        payload: &[u8],
        format: Format,
        stem: &str,
    ) -> Result<(Circuit, bool), sft_io::IoError> {
        let key = Self::key(format, stem, payload);
        {
            let entries = match self.entries.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some(entry) = entries
                .iter()
                .find(|e| e.key == key && e.stem == stem && e.payload_len == payload.len())
            {
                return Ok(((*entry.circuit).clone(), true));
            }
        }
        let circuit = sft_io::parse_bytes(payload, format, stem)?;
        let mut entries = match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if entries.len() >= Self::CAPACITY {
            entries.remove(0);
        }
        entries.push(ParseEntry {
            key,
            stem: stem.to_string(),
            payload_len: payload.len(),
            circuit: Arc::new(circuit.clone()),
        });
        Ok((circuit, false))
    }
}

/// How a job attempt failed, and what the daemon should do about it.
enum JobFailure {
    /// Try again after backoff (transient I/O, injected transient chaos).
    Retryable(String),
    /// Report and move to `failed/` (bad request, engine error, panic).
    Terminal(Outcome, String),
}

#[derive(Clone, Copy)]
struct Ctx<'a> {
    dirs: &'a Dirs,
    config: &'a ServeConfig,
    counters: &'a Counters,
    retry: &'a Mutex<HashMap<String, RetryEntry>>,
    cancel: &'a CancelFlag,
    parsed: &'a ParseCache,
}

fn lock_retry<'a>(
    retry: &'a Mutex<HashMap<String, RetryEntry>>,
) -> std::sync::MutexGuard<'a, HashMap<String, RetryEntry>> {
    // The map holds plain data; a panicking holder cannot leave it
    // inconsistent, so poisoning is ignorable.
    match retry.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sorted stems of `incoming/*.job` (the scanner's work list).
fn scan_incoming(dirs: &Dirs) -> io::Result<Vec<String>> {
    let mut stems = Vec::new();
    for entry in std::fs::read_dir(&dirs.incoming)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("job") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                stems.push(stem.to_string());
            }
        }
    }
    stems.sort();
    Ok(stems)
}

/// Payload extensions the daemon accepts, in claim-precedence order.
/// Mirrors [`Format::ALL`]; the first payload found wins when a stem has
/// several.
fn payload_extensions() -> impl Iterator<Item = &'static str> {
    Format::ALL.iter().map(|f| f.extension())
}

/// Claims `stem` by renaming its `.job` out of `incoming/`; any payload
/// file follows if present. Returns `false` when someone else won the
/// rename.
fn claim(dirs: &Dirs, stem: &str) -> bool {
    let job = format!("{stem}.job");
    if std::fs::rename(dirs.incoming.join(&job), dirs.running.join(&job)).is_err() {
        return false;
    }
    for ext in payload_extensions() {
        let payload = format!("{stem}.{ext}");
        let _ = std::fs::rename(dirs.incoming.join(&payload), dirs.running.join(&payload));
    }
    true
}

/// Renames the spec and every payload variant from `from` into `to`,
/// ignoring missing files.
fn move_job_files(from: &Path, to: &Path, stem: &str) {
    for ext in std::iter::once("job").chain(payload_extensions()) {
        let name = format!("{stem}.{ext}");
        let _ = std::fs::rename(from.join(&name), to.join(&name));
    }
}

/// Startup recovery: everything in `running/` belonged to a dead daemon.
fn adopt_orphans(dirs: &Dirs) -> io::Result<usize> {
    let mut adopted = 0;
    for entry in std::fs::read_dir(&dirs.running)? {
        let path = entry?.path();
        if let Some(name) = path.file_name() {
            if std::fs::rename(&path, dirs.incoming.join(name)).is_ok() {
                adopted += 1;
            }
        }
    }
    // Half-written reports from a crash mid-write are `.tmp` siblings that
    // never got renamed; they are garbage by construction.
    for dir in [&dirs.done, &dirs.failed] {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    Ok(adopted)
}

fn load_cache(path: &Path, counters: &Counters) {
    match identify_cache_load(path) {
        Ok(entries) => {
            counters.cache_loads.fetch_add(1, Ordering::Relaxed);
            counters.cache_loaded_entries.fetch_add(entries as u64, Ordering::Relaxed);
            println!("serve: warm cache loaded ({entries} entries)");
        }
        Err(PersistError::NotFound) => {
            println!("serve: no cache image, starting cold");
        }
        Err(e) if e.is_corruption() => {
            counters.cache_quarantines.fetch_add(1, Ordering::Relaxed);
            match persist::quarantine(path) {
                Ok(to) => eprintln!(
                    "serve: cache image corrupt ({e}); quarantined to {}, starting cold",
                    to.display()
                ),
                Err(qe) => eprintln!(
                    "serve: cache image corrupt ({e}); quarantine failed ({qe}), starting cold"
                ),
            }
        }
        Err(e) => eprintln!("serve: cache load failed ({e}); starting cold"),
    }
}

fn flush_cache(path: &Path) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = identify_cache_save(path) {
        eprintln!("serve: cache flush failed ({e})");
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt of one claimed job, classifying every failure.
fn run_attempt(
    ctx: Ctx<'_>,
    stem: &str,
    attempt: u32,
) -> Result<(ResynthReport, Format, Vec<u8>), JobFailure> {
    let job_path = ctx.dirs.running.join(format!("{stem}.job"));
    let spec_text = std::fs::read_to_string(&job_path)
        .map_err(|e| JobFailure::Retryable(format!("read {}: {e}", job_path.display())))?;
    let spec =
        parse_spec(&spec_text).map_err(|e| JobFailure::Terminal(Outcome::Failed, e.to_string()))?;
    let (format, payload_path) = Format::ALL
        .iter()
        .map(|&f| (f, ctx.dirs.running.join(format!("{stem}.{}", f.extension()))))
        .find(|(_, path)| path.exists())
        .ok_or_else(|| JobFailure::Retryable(format!("{stem}: no payload netlist found")))?;
    let payload = std::fs::read(&payload_path)
        .map_err(|e| JobFailure::Retryable(format!("read {}: {e}", payload_path.display())))?;
    let (mut circuit, parse_hit) = ctx
        .parsed
        .get_or_parse(&payload, format, stem)
        .map_err(|e| JobFailure::Terminal(Outcome::Failed, e.to_string()))?;
    if parse_hit {
        ctx.counters.parse_hits.fetch_add(1, Ordering::Relaxed);
    }

    match spec.chaos {
        Some(Chaos::Sleep(pause)) => std::thread::sleep(pause),
        Some(Chaos::FailAttempts(n)) if attempt <= n => {
            return Err(JobFailure::Retryable(format!(
                "chaos: injected transient failure (attempt {attempt} of {n})"
            )));
        }
        _ => {}
    }

    let mut budget = Budget::unlimited().with_cancel(ctx.cancel.clone());
    if let Some(limit) = spec.time_limit.or(ctx.config.default_time_limit) {
        budget = budget.with_time_limit(limit);
    }
    if let Some(limit) = spec.step_limit.or(ctx.config.default_step_limit) {
        budget = budget.with_step_limit(limit);
    }
    let options = spec.resynth_options();
    let chaos_panic = spec.chaos == Some(Chaos::Panic);

    // The isolation boundary: nothing a job does past this point can take
    // the daemon down. A panicking engine poisons at most some cache
    // shards, which rebuild themselves on next touch.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if chaos_panic {
            panic!("chaos: injected panic");
        }
        resynthesize_with_budget(&mut circuit, &options, &budget)
    }));
    match outcome {
        Err(payload) => Err(JobFailure::Terminal(Outcome::Panicked, panic_message(payload))),
        Ok(Err(e)) => Err(JobFailure::Terminal(Outcome::Failed, format!("resynthesis: {e}"))),
        Ok(Ok(report)) => {
            let bytes = sft_io::write_bytes(&circuit, format, &WriteOptions::default())
                .map_err(|e| JobFailure::Terminal(Outcome::Failed, e.to_string()))?;
            Ok((report, format, bytes))
        }
    }
}

fn base_report(stem: &str, outcome: Outcome, attempts: u32, elapsed_ms: u64) -> JobReport {
    let cache = identify_cache_stats();
    JobReport {
        job: stem.to_string(),
        outcome,
        attempts,
        elapsed_ms,
        engine: None,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        error: None,
    }
}

fn write_report(dir: &Path, stem: &str, report: &JobReport) {
    let path = dir.join(format!("{stem}.report.json"));
    if let Err(e) = write_new(&path, report.to_json_line().as_bytes()) {
        eprintln!("serve: writing {}: {e}", path.display());
    }
}

/// Drives one claimed job to a terminal state (or back to `incoming/` for
/// another attempt). Runs on a worker thread holding an admission permit.
fn process(ctx: Ctx<'_>, stem: &str, attempt: u32) {
    let t0 = Instant::now();
    let result = run_attempt(ctx, stem, attempt);
    let elapsed_ms = t0.elapsed().as_millis().min(u64::MAX as u128) as u64;
    match result {
        Ok((engine_report, format, result_bytes)) => {
            // Result first, then the report: the report is the commit
            // point consumers watch for, so its presence must imply the
            // result netlist is in place. The result keeps the payload's
            // format and extension.
            let result_path = ctx.dirs.done.join(format!("{stem}.{}", format.extension()));
            if let Err(e) = write_new(&result_path, &result_bytes) {
                eprintln!("serve: writing {}: {e}", result_path.display());
            }
            let mut report = base_report(stem, Outcome::Done, attempt, elapsed_ms);
            report.engine = Some(EngineOutcome {
                stop_reason: engine_report.stop_reason.to_string(),
                passes: engine_report.passes,
                replacements: engine_report.replacements,
                gates_before: engine_report.gates_before,
                gates_after: engine_report.gates_after,
                paths_before: engine_report.paths_before.to_string(),
                paths_after: engine_report.paths_after.to_string(),
            });
            write_report(&ctx.dirs.done, stem, &report);
            for ext in std::iter::once("job").chain(payload_extensions()) {
                let _ = std::fs::remove_file(ctx.dirs.running.join(format!("{stem}.{ext}")));
            }
            lock_retry(ctx.retry).remove(stem);
            ctx.counters.done.fetch_add(1, Ordering::Relaxed);
        }
        Err(JobFailure::Retryable(message)) if attempt < ctx.config.max_attempts => {
            let eligible_at = Instant::now() + ctx.config.retry_backoff * attempt;
            lock_retry(ctx.retry)
                .insert(stem.to_string(), RetryEntry { attempts: attempt, eligible_at });
            move_job_files(&ctx.dirs.running, &ctx.dirs.incoming, stem);
            ctx.counters.retried.fetch_add(1, Ordering::Relaxed);
            eprintln!("serve: {stem}: attempt {attempt} failed, will retry: {message}");
        }
        Err(failure) => {
            let (outcome, message) = match failure {
                JobFailure::Retryable(message) => {
                    (Outcome::Failed, format!("{message} (gave up after {attempt} attempts)"))
                }
                JobFailure::Terminal(outcome, message) => (outcome, message),
            };
            let mut report = base_report(stem, outcome, attempt, elapsed_ms);
            report.error = Some(message);
            write_report(&ctx.dirs.failed, stem, &report);
            move_job_files(&ctx.dirs.running, &ctx.dirs.failed, stem);
            lock_retry(ctx.retry).remove(stem);
            ctx.counters.failed.fetch_add(1, Ordering::Relaxed);
            if outcome == Outcome::Panicked {
                ctx.counters.panicked.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Sheds a job still in `incoming/`: explicit `overloaded` report, files
/// moved to `failed/`, nothing ran.
fn shed(ctx: Ctx<'_>, stem: &str) {
    let mut report = base_report(stem, Outcome::Overloaded, 0, 0);
    report.error = Some("shed by admission control; resubmit when the daemon is less busy".into());
    write_report(&ctx.dirs.failed, stem, &report);
    move_job_files(&ctx.dirs.incoming, &ctx.dirs.failed, stem);
    ctx.counters.shed.fetch_add(1, Ordering::Relaxed);
}

/// Runs the daemon until drained (`once`) or signalled. See the module
/// docs for the lifecycle; returns the final counter snapshot.
///
/// # Errors
///
/// Only infrastructure failures are errors: the job directories cannot be
/// created or listed. Job-level failures of every kind are reports, not
/// errors.
pub fn serve(config: &ServeConfig) -> io::Result<ServeSummary> {
    let dirs = Dirs::ensure(&config.root)?;
    let _ = std::fs::remove_file(dirs.stop_file());
    signals::reset();
    if config.handle_signals {
        signals::install();
    }
    let counters = Counters::default();
    if let Some(cache) = &config.cache {
        load_cache(cache, &counters);
    }
    let adopted = adopt_orphans(&dirs)?;
    if adopted > 0 {
        println!("serve: re-adopted {adopted} orphaned job file(s) from running/");
    }
    println!(
        "serve: watching {} (jobs={}, queue={}{})",
        dirs.incoming.display(),
        config.jobs.get(),
        config.queue,
        if config.once { ", once" } else { "" }
    );

    let admission = Admission::new(config.jobs.get());
    let cancel = CancelFlag::new();
    let retry: Mutex<HashMap<String, RetryEntry>> = Mutex::new(HashMap::new());
    let parsed = ParseCache::new();
    let ctx = Ctx {
        dirs: &dirs,
        config,
        counters: &counters,
        retry: &retry,
        cancel: &cancel,
        parsed: &parsed,
    };

    let loop_result: io::Result<()> = std::thread::scope(|scope| {
        let mut draining = false;
        let mut last_stats = Instant::now();
        loop {
            let mut stop_level = signals::count();
            if stop_level < 1 && dirs.stop_file().exists() {
                stop_level = 1;
            }
            if stop_level >= 2 {
                cancel.cancel();
            }
            if stop_level >= 1 && !draining {
                draining = true;
                println!("serve: stop requested, draining {} in-flight", admission.in_flight());
            }

            if !draining {
                let mut queued = 0usize;
                for stem in scan_incoming(&dirs)? {
                    let now = Instant::now();
                    let attempt = {
                        let retry_map = lock_retry(&retry);
                        match retry_map.get(&stem) {
                            Some(entry) if entry.eligible_at > now => {
                                // Backing off: occupies a queue slot but
                                // is not claimable yet.
                                queued += 1;
                                continue;
                            }
                            Some(entry) => entry.attempts + 1,
                            None => 1,
                        }
                    };
                    match admission.try_acquire() {
                        Some(permit) => {
                            if claim(&dirs, &stem) {
                                counters.accepted.fetch_add(1, Ordering::Relaxed);
                                scope.spawn(move || {
                                    let _permit = permit;
                                    process(ctx, &stem, attempt);
                                });
                            }
                        }
                        None => {
                            queued += 1;
                            if queued > config.queue {
                                shed(ctx, &stem);
                            }
                        }
                    }
                }
            }

            if last_stats.elapsed() >= config.stats_every {
                last_stats = Instant::now();
                println!("{}", counters.stats_line());
                if let Some(cache) = &config.cache {
                    flush_cache(cache);
                }
            }

            if draining {
                if admission.in_flight() == 0 {
                    break;
                }
            } else if config.once && admission.in_flight() == 0 && scan_incoming(&dirs)?.is_empty()
            {
                break;
            }
            std::thread::sleep(config.poll);
        }
        Ok(())
    });
    loop_result?;

    if let Some(cache) = &config.cache {
        flush_cache(cache);
    }
    println!("{}", counters.stats_line());
    Ok(counters.summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("sft-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn submit(root: &Path, stem: &str, bench: &str, job: &str) {
        let incoming = root.join("jobs").join("incoming");
        std::fs::create_dir_all(&incoming).unwrap();
        std::fs::write(incoming.join(format!("{stem}.bench")), bench).unwrap();
        std::fs::write(incoming.join(format!("{stem}.job")), job).unwrap();
    }

    const TINY: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = AND(a, b)\ny = OR(n1, a)\n";

    fn quick_config(root: &Path) -> ServeConfig {
        ServeConfig {
            once: true,
            cache: None,
            handle_signals: false,
            jobs: Jobs::new(2),
            retry_backoff: Duration::from_millis(1),
            poll: Duration::from_millis(1),
            ..ServeConfig::new(root)
        }
    }

    #[test]
    fn once_drains_good_and_bad_jobs() {
        let root = temp_root("drain");
        submit(&root, "good", TINY, "objective = gates\n");
        submit(&root, "bad", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "");
        let summary = serve(&quick_config(&root)).unwrap();
        assert_eq!((summary.done, summary.failed, summary.shed), (1, 1, 0));
        let done = root.join("jobs").join("done");
        let failed = root.join("jobs").join("failed");
        assert!(done.join("good.bench").exists());
        let good = std::fs::read_to_string(done.join("good.report.json")).unwrap();
        assert!(good.contains("\"outcome\":\"done\""), "{good}");
        let bad = std::fs::read_to_string(failed.join("bad.report.json")).unwrap();
        assert!(bad.contains("\"outcome\":\"failed\""), "{bad}");
        assert!(bad.contains("FROB"), "{bad}");
        // Nothing left behind in the transient directories.
        assert!(scan_incoming(&Dirs::ensure(&root).unwrap()).unwrap().is_empty());
        assert_eq!(std::fs::read_dir(root.join("jobs").join("running")).unwrap().count(), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn multi_format_payloads_round_trip() {
        let root = temp_root("formats");
        let incoming = root.join("jobs").join("incoming");
        std::fs::create_dir_all(&incoming).unwrap();
        let c = sft_netlist::bench_format::parse(TINY, "tiny").unwrap();
        let formats = [Format::Verilog, Format::AigerAscii, Format::AigerBinary];
        for f in formats {
            let stem = format!("job_{}", f.extension());
            let bytes = sft_io::write_bytes(&c, f, &WriteOptions::default()).unwrap();
            std::fs::write(incoming.join(format!("{stem}.{}", f.extension())), bytes).unwrap();
            std::fs::write(incoming.join(format!("{stem}.job")), "objective = gates\n").unwrap();
        }
        let summary = serve(&quick_config(&root)).unwrap();
        assert_eq!((summary.done, summary.failed), (3, 0));
        let done = root.join("jobs").join("done");
        for f in formats {
            let ext = f.extension();
            let path = done.join(format!("job_{ext}.{ext}"));
            assert!(path.exists(), "result should keep the payload format: {ext}");
            let bytes = std::fs::read(&path).unwrap();
            sft_io::parse_bytes(&bytes, f, "result").unwrap();
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn panicking_job_is_isolated() {
        let root = temp_root("panic");
        submit(&root, "boom", TINY, "chaos = panic\n");
        submit(&root, "calm", TINY, "");
        let summary = serve(&quick_config(&root)).unwrap();
        assert_eq!((summary.done, summary.failed, summary.panicked), (1, 1, 1));
        let report =
            std::fs::read_to_string(root.join("jobs").join("failed").join("boom.report.json"))
                .unwrap();
        assert!(report.contains("\"outcome\":\"panicked\""), "{report}");
        assert!(report.contains("injected panic"), "{report}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn transient_failures_retry_then_succeed() {
        let root = temp_root("retry");
        submit(&root, "flaky", TINY, "chaos = fail:2\n");
        let summary = serve(&quick_config(&root)).unwrap();
        assert_eq!(summary.done, 1);
        assert_eq!(summary.retried, 2);
        // Attempts 2 and 3 re-enter with the same payload bytes: the parse
        // is served from the cache, not re-run.
        assert_eq!(summary.parse_cache_hits, 2);
        let report =
            std::fs::read_to_string(root.join("jobs").join("done").join("flaky.report.json"))
                .unwrap();
        assert!(report.contains("\"attempts\":3"), "{report}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn parse_cache_serves_clones_not_shared_state() {
        // Two hits on the same entry must hand out independent circuits:
        // the engine mutates its copy in place, so a shared arena would
        // corrupt the cached original.
        let cache = ParseCache::new();
        let (mut first, hit1) = cache.get_or_parse(TINY.as_bytes(), Format::Bench, "t").unwrap();
        assert!(!hit1);
        let before = first.len();
        let a = first.inputs()[0];
        first.add_output(a, "extra");
        let (second, hit2) = cache.get_or_parse(TINY.as_bytes(), Format::Bench, "t").unwrap();
        assert!(hit2);
        assert_eq!(second.len(), before);
        assert_eq!(second.outputs().len() + 1, first.outputs().len());
        // A different stem is a different circuit name for .bench payloads,
        // so it must miss.
        let (_, hit3) = cache.get_or_parse(TINY.as_bytes(), Format::Bench, "other").unwrap();
        assert!(!hit3);
    }

    #[test]
    fn transient_failures_exhaust_into_terminal_failure() {
        let root = temp_root("exhaust");
        submit(&root, "doomed", TINY, "chaos = fail:99\n");
        let summary = serve(&quick_config(&root)).unwrap();
        assert_eq!((summary.done, summary.failed), (0, 1));
        let report =
            std::fs::read_to_string(root.join("jobs").join("failed").join("doomed.report.json"))
                .unwrap();
        assert!(report.contains("gave up after 3 attempts"), "{report}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn overload_sheds_with_explicit_outcome() {
        let root = temp_root("overload");
        for i in 0..6 {
            submit(&root, &format!("job{i}"), TINY, "chaos = sleep:150\n");
        }
        let config = ServeConfig { jobs: Jobs::new(1), queue: 1, ..quick_config(&root) };
        let summary = serve(&config).unwrap();
        assert_eq!(summary.done + summary.shed, 6);
        assert!(summary.shed >= 1, "expected shedding, got {summary:?}");
        let failed = root.join("jobs").join("failed");
        let shed_reports = std::fs::read_dir(&failed)
            .unwrap()
            .filter_map(|e| std::fs::read_to_string(e.unwrap().path()).ok())
            .filter(|s| s.contains("\"outcome\":\"overloaded\""))
            .count();
        assert_eq!(shed_reports as u64, summary.shed);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn orphans_are_adopted_and_rerun_idempotently() {
        let root = temp_root("orphan");
        // Simulate a SIGKILLed daemon: job files stranded in running/.
        let running = root.join("jobs").join("running");
        std::fs::create_dir_all(&running).unwrap();
        std::fs::write(running.join("lost.bench"), TINY).unwrap();
        std::fs::write(running.join("lost.job"), "").unwrap();
        // And a half-written report from the crash.
        let done = root.join("jobs").join("done");
        std::fs::create_dir_all(&done).unwrap();
        std::fs::write(done.join("lost.report.json.tmp"), "garbage").unwrap();
        let summary = serve(&quick_config(&root)).unwrap();
        assert_eq!(summary.done, 1);
        assert!(done.join("lost.bench").exists());
        assert!(done.join("lost.report.json").exists());
        assert!(!done.join("lost.report.json.tmp").exists());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn done_results_are_never_rewritten() {
        let root = temp_root("immutable");
        let done = root.join("jobs").join("done");
        std::fs::create_dir_all(&done).unwrap();
        std::fs::write(done.join("fixed.report.json"), "{\"sentinel\":true}\n").unwrap();
        std::fs::write(done.join("fixed.bench"), "# sentinel\n").unwrap();
        submit(&root, "fixed", TINY, "");
        let summary = serve(&quick_config(&root)).unwrap();
        assert_eq!(summary.done, 1);
        assert_eq!(
            std::fs::read_to_string(done.join("fixed.report.json")).unwrap(),
            "{\"sentinel\":true}\n"
        );
        assert_eq!(std::fs::read_to_string(done.join("fixed.bench")).unwrap(), "# sentinel\n");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stop_file_drains_a_serving_daemon() {
        let root = temp_root("stopfile");
        let config = ServeConfig { once: false, ..quick_config(&root) };
        submit(&root, "one", TINY, "");
        let handle = {
            let config = config.clone();
            std::thread::spawn(move || serve(&config).unwrap())
        };
        // Give it time to start and process, then ask it to stop.
        std::thread::sleep(Duration::from_millis(300));
        std::fs::write(root.join("jobs").join("control").join("stop"), "").unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.done, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
