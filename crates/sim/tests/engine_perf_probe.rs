//! Manual timing probe for the engine comparison (not part of CI):
//!
//! ```text
//! cargo test -p sft-sim --release --test engine_perf_probe -- --ignored --nocapture
//! ```
//!
//! Prints the single-thread campaign wall time of both engines on the
//! stitched scale circuits and asserts the results are bit-identical. The
//! gated version of this measurement lives in `benches/perf.rs`
//! (`speedup_ctrace_vs_wide_1t`).

use sft_circuits::random::RandomCircuitConfig;
use sft_sim::{campaign, fault_list, CampaignConfig, SimEngine};
use std::time::Instant;

fn compare(copies: usize) {
    let core = RandomCircuitConfig { inputs: 32, outputs: 16, gates: 260, window: 56, seed: 0xB1 };
    let c = sft_circuits::gen::stitched(copies, &core);
    let faults = fault_list(&c);
    eprintln!("stitch{copies}: gates={} faults={}", c.two_input_gate_count(), faults.len());
    let mut reference = None;
    for engine in [SimEngine::Wide, SimEngine::Ctrace] {
        let cfg = CampaignConfig {
            max_patterns: 1024,
            plateau: 0,
            seed: 0x5ca1e,
            engine,
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let r = campaign(&c, &faults, &cfg);
        eprintln!("  {engine}: {:.3}s coverage={:.4}", start.elapsed().as_secs_f64(), r.coverage());
        match &reference {
            None => reference = Some(r),
            Some(reference) => assert_eq!(reference, &r),
        }
    }
}

#[test]
#[ignore = "manual timing probe"]
fn stitched120_engine_comparison() {
    compare(120);
}

#[test]
#[ignore = "manual timing probe"]
fn stitched420_engine_comparison() {
    compare(420);
}
