//! Random-pattern testability campaigns (the Table 6 experiment).
//!
//! Campaigns are **thread-parallel and bit-deterministic**: the pattern
//! words of block `b` are a pure function of `(seed, b)` (counter-based
//! stream derivation, [`pattern_block`]), and each wide stride sweeps its
//! blocks once for every live fault with the fault list sliced
//! *contiguously* across up to [`CampaignConfig::jobs`] workers. The
//! per-slice detection masks concatenate back in fault order, so the
//! stride's masks are exactly the single-simulator masks and the merged
//! result is structurally bit-identical at any thread count. Fault
//! dropping happens globally after every stride — no worker re-simulates a
//! fault another slice already killed, which is what lets the parallel
//! run do the *same total work* as the serial one. `jobs: Jobs::serial()`
//! runs everything inline with zero spawned threads, and a stride whose
//! estimated work is below [`CampaignConfig::parallel_grain`] runs inline
//! too instead of paying thread-spawn latency.
//!
//! Campaigns are also **width-deterministic**: with a wide simulation word
//! ([`CampaignConfig::width`]) the engine sweeps [`SimWord::LANES`]
//! consecutive 64-pattern blocks per pass, but lane `l` of a wide sweep
//! carries exactly block `base + l` of the same seeded stream, and merging
//! still happens per 64-pattern block in strict order — so detection
//! indices, effective-pattern statistics and plateau stops are bit-identical
//! at every width, which the tests pin.

use crate::ctrace::SimEngine;
use crate::fsim::{FaultSimTables, WideFaultSim};
use crate::word::{SimWord, W256, W512};
use crate::Fault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_netlist::Circuit;
use sft_par::{derive_seed, parallel_map, Jobs};
use std::sync::{Arc, Mutex};

/// Simulation word width used by [`campaign`] sweeps.
///
/// Results are bit-identical at every width; wider words simulate more
/// pattern blocks per topological sweep (auto-vectorizable `[u64; N]`
/// lanes), which is what makes 100K-gate campaigns tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimWidth {
    /// One 64-pattern block per sweep (the historical engine).
    W64,
    /// Four blocks — 256 patterns — per sweep.
    #[default]
    W256,
    /// Eight blocks — 512 patterns — per sweep.
    W512,
}

/// Configuration of a random-pattern campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Maximum number of random patterns to apply.
    pub max_patterns: u64,
    /// Stop early when no new fault has been detected for this many
    /// consecutive patterns (0 disables the plateau rule).
    pub plateau: u64,
    /// RNG seed; equal seeds give identical pattern sequences, which is how
    /// the before/after comparisons of Tables 6 and 7 are made fair.
    pub seed: u64,
    /// Worker threads simulating pattern blocks concurrently. Results are
    /// bit-identical at any value; [`Jobs::serial`] (the default) spawns no
    /// threads at all.
    pub jobs: Jobs,
    /// Estimated node evaluations (`alive faults × circuit nodes × blocks`)
    /// below which a stride runs inline on the calling thread instead of
    /// slicing its fault list across workers. Near saturation a stride
    /// costs microseconds and a thread spawn would dominate, so the grain
    /// keeps the tail of a campaign serial. Results are bit-identical at
    /// any value; `0` forces slicing whenever `jobs` allows it.
    pub parallel_grain: u64,
    /// Simulation word width. Results are bit-identical at any value.
    pub width: SimWidth,
    /// Detection engine. Results are bit-identical at any value; `Ctrace`
    /// (the default) derives FFR-internal detections from one backward
    /// sensitization sweep per stem and gates stem observability at
    /// immediate dominators, `Wide` keeps the explicit per-fault
    /// propagation of PR 6 as an escape hatch.
    pub engine: SimEngine,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_patterns: 1 << 16,
            plateau: 0,
            seed: 0x5f7,
            jobs: Jobs::serial(),
            parallel_grain: 2_000_000,
            width: SimWidth::default(),
            engine: SimEngine::default(),
        }
    }
}

/// Result of a random-pattern campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// Number of faults simulated.
    pub total_faults: usize,
    /// Number of faults detected.
    pub detected: usize,
    /// Pattern index (0-based) at which each fault was first detected.
    pub detection_pattern: Vec<Option<u64>>,
    /// The last pattern that detected a previously-undetected fault
    /// (the paper's "eff.patt" column), if any fault was detected.
    pub last_effective_pattern: Option<u64>,
    /// Number of patterns actually applied.
    pub patterns_applied: u64,
}

impl CampaignResult {
    /// Number of faults left undetected (the paper's "remain" column).
    pub fn remaining(&self) -> usize {
        self.total_faults - self.detected
    }

    /// Fault coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }

    /// The cumulative detection curve: `(pattern index, faults detected so
    /// far)` at every pattern that detected something new, in pattern
    /// order. Useful for plotting random-pattern testability profiles.
    pub fn coverage_curve(&self) -> Vec<(u64, usize)> {
        let mut events: Vec<u64> = self.detection_pattern.iter().flatten().copied().collect();
        events.sort_unstable();
        let mut curve = Vec::new();
        let mut cumulative = 0usize;
        let mut i = 0;
        while i < events.len() {
            let p = events[i];
            while i < events.len() && events[i] == p {
                cumulative += 1;
                i += 1;
            }
            curve.push((p, cumulative));
        }
        curve
    }
}

/// The 64 input patterns of pattern block `block`, as one word per primary
/// input, derived purely from `(seed, block)`.
///
/// Every engine that applies seeded random pattern blocks (the stuck-at
/// campaign here, the random phase of test-set generation) derives block
/// words through this function, so any worker — on any thread, at any word
/// width, in any order — regenerates exactly the block the single-threaded
/// 64-bit loop would have drawn.
pub fn pattern_block(seed: u64, block: u64, num_inputs: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, block));
    (0..num_inputs).map(|_| rng.gen()).collect()
}

/// Simulates up to `W::LANES` consecutive blocks in one wide sweep and
/// returns one wide detection mask per fault; lane `l` of a mask is the
/// 64-pattern mask of block `block_ids[l]`. Unused lanes are zero-filled
/// and never read back, so a partial stride is still exact. The masks stay
/// in wide form — the merge loop extracts lanes on the fly instead of
/// materializing a per-block `Vec<u64>` split (which would cost an extra
/// multi-megabyte allocation and a full pass per stride on scale fault
/// lists, paid identically by every engine).
fn detect_stride<W: SimWord>(
    fsim: &mut WideFaultSim<W>,
    faults: &[Fault],
    seed: u64,
    block_ids: &[u64],
    num_inputs: usize,
) -> Vec<W> {
    debug_assert!(!block_ids.is_empty() && block_ids.len() <= W::LANES);
    let lanes: Vec<Vec<u64>> =
        block_ids.iter().map(|&b| pattern_block(seed, b, num_inputs)).collect();
    let inputs: Vec<W> =
        (0..num_inputs).map(|i| W::from_lanes(|l| lanes.get(l).map_or(0, |v| v[i]))).collect();
    fsim.detect_masks(faults, &inputs)
}

/// Runs a random-pattern stuck-at campaign over `faults` on `circuit`.
///
/// Patterns are drawn from seeded per-block RNG streams in blocks of 64;
/// per-fault first detection indices are exact (bit-accurate within each
/// block). Detected faults are dropped from subsequent strides, so the cost
/// per block shrinks as coverage saturates. [`CampaignConfig::width`]
/// selects how many blocks one topological sweep carries.
///
/// With `config.jobs > 1`, every stride's live-fault list is sliced
/// contiguously across up to `jobs` workers (each worker slot keeps a
/// persistent [`WideFaultSim`] sharing precomputed [`FaultSimTables`]), and
/// the per-slice masks concatenate back in fault order — exactly the
/// single-simulator masks. The result — including every detection index,
/// the effective-pattern statistic and the plateau-rule stopping point —
/// is therefore **bit-identical** to the serial 64-bit run, and the
/// parallel run does the same total fault work as the serial one (faults
/// drop globally after every stride). Strides whose estimated work falls
/// under [`CampaignConfig::parallel_grain`] run inline.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn campaign(circuit: &Circuit, faults: &[Fault], config: &CampaignConfig) -> CampaignResult {
    match config.width {
        SimWidth::W64 => campaign_wide::<u64>(circuit, faults, config),
        SimWidth::W256 => campaign_wide::<W256>(circuit, faults, config),
        SimWidth::W512 => campaign_wide::<W512>(circuit, faults, config),
    }
}

fn campaign_wide<W: SimWord>(
    circuit: &Circuit,
    faults: &[Fault],
    config: &CampaignConfig,
) -> CampaignResult {
    let num_inputs = circuit.inputs().len();
    let tables = FaultSimTables::snapshot(circuit);
    // One simulator for inline strides plus one per worker slot for sliced
    // strides, all created lazily and kept alive for the whole campaign —
    // the O(nodes) scratch buffers are the expensive part of simulator
    // setup. Each parallel work item locks the simulator of its own slice
    // index, so the locks are never contended.
    let mut inline_fsim: Option<WideFaultSim<W>> = None;
    let mut worker_fsims: Vec<Mutex<WideFaultSim<W>>> = Vec::new();
    let lanes = W::LANES as u64;

    let mut detection: Vec<Option<u64>> = vec![None; faults.len()];
    // Global indices of still-undetected faults; compacted as faults fall.
    let mut alive: Vec<u32> = (0..faults.len() as u32).collect();
    let mut alive_faults: Vec<Fault> = faults.to_vec();
    let mut last_effective: Option<u64> = None;
    let mut applied: u64 = 0;
    let mut block_index: u64 = 0;
    let mut stopped = false;

    while !stopped && applied < config.max_patterns && !alive.is_empty() {
        // One wide stride per iteration: up to `LANES` consecutive blocks
        // swept together over the current alive set. (offset, size)
        // describe each block's pattern range. All pattern-count arithmetic
        // saturates so extreme `max_patterns` values degrade to "stop at
        // u64::MAX" instead of wrapping.
        let blocks_left = config.max_patterns.saturating_sub(applied).div_ceil(64);
        let chunk = lanes.min(blocks_left);
        let blocks: Vec<(u64, u64, u64)> = (0..chunk)
            .map(|i| {
                let offset = applied.saturating_add(i.saturating_mul(64));
                (block_index + i, offset, config.max_patterns.saturating_sub(offset).min(64))
            })
            .collect();
        let ids: Vec<u64> = blocks.iter().map(|&(b, _, _)| b).collect();
        // Fault-parallel slicing: every worker sweeps the same stride over
        // its own contiguous slice of the fault list, so the concatenated
        // masks are exactly the single-simulator masks and the schedule can
        // never change the result. Contiguous slices also keep the faults
        // of one fanout-free region in one worker, preserving the shared
        // observability cache. Strides estimated below the grain run
        // inline — near saturation a stride costs microseconds and a
        // thread spawn would dominate.
        let stride_cost =
            (alive.len() as u64).saturating_mul(circuit.len() as u64).saturating_mul(chunk.max(1));
        let workers = config.jobs.get().min(alive_faults.len());
        let masks: Vec<W> =
            if config.jobs.is_serial() || workers <= 1 || stride_cost <= config.parallel_grain {
                let fsim = inline_fsim.get_or_insert_with(|| {
                    WideFaultSim::with_tables(Arc::clone(&tables)).with_engine(config.engine)
                });
                detect_stride(fsim, &alive_faults, config.seed, &ids, num_inputs)
            } else {
                while worker_fsims.len() < workers {
                    worker_fsims.push(Mutex::new(
                        WideFaultSim::with_tables(Arc::clone(&tables)).with_engine(config.engine),
                    ));
                }
                let per = alive_faults.len().div_ceil(workers);
                let slices: Vec<&[Fault]> = alive_faults.chunks(per).collect();
                let per_slice: Vec<Vec<W>> = parallel_map(config.jobs, &slices, |si, slice| {
                    let mut fsim = worker_fsims[si].lock().expect("worker simulators never panic");
                    detect_stride(&mut fsim, slice, config.seed, &ids, num_inputs)
                });
                // Contiguous slices concatenate back in fault order.
                per_slice.into_iter().flatten().collect()
            };
        // Merge strictly in block (lane) order. Faults detected by an
        // earlier block of this stride are skipped in later blocks (their
        // slot in `detection` is already set), reproducing the serial drop
        // order.
        for (l, &(_, offset, size)) in blocks.iter().enumerate() {
            for (slot, wide) in masks.iter().enumerate() {
                let fault_idx = alive[slot] as usize;
                if detection[fault_idx].is_some() {
                    continue;
                }
                let mask = wide.lane(l);
                let mask = if size < 64 { mask & ((1u64 << size) - 1) } else { mask };
                if mask != 0 {
                    let pattern = offset.saturating_add(u64::from(mask.trailing_zeros()));
                    detection[fault_idx] = Some(pattern);
                    last_effective = Some(last_effective.map_or(pattern, |l| l.max(pattern)));
                }
            }
            applied = offset.saturating_add(size);
            block_index += 1;
            let all_dead = detection.iter().all(Option::is_some);
            let plateaued = config.plateau > 0
                && match last_effective {
                    Some(last) => applied.saturating_sub(last) > config.plateau,
                    None => applied > config.plateau,
                };
            if all_dead || plateaued {
                // Later lanes of this stride are discarded, exactly as a
                // 64-bit loop would never have simulated them.
                stopped = true;
                break;
            }
        }
        // Compact the alive lists in place — no per-stride reallocation.
        let mut kept = 0;
        for slot in 0..alive.len() {
            let fault_idx = alive[slot];
            if detection[fault_idx as usize].is_none() {
                alive[kept] = fault_idx;
                alive_faults[kept] = alive_faults[slot];
                kept += 1;
            }
        }
        alive.truncate(kept);
        alive_faults.truncate(kept);
    }

    let detected = detection.iter().filter(|d| d.is_some()).count();
    CampaignResult {
        total_faults: faults.len(),
        detected,
        detection_pattern: detection,
        last_effective_pattern: last_effective,
        patterns_applied: applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_list;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    fn cfg(max_patterns: u64, plateau: u64, seed: u64) -> CampaignConfig {
        CampaignConfig { max_patterns, plateau, seed, ..CampaignConfig::default() }
    }

    #[test]
    fn c17_reaches_full_coverage() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(4096, 0, 1));
        assert_eq!(r.remaining(), 0, "c17 is fully random-pattern testable");
        assert!(r.coverage() > 0.999);
        assert!(r.last_effective_pattern.is_some());
    }

    #[test]
    fn same_seed_same_result() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let a = campaign(&c, &faults, &cfg(512, 0, 42));
        let b = campaign(&c, &faults, &cfg(512, 0, 42));
        assert_eq!(a, b);
    }

    /// The determinism regression the `--jobs` contract promises: any
    /// thread count produces the bit-identical campaign result — same
    /// detection indices, same effective-pattern statistic, same
    /// plateau-rule stopping point.
    #[test]
    fn thread_count_does_not_change_results() {
        // A circuit large enough that blocks matter, with redundant faults
        // so the alive list never empties, plus plateau configurations so
        // the early-stop arithmetic is exercised.
        let c = sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
            inputs: 10,
            outputs: 5,
            gates: 60,
            window: 16,
            seed: 7,
        });
        let faults = fault_list(&c);
        for (max_patterns, plateau) in [(2048, 0), (1 << 14, 256), (100, 0)] {
            let serial = campaign(&c, &faults, &cfg(max_patterns, plateau, 9));
            for jobs in [2, 3, 4, 8] {
                // grain 0 forces one-stride work items (maximal interleaving
                // of the merge), the default exercises grouped items, and
                // the huge grain forces the inline remainder path.
                for grain in [0, CampaignConfig::default().parallel_grain, u64::MAX] {
                    let par = campaign(
                        &c,
                        &faults,
                        &CampaignConfig {
                            max_patterns,
                            plateau,
                            seed: 9,
                            jobs: Jobs::new(jobs),
                            parallel_grain: grain,
                            ..CampaignConfig::default()
                        },
                    );
                    assert_eq!(
                        serial, par,
                        "jobs={jobs} grain={grain} max={max_patterns} plateau={plateau}"
                    );
                }
            }
        }
    }

    /// The width contract: 64-, 256- and 512-bit sweeps produce the
    /// bit-identical campaign result, serial and parallel alike.
    #[test]
    fn word_width_does_not_change_results() {
        let c = sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
            inputs: 12,
            outputs: 6,
            gates: 90,
            window: 16,
            seed: 21,
        });
        let faults = fault_list(&c);
        for (max_patterns, plateau) in [(1000, 0), (1 << 14, 300)] {
            let reference = campaign(
                &c,
                &faults,
                &CampaignConfig {
                    max_patterns,
                    plateau,
                    seed: 13,
                    width: SimWidth::W64,
                    ..CampaignConfig::default()
                },
            );
            for width in [SimWidth::W64, SimWidth::W256, SimWidth::W512] {
                for jobs in [Jobs::serial(), Jobs::new(4)] {
                    let r = campaign(
                        &c,
                        &faults,
                        &CampaignConfig {
                            max_patterns,
                            plateau,
                            seed: 13,
                            jobs,
                            width,
                            ..CampaignConfig::default()
                        },
                    );
                    assert_eq!(reference, r, "width={width:?} jobs={jobs:?} max={max_patterns}");
                }
            }
        }
    }

    #[test]
    fn redundant_faults_remain() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(1024, 0, 3));
        assert!(r.remaining() >= 1, "absorption makes at least one fault redundant");
    }

    #[test]
    fn plateau_stops_early() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(1 << 20, 256, 5));
        assert!(r.patterns_applied < 1 << 20);
        assert_eq!(r.remaining(), 0);
    }

    /// `max_patterns` near `u64::MAX` must not wrap any offset or
    /// pattern-count statistic — the campaign saturates and stops on the
    /// plateau rule instead (the at-scale overflow audit).
    #[test]
    fn extreme_max_patterns_saturates_instead_of_wrapping() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        let faults = fault_list(&c);
        for max_patterns in [u64::MAX, u64::MAX - 37] {
            let serial = campaign(
                &c,
                &faults,
                &CampaignConfig { max_patterns, plateau: 192, seed: 3, ..Default::default() },
            );
            assert!(serial.patterns_applied < 1 << 20, "plateau must stop the run");
            let par = campaign(
                &c,
                &faults,
                &CampaignConfig {
                    max_patterns,
                    plateau: 192,
                    seed: 3,
                    jobs: Jobs::new(4),
                    parallel_grain: 0,
                    ..Default::default()
                },
            );
            assert_eq!(serial, par, "max_patterns={max_patterns}");
        }
    }

    #[test]
    fn coverage_curve_is_monotone_and_complete() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(4096, 0, 2));
        let curve = r.coverage_curve();
        assert!(!curve.is_empty());
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(curve.last().unwrap().1, r.detected);
        assert_eq!(curve.last().unwrap().0, r.last_effective_pattern.unwrap());
    }

    #[test]
    fn detection_pattern_consistency() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(4096, 0, 9));
        let max_det = r.detection_pattern.iter().flatten().max().copied();
        assert_eq!(max_det, r.last_effective_pattern);
        assert_eq!(r.detected, r.detection_pattern.iter().filter(|d| d.is_some()).count());
    }

    #[test]
    fn pattern_block_is_a_pure_function() {
        assert_eq!(pattern_block(5, 3, 4), pattern_block(5, 3, 4));
        assert_ne!(pattern_block(5, 3, 4), pattern_block(5, 4, 4));
        assert_ne!(pattern_block(5, 3, 4), pattern_block(6, 3, 4));
        assert_eq!(pattern_block(5, 3, 4).len(), 4);
    }

    /// A tail block shorter than 64 patterns must mask detections past the
    /// configured maximum identically at any thread count and word width.
    #[test]
    fn tail_block_masked_consistently() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        for max in [1, 63, 65, 130] {
            let serial = campaign(&c, &faults, &cfg(max, 0, 11));
            for width in [SimWidth::W64, SimWidth::W256, SimWidth::W512] {
                // grain 0 keeps every stride its own work item so the tail
                // block really crosses the parallel merge.
                let par = campaign(
                    &c,
                    &faults,
                    &CampaignConfig {
                        max_patterns: max,
                        plateau: 0,
                        seed: 11,
                        jobs: Jobs::new(4),
                        parallel_grain: 0,
                        width,
                        ..CampaignConfig::default()
                    },
                );
                assert_eq!(serial, par, "max_patterns={max} width={width:?}");
            }
            assert!(serial.patterns_applied <= max);
            assert!(serial.detection_pattern.iter().flatten().all(|&p| p < max));
        }
    }
}
