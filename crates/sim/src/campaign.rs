//! Random-pattern testability campaigns (the Table 6 experiment).
//!
//! Campaigns are **thread-parallel and bit-deterministic**: the pattern
//! words of block `b` are a pure function of `(seed, b)` (counter-based
//! stream derivation, [`pattern_block`]), consecutive blocks are grouped
//! into work items of roughly [`CampaignConfig::parallel_grain`] node
//! evaluations each (one simulator per item, so thread spawns and
//! simulator setup amortize over many blocks), up to
//! [`CampaignConfig::jobs`] items run concurrently, and worker results are
//! merged strictly in block order. The merged result is therefore
//! bit-identical at any thread count and any grain —
//! `jobs: Jobs::serial()` additionally runs everything inline with zero
//! spawned threads, and a remainder too small to fill one work item runs
//! inline too instead of paying thread-spawn latency.

use crate::fsim::FaultSimTables;
use crate::{Fault, FaultSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_netlist::Circuit;
use sft_par::{derive_seed, parallel_map, Jobs};
use std::sync::Arc;

/// Configuration of a random-pattern campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Maximum number of random patterns to apply.
    pub max_patterns: u64,
    /// Stop early when no new fault has been detected for this many
    /// consecutive patterns (0 disables the plateau rule).
    pub plateau: u64,
    /// RNG seed; equal seeds give identical pattern sequences, which is how
    /// the before/after comparisons of Tables 6 and 7 are made fair.
    pub seed: u64,
    /// Worker threads simulating pattern blocks concurrently. Results are
    /// bit-identical at any value; [`Jobs::serial`] (the default) spawns no
    /// threads at all.
    pub jobs: Jobs,
    /// Approximate node evaluations per parallel work item. Consecutive
    /// pattern blocks are grouped until a group reaches this much estimated
    /// work (`alive faults × circuit nodes` per block), so thread spawns
    /// and per-worker simulator setup amortize over whole groups and
    /// near-saturated campaigns (few faults alive, microseconds per block)
    /// stop paying parallel overhead per block. A remainder smaller than
    /// one work item runs inline on the calling thread. Results are
    /// bit-identical at any value; `0` restores one block per work item.
    pub parallel_grain: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_patterns: 1 << 16,
            plateau: 0,
            seed: 0x5f7,
            jobs: Jobs::serial(),
            parallel_grain: 2_000_000,
        }
    }
}

/// Result of a random-pattern campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// Number of faults simulated.
    pub total_faults: usize,
    /// Number of faults detected.
    pub detected: usize,
    /// Pattern index (0-based) at which each fault was first detected.
    pub detection_pattern: Vec<Option<u64>>,
    /// The last pattern that detected a previously-undetected fault
    /// (the paper's "eff.patt" column), if any fault was detected.
    pub last_effective_pattern: Option<u64>,
    /// Number of patterns actually applied.
    pub patterns_applied: u64,
}

impl CampaignResult {
    /// Number of faults left undetected (the paper's "remain" column).
    pub fn remaining(&self) -> usize {
        self.total_faults - self.detected
    }

    /// Fault coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }

    /// The cumulative detection curve: `(pattern index, faults detected so
    /// far)` at every pattern that detected something new, in pattern
    /// order. Useful for plotting random-pattern testability profiles.
    pub fn coverage_curve(&self) -> Vec<(u64, usize)> {
        let mut events: Vec<u64> = self.detection_pattern.iter().flatten().copied().collect();
        events.sort_unstable();
        let mut curve = Vec::new();
        let mut cumulative = 0usize;
        let mut i = 0;
        while i < events.len() {
            let p = events[i];
            while i < events.len() && events[i] == p {
                cumulative += 1;
                i += 1;
            }
            curve.push((p, cumulative));
        }
        curve
    }
}

/// The 64 input patterns of pattern block `block`, as one word per primary
/// input, derived purely from `(seed, block)`.
///
/// Every engine that applies seeded random pattern blocks (the stuck-at
/// campaign here, the random phase of test-set generation) derives block
/// words through this function, so any worker — on any thread, in any
/// order — regenerates exactly the block the single-threaded loop would
/// have drawn.
pub fn pattern_block(seed: u64, block: u64, num_inputs: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, block));
    (0..num_inputs).map(|_| rng.gen()).collect()
}

/// Runs a random-pattern stuck-at campaign over `faults` on `circuit`.
///
/// Patterns are drawn from seeded per-block RNG streams in blocks of 64;
/// per-fault first detection indices are exact (bit-accurate within each
/// block). Detected faults are dropped from subsequent blocks, so the cost
/// per block shrinks as coverage saturates.
///
/// With `config.jobs > 1`, consecutive blocks are grouped into work items
/// of roughly [`CampaignConfig::parallel_grain`] node evaluations and up
/// to `jobs` items are simulated concurrently (each worker owns a
/// [`FaultSim`] for its whole group, sharing precomputed
/// [`FaultSimTables`]) and merged in block order; the result — including
/// every detection index, the effective-pattern statistic and the
/// plateau-rule stopping point — is **bit-identical** to the serial run.
/// The only cost of parallelism is that blocks simulated concurrently with
/// the block that triggers a stop are discarded (bounded by the chunk of
/// blocks in flight).
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn campaign(circuit: &Circuit, faults: &[Fault], config: &CampaignConfig) -> CampaignResult {
    let num_inputs = circuit.inputs().len();
    let tables = Arc::new(FaultSimTables::new(circuit));
    // The inline path (serial runs, and chunks too small to parallelize)
    // keeps one simulator alive across all its blocks; parallel workers
    // build one per group from the shared tables.
    let mut inline_fsim: Option<FaultSim> = None;

    let mut detection: Vec<Option<u64>> = vec![None; faults.len()];
    // Global indices of still-undetected faults; compacted as faults fall.
    let mut alive: Vec<u32> = (0..faults.len() as u32).collect();
    let mut alive_faults: Vec<Fault> = faults.to_vec();
    let mut last_effective: Option<u64> = None;
    let mut applied: u64 = 0;
    let mut block_index: u64 = 0;
    let mut stopped = false;

    while !stopped && applied < config.max_patterns && !alive.is_empty() {
        // One chunk: up to `jobs` groups of consecutive blocks over the
        // same alive set. (offset, size) describe each block's pattern
        // range. Group size follows the estimated per-block cost (every
        // alive fault may touch every node) so each work item carries
        // roughly `parallel_grain` node evaluations — the estimate only
        // shapes the schedule, never the result.
        let blocks_left = (config.max_patterns - applied).div_ceil(64);
        let per_block = (alive.len() as u64).max(1) * (circuit.len() as u64).max(1);
        let group = (config.parallel_grain / per_block).max(1);
        // A remainder below one full work item is not worth a thread spawn.
        let inline = config.jobs.is_serial() || blocks_left <= group;
        let chunk = if inline {
            // The serial drop order compacts after every block.
            1
        } else {
            (config.jobs.get() as u64 * group).min(blocks_left)
        };
        let blocks: Vec<(u64, u64, u64)> = (0..chunk)
            .map(|i| {
                let offset = applied + i * 64;
                (block_index + i, offset, (config.max_patterns - offset).min(64))
            })
            .collect();
        let masks_per_block: Vec<Vec<u64>> = if inline {
            let fsim = inline_fsim
                .get_or_insert_with(|| FaultSim::with_tables(circuit, Arc::clone(&tables)));
            blocks
                .iter()
                .map(|&(b, _, _)| {
                    fsim.detect_masks(&alive_faults, &pattern_block(config.seed, b, num_inputs))
                })
                .collect()
        } else {
            let groups: Vec<&[(u64, u64, u64)]> = blocks.chunks(group as usize).collect();
            parallel_map(config.jobs, &groups, |_, grp| {
                let mut fsim = FaultSim::with_tables(circuit, Arc::clone(&tables));
                // Workers drop faults they have already detected in an
                // earlier block of their own group: the merge ignores any
                // later detection of those faults anyway (strict block
                // order), so the masks may go silent without changing the
                // result — and the group stops paying for faults that die
                // in its first blocks, just as the serial loop does.
                let mut slots: Vec<usize> = (0..alive_faults.len()).collect();
                let mut local_faults = alive_faults.clone();
                grp.iter()
                    .map(|&(b, _, size)| {
                        let local_masks = fsim.detect_masks(
                            &local_faults,
                            &pattern_block(config.seed, b, num_inputs),
                        );
                        let mut masks = vec![0u64; alive_faults.len()];
                        let mut keep_slots = Vec::with_capacity(slots.len());
                        let mut keep_faults = Vec::with_capacity(slots.len());
                        let size_mask = if size < 64 { (1u64 << size) - 1 } else { !0 };
                        for ((&slot, &fault), &mask) in
                            slots.iter().zip(&local_faults).zip(&local_masks)
                        {
                            masks[slot] = mask;
                            // Only in-range detections count (a tail block
                            // must not drop on bits past `max_patterns`).
                            if mask & size_mask == 0 {
                                keep_slots.push(slot);
                                keep_faults.push(fault);
                            }
                        }
                        slots = keep_slots;
                        local_faults = keep_faults;
                        masks
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        // Merge strictly in block order. Faults detected by an earlier
        // block of this chunk are skipped in later blocks (their slot in
        // `detection` is already set), reproducing the serial drop order.
        for (&(_, offset, size), masks) in blocks.iter().zip(&masks_per_block) {
            for (slot, &mask) in masks.iter().enumerate() {
                let fault_idx = alive[slot] as usize;
                if detection[fault_idx].is_some() {
                    continue;
                }
                let mask = if size < 64 { mask & ((1u64 << size) - 1) } else { mask };
                if mask != 0 {
                    let pattern = offset + u64::from(mask.trailing_zeros());
                    detection[fault_idx] = Some(pattern);
                    last_effective = Some(last_effective.map_or(pattern, |l| l.max(pattern)));
                }
            }
            applied = offset + size;
            block_index += 1;
            let all_dead = detection.iter().all(Option::is_some);
            let plateaued = config.plateau > 0
                && match last_effective {
                    Some(last) => applied.saturating_sub(last) > config.plateau,
                    None => applied > config.plateau,
                };
            if all_dead || plateaued {
                // Blocks simulated concurrently past this one are
                // discarded, exactly as the serial loop never runs them.
                stopped = true;
                break;
            }
        }
        let mut keep_idx = Vec::with_capacity(alive.len());
        let mut keep_faults = Vec::with_capacity(alive.len());
        for (slot, &fault_idx) in alive.iter().enumerate() {
            if detection[fault_idx as usize].is_none() {
                keep_idx.push(fault_idx);
                keep_faults.push(alive_faults[slot]);
            }
        }
        alive = keep_idx;
        alive_faults = keep_faults;
    }

    let detected = detection.iter().filter(|d| d.is_some()).count();
    CampaignResult {
        total_faults: faults.len(),
        detected,
        detection_pattern: detection,
        last_effective_pattern: last_effective,
        patterns_applied: applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_list;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    fn cfg(max_patterns: u64, plateau: u64, seed: u64) -> CampaignConfig {
        CampaignConfig { max_patterns, plateau, seed, ..CampaignConfig::default() }
    }

    #[test]
    fn c17_reaches_full_coverage() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(4096, 0, 1));
        assert_eq!(r.remaining(), 0, "c17 is fully random-pattern testable");
        assert!(r.coverage() > 0.999);
        assert!(r.last_effective_pattern.is_some());
    }

    #[test]
    fn same_seed_same_result() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let a = campaign(&c, &faults, &cfg(512, 0, 42));
        let b = campaign(&c, &faults, &cfg(512, 0, 42));
        assert_eq!(a, b);
    }

    /// The determinism regression the `--jobs` contract promises: any
    /// thread count produces the bit-identical campaign result — same
    /// detection indices, same effective-pattern statistic, same
    /// plateau-rule stopping point.
    #[test]
    fn thread_count_does_not_change_results() {
        // A circuit large enough that blocks matter, with redundant faults
        // so the alive list never empties, plus plateau configurations so
        // the early-stop arithmetic is exercised.
        let c = sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
            inputs: 10,
            outputs: 5,
            gates: 60,
            window: 16,
            seed: 7,
        });
        let faults = fault_list(&c);
        for (max_patterns, plateau) in [(2048, 0), (1 << 14, 256), (100, 0)] {
            let serial = campaign(&c, &faults, &cfg(max_patterns, plateau, 9));
            for jobs in [2, 3, 4, 8] {
                // grain 0 forces one-block work items (maximal interleaving
                // of the merge), the default exercises grouped items, and
                // the huge grain forces the inline remainder path.
                for grain in [0, CampaignConfig::default().parallel_grain, u64::MAX] {
                    let par = campaign(
                        &c,
                        &faults,
                        &CampaignConfig {
                            max_patterns,
                            plateau,
                            seed: 9,
                            jobs: Jobs::new(jobs),
                            parallel_grain: grain,
                        },
                    );
                    assert_eq!(
                        serial, par,
                        "jobs={jobs} grain={grain} max={max_patterns} plateau={plateau}"
                    );
                }
            }
        }
    }

    #[test]
    fn redundant_faults_remain() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(1024, 0, 3));
        assert!(r.remaining() >= 1, "absorption makes at least one fault redundant");
    }

    #[test]
    fn plateau_stops_early() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(1 << 20, 256, 5));
        assert!(r.patterns_applied < 1 << 20);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn coverage_curve_is_monotone_and_complete() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(4096, 0, 2));
        let curve = r.coverage_curve();
        assert!(!curve.is_empty());
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(curve.last().unwrap().1, r.detected);
        assert_eq!(curve.last().unwrap().0, r.last_effective_pattern.unwrap());
    }

    #[test]
    fn detection_pattern_consistency() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &cfg(4096, 0, 9));
        let max_det = r.detection_pattern.iter().flatten().max().copied();
        assert_eq!(max_det, r.last_effective_pattern);
        assert_eq!(r.detected, r.detection_pattern.iter().filter(|d| d.is_some()).count());
    }

    #[test]
    fn pattern_block_is_a_pure_function() {
        assert_eq!(pattern_block(5, 3, 4), pattern_block(5, 3, 4));
        assert_ne!(pattern_block(5, 3, 4), pattern_block(5, 4, 4));
        assert_ne!(pattern_block(5, 3, 4), pattern_block(6, 3, 4));
        assert_eq!(pattern_block(5, 3, 4).len(), 4);
    }

    /// A tail block shorter than 64 patterns must mask detections past the
    /// configured maximum identically at any thread count.
    #[test]
    fn tail_block_masked_consistently() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        for max in [1, 63, 65, 130] {
            let serial = campaign(&c, &faults, &cfg(max, 0, 11));
            // grain 0 keeps every block its own work item so the tail
            // block really crosses the parallel merge.
            let par = campaign(
                &c,
                &faults,
                &CampaignConfig {
                    max_patterns: max,
                    plateau: 0,
                    seed: 11,
                    jobs: Jobs::new(4),
                    parallel_grain: 0,
                },
            );
            assert_eq!(serial, par, "max_patterns={max}");
            assert!(serial.patterns_applied <= max);
            assert!(serial.detection_pattern.iter().flatten().all(|&p| p < max));
        }
    }
}
