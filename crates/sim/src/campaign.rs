//! Random-pattern testability campaigns (the Table 6 experiment).

use crate::{Fault, FaultSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_netlist::Circuit;

/// Configuration of a random-pattern campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Maximum number of random patterns to apply.
    pub max_patterns: u64,
    /// Stop early when no new fault has been detected for this many
    /// consecutive patterns (0 disables the plateau rule).
    pub plateau: u64,
    /// RNG seed; equal seeds give identical pattern sequences, which is how
    /// the before/after comparisons of Tables 6 and 7 are made fair.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { max_patterns: 1 << 16, plateau: 0, seed: 0x5f7 }
    }
}

/// Result of a random-pattern campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// Number of faults simulated.
    pub total_faults: usize,
    /// Number of faults detected.
    pub detected: usize,
    /// Pattern index (0-based) at which each fault was first detected.
    pub detection_pattern: Vec<Option<u64>>,
    /// The last pattern that detected a previously-undetected fault
    /// (the paper's "eff.patt" column), if any fault was detected.
    pub last_effective_pattern: Option<u64>,
    /// Number of patterns actually applied.
    pub patterns_applied: u64,
}

impl CampaignResult {
    /// Number of faults left undetected (the paper's "remain" column).
    pub fn remaining(&self) -> usize {
        self.total_faults - self.detected
    }

    /// Fault coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }

    /// The cumulative detection curve: `(pattern index, faults detected so
    /// far)` at every pattern that detected something new, in pattern
    /// order. Useful for plotting random-pattern testability profiles.
    pub fn coverage_curve(&self) -> Vec<(u64, usize)> {
        let mut events: Vec<u64> = self.detection_pattern.iter().flatten().copied().collect();
        events.sort_unstable();
        let mut curve = Vec::new();
        let mut cumulative = 0usize;
        let mut i = 0;
        while i < events.len() {
            let p = events[i];
            while i < events.len() && events[i] == p {
                cumulative += 1;
                i += 1;
            }
            curve.push((p, cumulative));
        }
        curve
    }
}

/// Runs a random-pattern stuck-at campaign over `faults` on `circuit`.
///
/// Patterns are drawn from a seeded RNG in blocks of 64; per-fault first
/// detection indices are exact (bit-accurate within each block). Detected
/// faults are dropped from subsequent blocks, so the cost per block shrinks
/// as coverage saturates.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn campaign(circuit: &Circuit, faults: &[Fault], config: &CampaignConfig) -> CampaignResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut fsim = FaultSim::new(circuit);
    let num_inputs = circuit.inputs().len();

    let mut detection: Vec<Option<u64>> = vec![None; faults.len()];
    // Indices of still-undetected faults; compacted as faults fall.
    let mut alive: Vec<u32> = (0..faults.len() as u32).collect();
    let mut alive_faults: Vec<Fault> = faults.to_vec();
    let mut last_effective: Option<u64> = None;
    let mut applied: u64 = 0;
    let mut words = vec![0u64; num_inputs];

    while applied < config.max_patterns && !alive.is_empty() {
        let block = (config.max_patterns - applied).min(64);
        for w in words.iter_mut() {
            *w = rng.gen::<u64>();
        }
        // Mask off unused tail patterns to keep determinism irrelevant:
        // detection bits >= block are ignored below.
        let det = fsim.detect_block(&alive_faults, &words);
        let mut keep_idx = Vec::with_capacity(alive.len());
        let mut keep_faults = Vec::with_capacity(alive.len());
        for (slot, first_bit) in det.into_iter().enumerate() {
            match first_bit {
                Some(bit) if (bit as u64) < block => {
                    let pattern = applied + bit as u64;
                    detection[alive[slot] as usize] = Some(pattern);
                    last_effective = Some(last_effective.map_or(pattern, |l| l.max(pattern)));
                }
                _ => {
                    keep_idx.push(alive[slot]);
                    keep_faults.push(alive_faults[slot]);
                }
            }
        }
        alive = keep_idx;
        alive_faults = keep_faults;
        applied += block;
        if config.plateau > 0 {
            if let Some(last) = last_effective {
                if applied.saturating_sub(last) > config.plateau {
                    break;
                }
            } else if applied > config.plateau {
                break;
            }
        }
    }

    let detected = detection.iter().filter(|d| d.is_some()).count();
    CampaignResult {
        total_faults: faults.len(),
        detected,
        detection_pattern: detection,
        last_effective_pattern: last_effective,
        patterns_applied: applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_list;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn c17_reaches_full_coverage() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &CampaignConfig { max_patterns: 4096, plateau: 0, seed: 1 });
        assert_eq!(r.remaining(), 0, "c17 is fully random-pattern testable");
        assert!(r.coverage() > 0.999);
        assert!(r.last_effective_pattern.is_some());
    }

    #[test]
    fn same_seed_same_result() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let cfg = CampaignConfig { max_patterns: 512, plateau: 0, seed: 42 };
        let a = campaign(&c, &faults, &cfg);
        let b = campaign(&c, &faults, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn redundant_faults_remain() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &CampaignConfig { max_patterns: 1024, plateau: 0, seed: 3 });
        assert!(r.remaining() >= 1, "absorption makes at least one fault redundant");
    }

    #[test]
    fn plateau_stops_early() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r =
            campaign(&c, &faults, &CampaignConfig { max_patterns: 1 << 20, plateau: 256, seed: 5 });
        assert!(r.patterns_applied < 1 << 20);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn coverage_curve_is_monotone_and_complete() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &CampaignConfig { max_patterns: 4096, plateau: 0, seed: 2 });
        let curve = r.coverage_curve();
        assert!(!curve.is_empty());
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(curve.last().unwrap().1, r.detected);
        assert_eq!(curve.last().unwrap().0, r.last_effective_pattern.unwrap());
    }

    #[test]
    fn detection_pattern_consistency() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let r = campaign(&c, &faults, &CampaignConfig { max_patterns: 4096, plateau: 0, seed: 9 });
        let max_det = r.detection_pattern.iter().flatten().max().copied();
        assert_eq!(max_det, r.last_effective_pattern);
        assert_eq!(r.detected, r.detection_pattern.iter().filter(|d| d.is_some()).count());
    }
}
