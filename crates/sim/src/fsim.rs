//! Parallel-pattern single-fault-propagation fault simulation.
//!
//! For each 64-pattern block the good machine is simulated once; each fault
//! is then injected and propagated **only through its fanout cone**, in
//! topological order, with early exit when the fault effect dies — the
//! strategy of FSIM \[17\] adapted to a word-parallel gate-level model.

use crate::{Fault, FaultSite, Simulator};
use sft_netlist::{Circuit, NodeId};
use std::sync::Arc;

/// The read-only per-circuit tables a [`FaultSim`] propagates events over:
/// topological positions, deduplicated fanout lists, and the
/// primary-output mask.
///
/// Building these is the expensive part of [`FaultSim::new`]. Parallel
/// fault-simulation shards (see [`campaign`](crate::campaign)) build the
/// tables once and hand each worker a cheap clone of the [`Arc`] via
/// [`FaultSim::with_tables`], so per-worker setup is reduced to scratch
/// allocation.
#[derive(Debug)]
pub struct FaultSimTables {
    /// Topological position of each node.
    topo_pos: Vec<u32>,
    /// Fanout table: consumers of each node.
    fanouts: Vec<Vec<NodeId>>,
    /// Output slots driven by each node.
    output_mask: Vec<bool>,
}

impl FaultSimTables {
    /// Precomputes the propagation tables for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Self {
        let order = circuit.topo_order().expect("combinational circuit");
        let mut topo_pos = vec![0u32; circuit.len()];
        for (pos, &id) in order.iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }
        let fanouts: Vec<Vec<NodeId>> = circuit
            .fanout_table()
            .into_iter()
            .map(|v| {
                let mut gates: Vec<NodeId> = v.into_iter().map(|(g, _)| g).collect();
                gates.dedup();
                gates
            })
            .collect();
        let mut output_mask = vec![false; circuit.len()];
        for &o in circuit.outputs() {
            output_mask[o.index()] = true;
        }
        FaultSimTables { topo_pos, fanouts, output_mask }
    }
}

/// A reusable fault-simulation engine bound to one circuit.
///
/// # Examples
///
/// ```
/// use sft_netlist::bench_format::parse;
/// use sft_sim::{fault_list, Fault, FaultSim};
///
/// let c = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "inv")?;
/// let mut fsim = FaultSim::new(&c);
/// let y = c.outputs()[0];
/// // a = 0 in pattern 0 -> y = 1, so y s-a-0 is detected at bit 0.
/// let det = fsim.detect_block(&[Fault::stem(y, false)], &[0]);
/// assert_eq!(det, vec![Some(0)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FaultSim<'c> {
    sim: Simulator<'c>,
    /// Shared read-only propagation tables (see [`FaultSimTables`]).
    tables: Arc<FaultSimTables>,
    /// Scratch: good values for the current block.
    good: Vec<u64>,
    /// Scratch: faulty values (copy-on-write per fault).
    faulty: Vec<u64>,
    /// Scratch: which nodes currently deviate from the good machine.
    deviated: Vec<bool>,
}

impl<'c> FaultSim<'c> {
    /// Prepares a fault simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_tables(circuit, Arc::new(FaultSimTables::new(circuit)))
    }

    /// Prepares a fault simulator reusing already-built [`FaultSimTables`].
    ///
    /// The tables must have been built from the same (unmodified)
    /// `circuit`; sharing them across threads is what makes per-shard
    /// simulator setup cheap in parallel campaigns.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn with_tables(circuit: &'c Circuit, tables: Arc<FaultSimTables>) -> Self {
        let sim = Simulator::new(circuit);
        assert_eq!(
            tables.topo_pos.len(),
            circuit.len(),
            "tables were built from a different circuit"
        );
        FaultSim { sim, tables, good: Vec::new(), faulty: Vec::new(), deviated: Vec::new() }
    }

    /// The underlying good-machine simulator.
    pub fn simulator(&self) -> &Simulator<'c> {
        &self.sim
    }

    /// Simulates one 64-pattern block and reports, for each fault, the
    /// lowest pattern bit (0–63) at which it is detected, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn detect_block(&mut self, faults: &[Fault], input_words: &[u64]) -> Vec<Option<u32>> {
        self.detect_masks(faults, input_words)
            .into_iter()
            .map(|m| (m != 0).then(|| m.trailing_zeros()))
            .collect()
    }

    /// Like [`detect_block`](Self::detect_block) but returns, for each
    /// fault, the full 64-bit mask of patterns that detect it.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn detect_masks(&mut self, faults: &[Fault], input_words: &[u64]) -> Vec<u64> {
        let circuit = self.sim.circuit();
        let mut good = std::mem::take(&mut self.good);
        self.sim.eval_into(input_words, &mut good);
        let mut faulty = std::mem::take(&mut self.faulty);
        faulty.clear();
        faulty.resize(circuit.len(), 0);
        let mut deviated = std::mem::take(&mut self.deviated);
        deviated.clear();
        deviated.resize(circuit.len(), false);

        let mut results = Vec::with_capacity(faults.len());
        // Event queue ordered by topological position.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, NodeId)>> =
            std::collections::BinaryHeap::new();
        let mut dirty: Vec<NodeId> = Vec::new();
        let mut buf: Vec<u64> = Vec::with_capacity(8);

        for fault in faults {
            let mut detected: u64 = 0;
            // Injection: compute the first deviated node and value.
            let (start_node, start_val) = match fault.site {
                FaultSite::Stem(n) => {
                    let v = if fault.stuck { u64::MAX } else { 0 };
                    (n, v)
                }
                FaultSite::Branch { gate, pin } => {
                    // Recompute the gate with the pin forced.
                    let node = circuit.node(gate);
                    buf.clear();
                    for (i, f) in node.fanins().iter().enumerate() {
                        let v = if i == pin as usize {
                            if fault.stuck {
                                u64::MAX
                            } else {
                                0
                            }
                        } else {
                            good[f.index()]
                        };
                        buf.push(v);
                    }
                    (gate, node.kind().eval_words(&buf))
                }
            };
            if start_val != good[start_node.index()] {
                faulty[start_node.index()] = start_val;
                deviated[start_node.index()] = true;
                dirty.push(start_node);
                if self.tables.output_mask[start_node.index()] {
                    detected |= start_val ^ good[start_node.index()];
                }
                for &g in &self.tables.fanouts[start_node.index()] {
                    heap.push(std::cmp::Reverse((self.tables.topo_pos[g.index()], g)));
                }
                // Propagate events in topological order.
                while let Some(std::cmp::Reverse((_, n))) = heap.pop() {
                    // Deduplicate: a node may be queued via several fanins.
                    if deviated[n.index()] {
                        continue;
                    }
                    let node = circuit.node(n);
                    buf.clear();
                    for f in node.fanins() {
                        let idx = f.index();
                        let v = if deviated[idx] { faulty[idx] } else { good[idx] };
                        buf.push(v);
                    }
                    let v = node.kind().eval_words(&buf);
                    if v == good[n.index()] {
                        continue;
                    }
                    faulty[n.index()] = v;
                    deviated[n.index()] = true;
                    dirty.push(n);
                    if self.tables.output_mask[n.index()] {
                        detected |= v ^ good[n.index()];
                    }
                    for &g in &self.tables.fanouts[n.index()] {
                        heap.push(std::cmp::Reverse((self.tables.topo_pos[g.index()], g)));
                    }
                }
            }
            results.push(detected);
            for n in dirty.drain(..) {
                deviated[n.index()] = false;
            }
            heap.clear();
        }
        self.good = good;
        self.faulty = faulty;
        self.deviated = deviated;
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_list;
    use sft_netlist::bench_format::parse;
    use sft_netlist::GateKind;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    /// Brute-force reference: simulate the faulty circuit explicitly.
    fn reference_detect(c: &Circuit, fault: Fault, pattern: &[bool]) -> bool {
        let order = c.topo_order().unwrap();
        let mut good = vec![false; c.len()];
        let mut bad = vec![false; c.len()];
        let input_pos: std::collections::HashMap<NodeId, usize> =
            c.inputs().iter().copied().enumerate().map(|(i, n)| (n, i)).collect();
        for &id in &order {
            let node = c.node(id);
            let (g, mut b) = match node.kind() {
                GateKind::Input => (pattern[input_pos[&id]], pattern[input_pos[&id]]),
                kind => {
                    let gv: Vec<bool> = node.fanins().iter().map(|f| good[f.index()]).collect();
                    let bv: Vec<bool> = node
                        .fanins()
                        .iter()
                        .enumerate()
                        .map(|(pin, f)| {
                            if fault.site == (FaultSite::Branch { gate: id, pin: pin as u8 }) {
                                fault.stuck
                            } else {
                                bad[f.index()]
                            }
                        })
                        .collect();
                    (kind.eval(&gv), kind.eval(&bv))
                }
            };
            if fault.site == FaultSite::Stem(id) {
                b = fault.stuck;
            }
            good[id.index()] = g;
            bad[id.index()] = b;
        }
        c.outputs().iter().any(|o| good[o.index()] != bad[o.index()])
    }

    #[test]
    fn matches_reference_on_c17_exhaustively() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let mut fsim = FaultSim::new(&c);
        // All 32 input patterns in one block.
        let mut words = vec![0u64; 5];
        for m in 0..32u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if m >> i & 1 == 1 {
                    *w |= 1 << m;
                }
            }
        }
        let det = fsim.detect_block(&faults, &words);
        for (fi, fault) in faults.iter().enumerate() {
            for m in 0..32u64 {
                let pattern: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
                let expect = reference_detect(&c, *fault, &pattern);
                if expect {
                    let got = det[fi].expect("fault detectable in this block");
                    assert!(got <= m as u32, "fault {fault} first detection too late");
                }
            }
            // If reported detected, some pattern must really detect it.
            if let Some(bit) = det[fi] {
                let pattern: Vec<bool> = (0..5).map(|i| bit as u64 >> i & 1 == 1).collect();
                assert!(reference_detect(&c, *fault, &pattern), "fault {fault} false detection");
            }
        }
        // c17 is fully testable: every fault detected by exhaustive patterns.
        assert!(det.iter().all(Option::is_some), "c17 must be fully testable");
    }

    #[test]
    fn redundant_fault_never_detected() {
        // y = OR(a, AND(a, b)): the AND gate is redundant (absorption).
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        // t s-a-0 is undetectable.
        let t = c.iter().find(|(_, n)| n.name() == Some("t")).map(|(id, _)| id).unwrap();
        let mut fsim = FaultSim::new(&c);
        let mut words = vec![0u64; 2];
        for m in 0..4u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if m >> i & 1 == 1 {
                    *w |= 1 << m;
                }
            }
        }
        let det = fsim.detect_block(&[Fault::stem(t, false)], &words);
        assert_eq!(det, vec![None]);
    }

    #[test]
    fn branch_fault_differs_from_stem_fault() {
        // a fans out to an AND and an OR; branch s-a-1 on the AND pin is
        // detected by a=0,b=1 via the AND only.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n";
        let c = parse(src, "t").unwrap();
        let y = c.iter().find(|(_, n)| n.name() == Some("y")).map(|(id, _)| id).unwrap();
        let mut fsim = FaultSim::new(&c);
        // Single pattern a=0, b=1 at bit 0.
        let det = fsim
            .detect_block(&[Fault::branch(y, 0, true), Fault::stem(c.inputs()[0], true)], &[0, 1]);
        // Branch fault: detected (y flips 0->1). Stem fault also detected
        // (z unaffected since b=1 forces z... wait z = OR(a=0->1, b=1) = 1
        // either way; y flips). Both detected via y.
        assert_eq!(det[0], Some(0));
        assert_eq!(det[1], Some(0));
    }
}
