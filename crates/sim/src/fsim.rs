//! Parallel-pattern single-fault-propagation fault simulation.
//!
//! For each pattern block the good machine is simulated once. Faults are
//! then handled in two phases borrowed from critical-path tracing:
//!
//! 1. **Local deviation.** Each fault's effect is computed at its site and
//!    walked up its fanout-free region (FFR) — every interior node has
//!    exactly one consumer pin, so the deviation transforms gate by gate
//!    with no event queue until it reaches the FFR *root* (first fanout
//!    stem, primary output, or multi-reference node).
//! 2. **Stem observability.** For each root actually reached, the root is
//!    flipped outright and the flip is event-propagated through its fanout
//!    cone once (the strategy of FSIM \[17\]), yielding the per-pattern mask
//!    of outputs that observe the root. The mask is cached per block, so
//!    all faults sharing the root share one cone propagation.
//!
//! The full-flip cache pays for itself only while many live faults share a
//! root. Late in a campaign the survivors are hard faults scattered over
//! distinct roots, and a full flip propagates much further than the fault's
//! own deviation (through XOR trees it never masks at all) — there the
//! engine propagates the actual deviation from the root instead, which is
//! the exact per-pattern detection mask directly. The choice is a pure
//! performance heuristic: both paths are bit-exact, so campaign results do
//! not depend on it.
//!
//! Because gate evaluation is bitwise, `detected = deviation_at_root AND
//! observability_of_root` is exact per pattern — the tests pin this against
//! brute-force faulty-machine simulation.
//!
//! The engine is generic over the simulation word ([`SimWord`]): `u64` keeps
//! the historical 64-pattern block, [`W256`](crate::W256)/
//! [`W512`](crate::W512) sweep 4/8 blocks at once with bit-identical
//! per-pattern results.

use crate::ctrace::SimEngine;
use crate::soa::{eval_gate, SoaCircuit, NONE};
use crate::word::SimWord;
use crate::{Fault, FaultSite};
use sft_netlist::Circuit;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::sync::Arc;

/// The read-only per-circuit tables fault simulation propagates events over:
/// the struct-of-arrays circuit snapshot (packed kinds, flat fanin/fanout
/// slabs, topological order, FFR links).
///
/// Building these is the expensive part of [`FaultSim::new`]. Parallel
/// fault-simulation shards (see [`campaign`](crate::campaign)) build the
/// tables once and hand each worker a cheap clone of the [`Arc`] via
/// [`WideFaultSim::with_tables`], so per-worker setup is reduced to scratch
/// allocation.
#[derive(Debug)]
pub struct FaultSimTables {
    pub(crate) soa: SoaCircuit,
}

impl FaultSimTables {
    /// Precomputes the propagation tables for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Self {
        FaultSimTables { soa: SoaCircuit::new(circuit) }
    }

    /// The shared per-structural-state tables for `circuit`: a cache hit on
    /// the circuit's version-stamped [`derived`](Circuit::derived) slot when
    /// the structure has not mutated since the last snapshot, a
    /// [`new`](Self::new) build (stored back into the slot) otherwise.
    ///
    /// Campaign entry goes through here, so repeated campaigns, test-set
    /// compactions and serve jobs on an unchanged circuit stop paying the
    /// Circuit→SoA translation entirely.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn snapshot(circuit: &Circuit) -> Arc<Self> {
        circuit.derived(FaultSimTables::new)
    }

    /// The underlying struct-of-arrays snapshot.
    pub fn soa(&self) -> &SoaCircuit {
        &self.soa
    }
}

/// A reusable width-generic fault-simulation engine.
///
/// One [`detect_masks`](Self::detect_masks) call simulates `64 * W::LANES`
/// patterns; lane `l` of every returned mask is exactly what a `u64` engine
/// would report for lane `l` of the inputs, so campaign results are
/// bit-identical across word widths.
#[derive(Debug)]
pub struct WideFaultSim<W: SimWord> {
    tables: Arc<FaultSimTables>,
    /// Which detection algorithm [`detect_masks`](Self::detect_masks) runs;
    /// both are bit-exact, so this is purely a performance dial.
    pub(crate) engine: SimEngine,
    /// Scratch: good values for the current block.
    pub(crate) good: Vec<W>,
    /// Scratch: faulty values during stem-flip propagation.
    pub(crate) faulty: Vec<W>,
    /// Scratch: which nodes currently deviate from the good machine.
    pub(crate) deviated: Vec<bool>,
    /// Scratch: nodes to un-deviate after each propagation.
    pub(crate) dirty: Vec<u32>,
    /// Event queue ordered by topological position.
    pub(crate) heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Per-root observability masks for the current block (epoch-stamped).
    pub(crate) obs: Vec<W>,
    pub(crate) obs_epoch: Vec<u64>,
    pub(crate) epoch: u64,
    /// Scratch: live faults per FFR root for the current call.
    pub(crate) root_share: Vec<u32>,
    /// Scratch: roots with a nonzero `root_share`, for cheap reset.
    pub(crate) shared_roots: Vec<u32>,
    /// Scratch: per-node FFR sensitization masks (ctrace engine),
    /// valid for nodes whose root carries the current epoch stamp.
    pub(crate) sens: Vec<W>,
    /// Per-FFR-root epoch stamps for `sens`.
    pub(crate) sens_epoch: Vec<u64>,
    /// Scratch: the uncached suffix of a dominator chain being resolved.
    pub(crate) chain: Vec<u32>,
    /// Scratch (ctrace): `(root, node)` excitations deferred at FFR entry
    /// points during the current propagation.
    pub(crate) entries: Vec<(u32, u32)>,
    /// Scratch (ctrace): whether a root's resolve event is queued.
    pub(crate) ffr_pending: Vec<bool>,
    /// Scratch (ctrace): whether a node is already recorded in `entries`
    /// for the current propagation.
    pub(crate) entered: Vec<bool>,
    /// Scratch (ctrace): whether a plain event for a node is already in the
    /// heap. Converging fanins would otherwise queue the node once per
    /// exciting fanin; deduplicating at push time halves the heap traffic.
    pub(crate) queued: Vec<bool>,
    /// Scratch (ctrace): per-level excitation buckets. Nodes at one level
    /// never depend on each other, so a level sweep replaces the priority
    /// queue's `O(log n)` push/pop with vector appends.
    pub(crate) buckets: Vec<Vec<u32>>,
    /// Scratch (ctrace): per-level region-resolve buckets, processed after
    /// the same level's excitations (the fold-before-resolve tie-break).
    pub(crate) rbuckets: Vec<Vec<u32>>,
    /// Scratch (ctrace): the nonempty levels, in ascending order.
    pub(crate) lheap: BinaryHeap<Reverse<u32>>,
    /// Scratch (ctrace): whether a level is already queued in `lheap`.
    pub(crate) ldirty: Vec<bool>,
    /// Scratch (ctrace): the in-region event queue of a multi-touch
    /// resolution.
    pub(crate) rheap: BinaryHeap<Reverse<(u32, u32)>>,
}

/// Minimum number of live faults on one FFR root before the cached
/// full-flip observability beats per-fault deviation propagation. Below
/// this, surviving faults are usually hard ones whose deviations die within
/// a few gates, while a full flip sweeps the whole downstream cone.
pub(crate) const OBS_SHARE_MIN: u32 = 6;

impl<W: SimWord> WideFaultSim<W> {
    /// Prepares a fault simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Self {
        Self::with_tables(FaultSimTables::snapshot(circuit))
    }

    /// Prepares a fault simulator reusing already-built [`FaultSimTables`].
    pub fn with_tables(tables: Arc<FaultSimTables>) -> Self {
        WideFaultSim {
            tables,
            engine: SimEngine::default(),
            good: Vec::new(),
            faulty: Vec::new(),
            deviated: Vec::new(),
            dirty: Vec::new(),
            heap: BinaryHeap::new(),
            obs: Vec::new(),
            obs_epoch: Vec::new(),
            epoch: 0,
            root_share: Vec::new(),
            shared_roots: Vec::new(),
            sens: Vec::new(),
            sens_epoch: Vec::new(),
            chain: Vec::new(),
            entries: Vec::new(),
            ffr_pending: Vec::new(),
            entered: Vec::new(),
            queued: Vec::new(),
            buckets: Vec::new(),
            rbuckets: Vec::new(),
            lheap: BinaryHeap::new(),
            ldirty: Vec::new(),
            rheap: BinaryHeap::new(),
        }
    }

    /// Selects the detection engine (builder style). Both engines return
    /// bit-identical masks; see [`SimEngine`].
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the detection engine in place.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.engine = engine;
    }

    /// The engine currently selected.
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// The shared propagation tables.
    pub fn tables(&self) -> &Arc<FaultSimTables> {
        &self.tables
    }

    /// Per-block prologue shared by both engines: good-machine evaluation,
    /// scratch sizing, epoch bump, and the live-fault share count per FFR
    /// root (the cached observability is only worth computing for roots
    /// where the cost is shared widely — see `OBS_SHARE_MIN`).
    pub(crate) fn begin_block(&mut self, soa: &SoaCircuit, faults: &[Fault], input_words: &[W]) {
        soa.eval_into(input_words, &mut self.good);
        let n = soa.len();
        // `faulty` starts as a copy of the good values (same O(n) fill the
        // old zero-init paid): the ctrace engine reads `faulty` directly as
        // "the current value" — branchless, one load per pin — and every
        // propagation restores its dirty entries, keeping the invariant
        // `faulty[x] == good[x]` for non-deviated `x`. The wide engine
        // gates reads on `deviated` and never reads an undeviated `faulty`
        // slot, so the init value is indifferent to it.
        self.faulty.clear();
        self.faulty.extend_from_slice(&self.good);
        self.deviated.clear();
        self.deviated.resize(n, false);
        if self.obs.len() != n {
            self.obs = vec![W::ZERO; n];
            self.obs_epoch = vec![0; n];
            self.epoch = 0;
            self.root_share = vec![0; n];
            self.sens = vec![W::ZERO; n];
            self.sens_epoch = vec![0; n];
            self.ffr_pending = vec![false; n];
            self.entered = vec![false; n];
            self.queued = vec![false; n];
            let levels = soa.num_levels as usize;
            self.buckets = (0..levels).map(|_| Vec::new()).collect();
            self.rbuckets = (0..levels).map(|_| Vec::new()).collect();
            self.ldirty = vec![false; levels];
        }
        self.epoch += 1;

        for fault in faults {
            let site = match fault.site {
                FaultSite::Stem(s) => s.index(),
                FaultSite::Branch { gate, .. } => gate.index(),
            };
            let r = soa.ffr_root[site] as usize;
            if self.root_share[r] == 0 {
                self.shared_roots.push(r as u32);
            }
            self.root_share[r] += 1;
        }
    }

    /// Per-block epilogue shared by both engines.
    pub(crate) fn end_block(&mut self) {
        for r in self.shared_roots.drain(..) {
            self.root_share[r as usize] = 0;
        }
    }

    /// The local deviation a fault causes at the output of its own site
    /// gate, before any propagation.
    #[inline]
    pub(crate) fn site_deviation(&self, soa: &SoaCircuit, fault: &Fault) -> (u32, W) {
        let forced = if fault.stuck { W::ONES } else { W::ZERO };
        match fault.site {
            FaultSite::Stem(s) => {
                let i = s.index();
                (i as u32, forced.xor(self.good[i]))
            }
            FaultSite::Branch { gate, pin } => {
                // Recompute the gate with the pin forced.
                let g = gate.index();
                let out = eval_gate(soa.kinds[g], soa.fanin_slice(g), |p, f| {
                    if p == pin as usize {
                        forced
                    } else {
                        self.good[f as usize]
                    }
                });
                (g as u32, out.xor(self.good[g]))
            }
        }
    }

    /// Simulates one block of `64 * W::LANES` patterns and returns, for each
    /// fault, the word whose set bits are the patterns that detect it.
    ///
    /// Dispatches on the configured [`SimEngine`]; the two engines return
    /// bit-identical masks (pinned by the tests), differing only in cost.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn detect_masks(&mut self, faults: &[Fault], input_words: &[W]) -> Vec<W> {
        match self.engine {
            SimEngine::Wide => self.detect_masks_wide(faults, input_words),
            SimEngine::Ctrace => self.detect_masks_ctrace(faults, input_words),
        }
    }

    /// The PR 6 algorithm: per-fault FFR walk, then full-flip or
    /// actual-deviation propagation per root.
    fn detect_masks_wide(&mut self, faults: &[Fault], input_words: &[W]) -> Vec<W> {
        let tables = Arc::clone(&self.tables);
        let soa = &tables.soa;
        self.begin_block(soa, faults, input_words);
        let mut results = Vec::with_capacity(faults.len());
        for fault in faults {
            // Phase 1: the deviation the fault causes at its own site.
            let (mut node, mut dev) = self.site_deviation(soa, fault);
            // Walk the deviation up the fanout-free chain to the root.
            while !dev.is_zero() {
                let head = soa.ffr_head[node as usize];
                if head == NONE {
                    break;
                }
                let h = head as usize;
                let flipped = node;
                let out = eval_gate(soa.kinds[h], soa.fanin_slice(h), |_, f| {
                    let v = self.good[f as usize];
                    if f == flipped {
                        v.xor(dev)
                    } else {
                        v
                    }
                });
                dev = out.xor(self.good[h]);
                node = head;
            }
            // Phase 2: detection = deviation at the root gated by the
            // root's observability. Reuse the cached full-flip mask when it
            // exists (or enough live faults share the root to amortise it);
            // otherwise propagating the actual deviation is the detection
            // mask directly, and dies as early as the deviation does.
            let detected = if dev.is_zero() {
                W::ZERO
            } else {
                let r = node as usize;
                if self.obs_epoch[r] == self.epoch {
                    dev.and(self.obs[r])
                } else if self.root_share[r] >= OBS_SHARE_MIN {
                    dev.and(self.stem_obs(soa, node))
                } else {
                    self.propagate_deviation(soa, node, dev)
                }
            };
            results.push(detected);
        }
        self.end_block();
        results
    }

    /// The per-pattern mask of outputs observing a flip of `root`, computed
    /// by one event-driven propagation of the full flip and cached for the
    /// current block.
    pub(crate) fn stem_obs(&mut self, soa: &SoaCircuit, root: u32) -> W {
        let r = root as usize;
        if self.obs_epoch[r] == self.epoch {
            return self.obs[r];
        }
        let detected = self.propagate_deviation(soa, root, W::ONES);
        self.obs[r] = detected;
        self.obs_epoch[r] = self.epoch;
        detected
    }

    /// Event-propagates a deviation of `dev` at `root` through its fanout
    /// cone and returns the per-pattern mask of outputs that change — the
    /// exact detection mask of any fault producing `dev` at `root`. With
    /// `dev = ONES` this is the root's full-flip observability.
    pub(crate) fn propagate_deviation(&mut self, soa: &SoaCircuit, root: u32, dev: W) -> W {
        let r = root as usize;
        let mut detected = W::ZERO;
        self.faulty[r] = self.good[r].xor(dev);
        self.deviated[r] = true;
        self.dirty.push(root);
        if soa.output_mask[r] {
            detected = dev;
        }
        for &g in soa.fanout_slice(r) {
            self.heap.push(Reverse((soa.topo_pos[g as usize], g)));
        }
        // Propagate events in topological order.
        while let Some(Reverse((_, id))) = self.heap.pop() {
            let i = id as usize;
            // Deduplicate: a node may be queued via several fanins.
            if self.deviated[i] {
                continue;
            }
            let v = eval_gate(soa.kinds[i], soa.fanin_slice(i), |_, f| {
                let fi = f as usize;
                if self.deviated[fi] {
                    self.faulty[fi]
                } else {
                    self.good[fi]
                }
            });
            if v == self.good[i] {
                continue;
            }
            self.faulty[i] = v;
            self.deviated[i] = true;
            self.dirty.push(id);
            if soa.output_mask[i] {
                detected = detected.or(v.xor(self.good[i]));
            }
            for &g in soa.fanout_slice(i) {
                self.heap.push(Reverse((soa.topo_pos[g as usize], g)));
            }
        }
        for id in self.dirty.drain(..) {
            self.deviated[id as usize] = false;
        }
        detected
    }
}

/// A reusable 64-pattern fault-simulation engine bound to one circuit.
///
/// This is the `u64` face of [`WideFaultSim`], kept for callers that work a
/// single 64-pattern block at a time (ATPG, delay simulation).
///
/// # Examples
///
/// ```
/// use sft_netlist::bench_format::parse;
/// use sft_sim::{fault_list, Fault, FaultSim};
///
/// let c = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "inv")?;
/// let mut fsim = FaultSim::new(&c);
/// let y = c.outputs()[0];
/// // a = 0 in pattern 0 -> y = 1, so y s-a-0 is detected at bit 0.
/// let det = fsim.detect_block(&[Fault::stem(y, false)], &[0]);
/// assert_eq!(det, vec![Some(0)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FaultSim<'c> {
    inner: WideFaultSim<u64>,
    _circuit: PhantomData<&'c Circuit>,
}

impl<'c> FaultSim<'c> {
    /// Prepares a fault simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_tables(circuit, FaultSimTables::snapshot(circuit))
    }

    /// Prepares a fault simulator reusing already-built [`FaultSimTables`].
    ///
    /// The tables must have been built from the same (unmodified)
    /// `circuit`; sharing them across threads is what makes per-shard
    /// simulator setup cheap in parallel campaigns.
    pub fn with_tables(circuit: &'c Circuit, tables: Arc<FaultSimTables>) -> Self {
        assert_eq!(tables.soa.len(), circuit.len(), "tables were built from a different circuit");
        FaultSim { inner: WideFaultSim::with_tables(tables), _circuit: PhantomData }
    }

    /// Selects the detection engine (builder style); both engines return
    /// bit-identical results — see [`SimEngine`].
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.inner.set_engine(engine);
        self
    }

    /// Selects the detection engine in place.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.inner.set_engine(engine);
    }

    /// Simulates one 64-pattern block and reports, for each fault, the
    /// lowest pattern bit (0–63) at which it is detected, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn detect_block(&mut self, faults: &[Fault], input_words: &[u64]) -> Vec<Option<u32>> {
        self.detect_masks(faults, input_words)
            .into_iter()
            .map(|m| (m != 0).then(|| m.trailing_zeros()))
            .collect()
    }

    /// Like [`detect_block`](Self::detect_block) but returns, for each
    /// fault, the full 64-bit mask of patterns that detect it.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn detect_masks(&mut self, faults: &[Fault], input_words: &[u64]) -> Vec<u64> {
        self.inner.detect_masks(faults, input_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{W256, W512};
    use crate::{fault_list, pattern_block};
    use sft_circuits::random::{random_circuit, RandomCircuitConfig};
    use sft_netlist::bench_format::parse;
    use sft_netlist::{GateKind, NodeId};

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    /// Brute-force reference: simulate the faulty circuit explicitly.
    fn reference_detect(c: &Circuit, fault: Fault, pattern: &[bool]) -> bool {
        let order = c.topo_order().unwrap();
        let mut good = vec![false; c.len()];
        let mut bad = vec![false; c.len()];
        let input_pos: std::collections::HashMap<NodeId, usize> =
            c.inputs().iter().copied().enumerate().map(|(i, n)| (n, i)).collect();
        for &id in &order {
            let node = c.node(id);
            let (g, mut b) = match node.kind() {
                GateKind::Input => (pattern[input_pos[&id]], pattern[input_pos[&id]]),
                kind => {
                    let gv: Vec<bool> = node.fanins().iter().map(|f| good[f.index()]).collect();
                    let bv: Vec<bool> = node
                        .fanins()
                        .iter()
                        .enumerate()
                        .map(|(pin, f)| {
                            if fault.site == (FaultSite::Branch { gate: id, pin: pin as u8 }) {
                                fault.stuck
                            } else {
                                bad[f.index()]
                            }
                        })
                        .collect();
                    (kind.eval(&gv), kind.eval(&bv))
                }
            };
            if fault.site == FaultSite::Stem(id) {
                b = fault.stuck;
            }
            good[id.index()] = g;
            bad[id.index()] = b;
        }
        c.outputs().iter().any(|o| good[o.index()] != bad[o.index()])
    }

    #[test]
    fn matches_reference_on_c17_exhaustively() {
        let c = parse(C17, "c17").unwrap();
        let faults = fault_list(&c);
        let mut fsim = FaultSim::new(&c);
        // All 32 input patterns in one block.
        let mut words = vec![0u64; 5];
        for m in 0..32u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if m >> i & 1 == 1 {
                    *w |= 1 << m;
                }
            }
        }
        let det = fsim.detect_block(&faults, &words);
        for (fi, fault) in faults.iter().enumerate() {
            for m in 0..32u64 {
                let pattern: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
                let expect = reference_detect(&c, *fault, &pattern);
                if expect {
                    let got = det[fi].expect("fault detectable in this block");
                    assert!(got <= m as u32, "fault {fault} first detection too late");
                }
            }
            // If reported detected, some pattern must really detect it.
            if let Some(bit) = det[fi] {
                let pattern: Vec<bool> = (0..5).map(|i| bit as u64 >> i & 1 == 1).collect();
                assert!(reference_detect(&c, *fault, &pattern), "fault {fault} false detection");
            }
        }
        // c17 is fully testable: every fault detected by exhaustive patterns.
        assert!(det.iter().all(Option::is_some), "c17 must be fully testable");
    }

    #[test]
    fn redundant_fault_never_detected() {
        // y = OR(a, AND(a, b)): the AND gate is redundant (absorption).
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        // t s-a-0 is undetectable.
        let t = c.iter().find(|(_, n)| n.name() == Some("t")).map(|(id, _)| id).unwrap();
        let mut fsim = FaultSim::new(&c);
        let mut words = vec![0u64; 2];
        for m in 0..4u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if m >> i & 1 == 1 {
                    *w |= 1 << m;
                }
            }
        }
        let det = fsim.detect_block(&[Fault::stem(t, false)], &words);
        assert_eq!(det, vec![None]);
    }

    #[test]
    fn branch_fault_differs_from_stem_fault() {
        // a fans out to an AND and an OR; branch s-a-1 on the AND pin is
        // detected by a=0,b=1 via the AND only.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n";
        let c = parse(src, "t").unwrap();
        let y = c.iter().find(|(_, n)| n.name() == Some("y")).map(|(id, _)| id).unwrap();
        let mut fsim = FaultSim::new(&c);
        // Single pattern a=0, b=1 at bit 0.
        let det = fsim
            .detect_block(&[Fault::branch(y, 0, true), Fault::stem(c.inputs()[0], true)], &[0, 1]);
        // Branch fault: detected (y flips 0->1). Stem fault also detected
        // (z unaffected since b=1 forces z... wait z = OR(a=0->1, b=1) = 1
        // either way; y flips). Both detected via y.
        assert_eq!(det[0], Some(0));
        assert_eq!(det[1], Some(0));
    }

    #[test]
    fn stem_grouping_matches_brute_force_on_random_circuits() {
        // The FFR walk + cached stem observability must be exactly the
        // per-pattern faulty-machine result, pattern by pattern.
        for seed in [1u64, 9, 33] {
            let c = random_circuit(&RandomCircuitConfig {
                gates: 120,
                seed,
                ..RandomCircuitConfig::default()
            });
            let faults = fault_list(&c);
            let num_inputs = c.inputs().len();
            let words = pattern_block(0xABCD ^ seed, 3, num_inputs);
            let mut fsim = FaultSim::new(&c);
            let masks = fsim.detect_masks(&faults, &words);
            for (fi, &fault) in faults.iter().enumerate() {
                for bit in 0..64u32 {
                    let pattern: Vec<bool> =
                        (0..num_inputs).map(|i| words[i] >> bit & 1 == 1).collect();
                    let expect = reference_detect(&c, fault, &pattern);
                    let got = masks[fi] >> bit & 1 == 1;
                    assert_eq!(got, expect, "seed {seed} fault {fault} bit {bit}");
                }
            }
        }
    }

    #[test]
    fn wide_words_are_bit_identical_to_u64_blocks() {
        // One W256 sweep over blocks 4*k..4*k+3 must equal four u64 sweeps,
        // lane by lane — same for W512 and eight blocks.
        let c = random_circuit(&RandomCircuitConfig {
            gates: 250,
            seed: 5,
            ..RandomCircuitConfig::default()
        });
        let faults = fault_list(&c);
        let num_inputs = c.inputs().len();
        let tables = Arc::new(FaultSimTables::new(&c));
        let mut narrow = WideFaultSim::<u64>::with_tables(Arc::clone(&tables));
        let mut wide256 = WideFaultSim::<W256>::with_tables(Arc::clone(&tables));
        let mut wide512 = WideFaultSim::<W512>::with_tables(Arc::clone(&tables));

        let blocks: Vec<Vec<u64>> =
            (0..W512::LANES as u64).map(|b| pattern_block(0x5f7, b, num_inputs)).collect();
        let per_block: Vec<Vec<u64>> =
            blocks.iter().map(|words| narrow.detect_masks(&faults, words)).collect();

        let in256: Vec<W256> =
            (0..num_inputs).map(|i| W256::from_lanes(|l| blocks[l][i])).collect();
        let m256 = wide256.detect_masks(&faults, &in256);
        for (fi, m) in m256.iter().enumerate() {
            for (l, block) in per_block.iter().enumerate().take(W256::LANES) {
                assert_eq!(m.lane(l), block[fi], "W256 fault {fi} lane {l}");
            }
        }

        let in512: Vec<W512> =
            (0..num_inputs).map(|i| W512::from_lanes(|l| blocks[l][i])).collect();
        let m512 = wide512.detect_masks(&faults, &in512);
        for (fi, m) in m512.iter().enumerate() {
            for (l, block) in per_block.iter().enumerate().take(W512::LANES) {
                assert_eq!(m.lane(l), block[fi], "W512 fault {fi} lane {l}");
            }
        }
    }
}
