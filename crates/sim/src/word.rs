//! Fixed-width simulation words: 64, 256 and 512 patterns per sweep.
//!
//! Fault simulation is bit-parallel: every node value is a word whose bit
//! `p` belongs to pattern `p`. [`SimWord`] abstracts the word so the same
//! engine runs on plain `u64` (the historical 64-pattern block) or on fixed
//! `[u64; N]` chunks ([`W256`], [`W512`]) that the compiler auto-vectorizes
//! — no intrinsics, std only.
//!
//! A wide word is laid out as [`SimWord::LANES`] consecutive 64-bit *lanes*;
//! lane `l` of wide pattern-block `w` carries exactly the 64-pattern block
//! `w * LANES + l` of the seeded stream (see
//! [`pattern_block`](crate::pattern_block)). Because every per-pattern bit
//! sits at the same `(lane, bit)` position regardless of width, campaign
//! results are **bit-identical** across word widths, which the determinism
//! tests pin.

/// A fixed-width pattern word: one value bit per simulated pattern,
/// organised as [`Self::LANES`] 64-bit lanes.
///
/// Implementations must be plain bit-vectors: every operation acts
/// independently per bit, so per-pattern results never depend on the word
/// width they were computed at.
pub trait SimWord: Copy + Eq + Send + Sync + std::fmt::Debug + 'static {
    /// Number of 64-bit lanes (64 × `LANES` patterns per sweep).
    const LANES: usize;
    /// The all-zeros word.
    const ZERO: Self;
    /// The all-ones word.
    const ONES: Self;

    /// Builds a word from one `u64` per lane (`f(l)` fills lane `l`).
    fn from_lanes(f: impl FnMut(usize) -> u64) -> Self;
    /// The 64 bits of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::LANES`.
    fn lane(self, i: usize) -> u64;
    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Bitwise OR.
    fn or(self, other: Self) -> Self;
    /// Bitwise XOR.
    fn xor(self, other: Self) -> Self;
    /// Bitwise complement.
    fn not(self) -> Self;
    /// Whether every bit is zero (fault effect died / nothing detected).
    fn is_zero(self) -> bool;
}

impl SimWord for u64 {
    const LANES: usize = 1;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    #[inline]
    fn from_lanes(mut f: impl FnMut(usize) -> u64) -> Self {
        f(0)
    }

    #[inline]
    fn lane(self, i: usize) -> u64 {
        assert_eq!(i, 0, "u64 has a single lane");
        self
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline]
    fn not(self) -> Self {
        !self
    }

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }
}

macro_rules! wide_word {
    ($(#[$doc:meta])* $name:ident, $lanes:expr, $align:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(align($align))]
        pub struct $name(pub [u64; $lanes]);

        impl SimWord for $name {
            const LANES: usize = $lanes;
            const ZERO: Self = $name([0; $lanes]);
            const ONES: Self = $name([u64::MAX; $lanes]);

            #[inline]
            fn from_lanes(mut f: impl FnMut(usize) -> u64) -> Self {
                let mut r = [0u64; $lanes];
                for (i, lane) in r.iter_mut().enumerate() {
                    *lane = f(i);
                }
                $name(r)
            }

            #[inline]
            fn lane(self, i: usize) -> u64 {
                self.0[i]
            }

            #[inline]
            fn and(self, other: Self) -> Self {
                let mut r = self.0;
                for i in 0..$lanes {
                    r[i] &= other.0[i];
                }
                $name(r)
            }

            #[inline]
            fn or(self, other: Self) -> Self {
                let mut r = self.0;
                for i in 0..$lanes {
                    r[i] |= other.0[i];
                }
                $name(r)
            }

            #[inline]
            fn xor(self, other: Self) -> Self {
                let mut r = self.0;
                for i in 0..$lanes {
                    r[i] ^= other.0[i];
                }
                $name(r)
            }

            #[inline]
            fn not(self) -> Self {
                let mut r = self.0;
                for lane in r.iter_mut() {
                    *lane = !*lane;
                }
                $name(r)
            }

            #[inline]
            fn is_zero(self) -> bool {
                self.0.iter().all(|&l| l == 0)
            }
        }
    };
}

wide_word!(
    /// A 256-bit simulation word: four 64-pattern lanes per sweep.
    W256,
    4,
    32
);
wide_word!(
    /// A 512-bit simulation word: eight 64-pattern lanes per sweep.
    W512,
    8,
    64
);

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<W: SimWord>() {
        let a = W::from_lanes(|l| 0xDEAD_BEEF_0000_0000u64 | l as u64);
        let b = W::from_lanes(|l| 0x0000_0000_CAFE_F00Du64 ^ (l as u64) << 32);
        for l in 0..W::LANES {
            let (x, y) = (a.lane(l), b.lane(l));
            assert_eq!(a.and(b).lane(l), x & y);
            assert_eq!(a.or(b).lane(l), x | y);
            assert_eq!(a.xor(b).lane(l), x ^ y);
            assert_eq!(a.not().lane(l), !x);
        }
        assert!(W::ZERO.is_zero());
        assert!(!W::ONES.is_zero());
        assert_eq!(W::ONES.not(), W::ZERO);
        assert_eq!(a.xor(a), W::ZERO);
    }

    #[test]
    fn lanes_are_independent_bit_vectors() {
        exercise::<u64>();
        exercise::<W256>();
        exercise::<W512>();
    }

    #[test]
    fn single_bit_survives_round_trips() {
        // Bit p of lane l must stay at (l, p) through every operation.
        let w = W256::from_lanes(|l| if l == 2 { 1u64 << 17 } else { 0 });
        assert!(!w.is_zero());
        assert_eq!(w.lane(2), 1 << 17);
        assert_eq!(w.lane(0), 0);
        assert_eq!(w.and(W256::ONES), w);
        assert_eq!(w.or(W256::ZERO), w);
        assert_eq!(w.not().not(), w);
    }
}
