use sft_netlist::{Circuit, GateKind, NodeId};

/// A 64-way bit-parallel good-machine simulator.
///
/// Construction precomputes the topological order; each [`eval`](Self::eval)
/// call then simulates 64 input patterns in one sweep. Bit `p` of every word
/// belongs to pattern `p`.
///
/// # Examples
///
/// ```
/// use sft_netlist::bench_format::parse;
/// use sft_sim::Simulator;
///
/// let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "x")?;
/// let sim = Simulator::new(&c);
/// // Pattern bit 0: a=1,b=0; bit 1: a=1,b=1.
/// let values = sim.eval(&[0b11, 0b10]);
/// assert_eq!(sim.output_words(&values), vec![0b01]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<'c> {
    circuit: &'c Circuit,
    order: Vec<NodeId>,
    /// Position of each primary input in the input vector, indexed by node.
    input_pos: Vec<usize>,
}

impl<'c> Simulator<'c> {
    /// Prepares a simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &'c Circuit) -> Self {
        let order = circuit.topo_order().expect("combinational circuit");
        let mut input_pos = vec![usize::MAX; circuit.len()];
        for (i, &id) in circuit.inputs().iter().enumerate() {
            input_pos[id.index()] = i;
        }
        Simulator { circuit, order, input_pos }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The cached topological order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Simulates 64 patterns; `input_words[i]` carries the 64 values of
    /// primary input `i`. Returns one word per node.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn eval(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(input_words.len(), self.circuit.inputs().len(), "input word count mismatch");
        let mut values = vec![0u64; self.circuit.len()];
        self.eval_into(input_words, &mut values);
        values
    }

    /// Like [`eval`](Self::eval) but reuses a caller-provided buffer
    /// (resized as needed).
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn eval_into(&self, input_words: &[u64], values: &mut Vec<u64>) {
        assert_eq!(input_words.len(), self.circuit.inputs().len(), "input word count mismatch");
        values.clear();
        values.resize(self.circuit.len(), 0);
        let mut buf: Vec<u64> = Vec::with_capacity(8);
        for &id in &self.order {
            let node = self.circuit.node(id);
            values[id.index()] = match node.kind() {
                GateKind::Input => input_words[self.input_pos[id.index()]],
                kind => {
                    buf.clear();
                    buf.extend(node.fanins().iter().map(|f| values[f.index()]));
                    kind.eval_words(&buf)
                }
            };
        }
    }

    /// Extracts the primary-output words from a full value vector.
    pub fn output_words(&self, values: &[u64]) -> Vec<u64> {
        self.circuit.outputs().iter().map(|o| values[o.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    #[test]
    fn parallel_matches_scalar() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
t1 = NAND(a, b)\nt2 = XOR(t1, c)\ny = NOR(t2, a)\nz = OR(t1, t2, c)\n";
        let c = parse(src, "mix").unwrap();
        let sim = Simulator::new(&c);
        // Pack all 8 input combinations into one word.
        let mut words = vec![0u64; 3];
        for m in 0..8u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if m >> (2 - i) & 1 == 1 {
                    *w |= 1 << m;
                }
            }
        }
        let values = sim.eval(&words);
        let outs = sim.output_words(&values);
        for m in 0..8u64 {
            let a: Vec<bool> = (0..3).map(|i| m >> (2 - i) & 1 == 1).collect();
            let expect = c.eval_assignment(&a);
            for (o, &word) in outs.iter().enumerate() {
                assert_eq!(word >> m & 1 == 1, expect[o], "pattern {m} output {o}");
            }
        }
    }

    #[test]
    fn eval_into_reuses_buffer() {
        let c = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "n").unwrap();
        let sim = Simulator::new(&c);
        let mut buf = Vec::new();
        sim.eval_into(&[0xF0F0], &mut buf);
        assert_eq!(sim.output_words(&buf), vec![!0xF0F0]);
        sim.eval_into(&[0], &mut buf);
        assert_eq!(sim.output_words(&buf), vec![u64::MAX]);
    }
}
