//! COP-style probabilistic testability measures.
//!
//! The paper's Table 6 measures random-pattern stuck-at testability by
//! brute-force simulation; the classical *controllability/observability
//! program* (COP) estimates the same quantities analytically: under
//! independent uniform inputs,
//!
//! - `C1(ℓ)` — the probability that line `ℓ` is 1;
//! - `O(ℓ)`  — the probability that flipping `ℓ` flips some output;
//! - the detection probability of `ℓ s-a-v` is then approximately
//!   `O(ℓ) · (v ? C0 : C1)(ℓ)`.
//!
//! COP treats reconverging signals as independent, so the estimates are
//! approximations; the tests cross-check them against exact exhaustive
//! computation on small circuits and verify exactness on trees.

use crate::Fault;
use sft_netlist::{Circuit, GateKind, NodeId};

/// Per-line COP estimates.
#[derive(Debug, Clone)]
pub struct CopMeasures {
    /// `C1` per node: probability the line is 1 under uniform inputs.
    pub controllability: Vec<f64>,
    /// `O` per node: probability a flip on the line reaches an output.
    pub observability: Vec<f64>,
}

impl CopMeasures {
    /// Estimated detection probability of `fault` under one uniform random
    /// pattern.
    ///
    /// # Panics
    ///
    /// Panics if the fault site is out of range.
    pub fn detection_probability(&self, circuit: &Circuit, fault: Fault) -> f64 {
        match fault.site {
            crate::FaultSite::Stem(n) => {
                let c1 = self.controllability[n.index()];
                let activation = if fault.stuck { 1.0 - c1 } else { c1 };
                activation * self.observability[n.index()]
            }
            crate::FaultSite::Branch { gate, pin } => {
                let driver = circuit.node(gate).fanins()[pin as usize];
                let c1 = self.controllability[driver.index()];
                let activation = if fault.stuck { 1.0 - c1 } else { c1 };
                // Branch observability: the driver's flip must pass this
                // particular gate; approximate with the gate output's
                // observability times the side-input sensitization
                // probability.
                let sens = gate_sensitization(self, circuit, gate, pin as usize);
                activation * sens * self.observability[gate.index()]
            }
        }
    }
}

fn gate_sensitization(m: &CopMeasures, circuit: &Circuit, gate: NodeId, pin: usize) -> f64 {
    let node = circuit.node(gate);
    match node.kind() {
        GateKind::Buf | GateKind::Not => 1.0,
        GateKind::And | GateKind::Nand => node
            .fanins()
            .iter()
            .enumerate()
            .filter(|&(q, _)| q != pin)
            .map(|(_, f)| m.controllability[f.index()])
            .product(),
        GateKind::Or | GateKind::Nor => node
            .fanins()
            .iter()
            .enumerate()
            .filter(|&(q, _)| q != pin)
            .map(|(_, f)| 1.0 - m.controllability[f.index()])
            .product(),
        GateKind::Xor | GateKind::Xnor => 1.0,
        _ => 0.0,
    }
}

/// Computes COP controllability and observability for every line.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn cop_measures(circuit: &Circuit) -> CopMeasures {
    let order = circuit.topo_order().expect("combinational circuit");
    let mut c1 = vec![0.0f64; circuit.len()];
    for &id in &order {
        let node = circuit.node(id);
        c1[id.index()] = match node.kind() {
            GateKind::Input => 0.5,
            GateKind::Const0 => 0.0,
            GateKind::Const1 => 1.0,
            GateKind::Buf => c1[node.fanins()[0].index()],
            GateKind::Not => 1.0 - c1[node.fanins()[0].index()],
            GateKind::And | GateKind::Nand => {
                let p: f64 = node.fanins().iter().map(|f| c1[f.index()]).product();
                if node.kind() == GateKind::Nand {
                    1.0 - p
                } else {
                    p
                }
            }
            GateKind::Or | GateKind::Nor => {
                let p: f64 = node.fanins().iter().map(|f| 1.0 - c1[f.index()]).product();
                if node.kind() == GateKind::Nor {
                    p
                } else {
                    1.0 - p
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                // P(odd number of 1s) for independent inputs.
                let mut odd = 0.0f64;
                for f in node.fanins() {
                    let p = c1[f.index()];
                    odd = odd * (1.0 - p) + (1.0 - odd) * p;
                }
                if node.kind() == GateKind::Xnor {
                    1.0 - odd
                } else {
                    odd
                }
            }
        };
    }
    // Observability: outputs have O = 1; propagate backwards. A line seen
    // by several consumers gets the max (a flip needs only one live path —
    // COP's standard approximation).
    let mut obs = vec![0.0f64; circuit.len()];
    for &o in circuit.outputs() {
        obs[o.index()] = 1.0;
    }
    let measures_stub = CopMeasures { controllability: c1.clone(), observability: Vec::new() };
    for &id in order.iter().rev() {
        let node = circuit.node(id);
        if !node.kind().is_gate() {
            continue;
        }
        let out_obs = obs[id.index()];
        for (pin, &f) in node.fanins().iter().enumerate() {
            let through = out_obs * gate_sensitization(&measures_stub, circuit, id, pin);
            if through > obs[f.index()] {
                obs[f.index()] = through;
            }
        }
    }
    CopMeasures { controllability: c1, observability: obs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fault_list, FaultSim};
    use sft_netlist::bench_format::parse;

    /// Exact detection probability by exhaustive simulation.
    fn exact_detection_probability(c: &Circuit, fault: Fault) -> f64 {
        let n = c.inputs().len();
        let mut fsim = FaultSim::new(c);
        let mut detected = 0u64;
        let total = 1u64 << n;
        let mut m = 0u64;
        while m < total {
            let block = (total - m).min(64);
            let mut words = vec![0u64; n];
            for b in 0..block {
                for (i, w) in words.iter_mut().enumerate() {
                    if (m + b) >> i & 1 == 1 {
                        *w |= 1 << b;
                    }
                }
            }
            let mask = fsim.detect_masks(&[fault], &words)[0];
            detected +=
                (mask & if block == 64 { u64::MAX } else { (1 << block) - 1 }).count_ones() as u64;
            m += block;
        }
        detected as f64 / total as f64
    }

    /// On fanout-free circuits (trees), COP is exact.
    #[test]
    fn exact_on_trees() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = NOR(c, d)\ny = OR(t1, t2)\n";
        let c = parse(src, "tree").unwrap();
        let m = cop_measures(&c);
        for fault in fault_list(&c) {
            let estimated = m.detection_probability(&c, fault);
            let exact = exact_detection_probability(&c, fault);
            assert!((estimated - exact).abs() < 1e-9, "{fault}: COP {estimated} vs exact {exact}");
        }
    }

    #[test]
    fn controllability_basics() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = XOR(a, b)\n";
        let c = parse(src, "t").unwrap();
        let m = cop_measures(&c);
        let y = c.outputs()[0];
        let z = c.outputs()[1];
        assert!((m.controllability[y.index()] - 0.25).abs() < 1e-12);
        assert!((m.controllability[z.index()] - 0.5).abs() < 1e-12);
        assert!(
            (m.observability[c.inputs()[0].index()] - 1.0).abs() < 1e-12,
            "xor makes every input fully observable"
        );
    }

    /// On reconvergent circuits COP is approximate but must stay in [0, 1]
    /// and correlate with exact probabilities (same ranking direction for
    /// clearly-easy vs clearly-hard faults).
    #[test]
    fn sane_on_reconvergence() {
        let src = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
        let c = parse(src, "c17").unwrap();
        let m = cop_measures(&c);
        for fault in fault_list(&c) {
            let p = m.detection_probability(&c, fault);
            assert!((0.0..=1.0).contains(&p), "{fault}: {p}");
            let exact = exact_detection_probability(&c, fault);
            // c17 is fully testable: both agree nothing is untestable, and
            // the estimate is within a loose band of the exact value.
            assert!(exact > 0.0);
            assert!(p > 0.0, "{fault} estimated impossible");
            assert!((p - exact).abs() < 0.5, "{fault}: COP {p} vs exact {exact}");
        }
    }

    /// A redundant fault gets low estimated detection probability... COP
    /// cannot prove 0, but the exact probability IS 0.
    #[test]
    fn redundant_fault_has_zero_exact_probability() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        let t = c.iter().find(|(_, n)| n.name() == Some("t")).map(|(id, _)| id).unwrap();
        let exact = exact_detection_probability(&c, Fault::stem(t, false));
        assert_eq!(exact, 0.0);
    }
}
