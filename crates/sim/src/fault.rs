//! The single stuck-at fault model: fault sites, fault lists and
//! equivalence collapsing.

use sft_netlist::{Circuit, GateKind, NodeId};
use std::fmt;

/// Where a stuck-at fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// On the output (stem) of a node — a gate output or a primary input.
    Stem(NodeId),
    /// On fanout branch feeding pin `pin` of gate `gate`.
    Branch {
        /// The consuming gate.
        gate: NodeId,
        /// The fanin position within the consuming gate.
        pin: u8,
    },
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Stem(n) => write!(f, "{n}"),
            FaultSite::Branch { gate, pin } => write!(f, "{gate}.{pin}"),
        }
    }
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The fault location.
    pub site: FaultSite,
    /// The stuck value (`false` = s-a-0, `true` = s-a-1).
    pub stuck: bool,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s-a-{}", self.site, u8::from(self.stuck))
    }
}

impl Fault {
    /// Convenience constructor for a stem fault.
    pub fn stem(node: NodeId, stuck: bool) -> Self {
        Fault { site: FaultSite::Stem(node), stuck }
    }

    /// Convenience constructor for a branch fault.
    pub fn branch(gate: NodeId, pin: u8, stuck: bool) -> Self {
        Fault { site: FaultSite::Branch { gate, pin }, stuck }
    }
}

/// The full (uncollapsed) stuck-at fault list of the live portion of a
/// circuit: both polarities on every stem (gate outputs and primary inputs),
/// plus both polarities on every fanout branch whose stem drives more than
/// one consumer. Constants get no stem faults.
///
/// This is the classical "all lines" fault universe: branches of a
/// single-fanout stem are equivalent to the stem itself and are therefore
/// not listed separately.
pub fn fault_list(circuit: &Circuit) -> Vec<Fault> {
    let live = circuit.live_mask();
    let fanout = circuit.fanout_counts();
    let mut faults = Vec::new();
    for (id, node) in circuit.iter() {
        if !live[id.index()] {
            continue;
        }
        if !matches!(node.kind(), GateKind::Const0 | GateKind::Const1) {
            faults.push(Fault::stem(id, false));
            faults.push(Fault::stem(id, true));
        }
        for (pin, &f) in node.fanins().iter().enumerate() {
            if fanout[f.index()] > 1 {
                faults.push(Fault::branch(id, pin as u8, false));
                faults.push(Fault::branch(id, pin as u8, true));
            }
        }
    }
    faults
}

/// Equivalence-collapses a fault list.
///
/// Classical structural rules are applied bottom-up:
/// - for a buffer/inverter with a single-fanout input, the input faults are
///   equivalent to (suitably inverted) output faults — the input faults are
///   dropped;
/// - for an AND/NAND (OR/NOR) gate, each input stuck at the controlling
///   value is equivalent to the output stuck at the corresponding value —
///   one representative is kept (the output fault).
///
/// Branch faults on fanout stems are never collapsed (they are genuinely
/// distinct faults). The returned list is a subset of the input list.
pub fn collapse(circuit: &Circuit, faults: &[Fault]) -> Vec<Fault> {
    use std::collections::HashSet;
    let fanout = circuit.fanout_counts();
    let mut drop: HashSet<Fault> = HashSet::new();
    for (_id, node) in circuit.iter() {
        let kind = node.kind();
        if !kind.is_gate() {
            continue;
        }
        match kind {
            GateKind::Buf | GateKind::Not => {
                let fin = node.fanins()[0];
                if fanout[fin.index()] == 1 {
                    // Input faults equivalent to output faults.
                    drop.insert(Fault::stem(fin, false));
                    drop.insert(Fault::stem(fin, true));
                }
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let c = kind.controlling_value().expect("and/or family");
                for &fin in node.fanins() {
                    if fanout[fin.index()] == 1 {
                        // Input s-a-controlling ≡ output s-a-(c ^ inverts).
                        drop.insert(Fault::stem(fin, c));
                    }
                }
            }
            _ => {}
        }
    }
    faults.iter().filter(|f| !drop.contains(f)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    #[test]
    fn fault_list_counts() {
        // y = AND(a, b): stems a, b, y -> 6 faults; no fanout branches.
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let faults = fault_list(&c);
        assert_eq!(faults.len(), 6);
    }

    #[test]
    fn branch_faults_only_on_fanout_stems() {
        // a drives two gates: 2 branch sites -> 4 branch faults.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt1 = AND(a, b)\nt2 = OR(a, b)\ny = XOR(t1, t2)\n";
        let c = parse(src, "t").unwrap();
        let faults = fault_list(&c);
        let branches = faults.iter().filter(|f| matches!(f.site, FaultSite::Branch { .. })).count();
        // a and b both fan out to 2 consumers: 4 branch sites, 8 faults.
        assert_eq!(branches, 8);
        // Stems: a, b, t1, t2, y -> 10 stem faults.
        assert_eq!(faults.len() - branches, 10);
    }

    #[test]
    fn dead_logic_excluded() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)\n";
        let c = parse(src, "t").unwrap();
        let faults = fault_list(&c);
        // a (fans out to dead too but dead is not live; fanout_counts counts
        // it, which is fine for branch sites only when >1 consumers of live
        // gates... here: y pin gets branch faults because a has 2 consumers.
        // Stems: a, y = 4 faults; branch on y.0 = 2 faults.
        assert_eq!(faults.len(), 6);
        assert!(faults.iter().all(|f| match f.site {
            FaultSite::Stem(n) => c.node(n).name() != Some("dead"),
            FaultSite::Branch { gate, .. } => c.node(gate).name() != Some("dead"),
        }));
    }

    #[test]
    fn collapse_drops_controlling_input_faults() {
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let full = fault_list(&c);
        let collapsed = collapse(&c, &full);
        // a s-a-0 and b s-a-0 collapse into y s-a-0: 6 - 2 = 4 faults.
        assert_eq!(collapsed.len(), 4);
        assert!(collapsed.iter().all(|f| f.stuck
            || !matches!(f.site, FaultSite::Stem(n)
                if c.node(n).kind() == GateKind::Input)));
    }

    #[test]
    fn collapse_keeps_fanout_stem_faults() {
        let src = "INPUT(a)\nOUTPUT(y)\nt1 = NOT(a)\nt2 = BUF(a)\ny = AND(t1, t2)\n";
        let c = parse(src, "t").unwrap();
        let full = fault_list(&c);
        let collapsed = collapse(&c, &full);
        // a fans out: its stem faults must survive buffer/inverter collapse.
        assert!(collapsed.iter().any(|f| f.site == FaultSite::Stem(c.inputs()[0])));
        assert!(collapsed.len() < full.len());
    }

    #[test]
    fn display_formats() {
        let f = Fault::stem(NodeId::from_index(3), true);
        assert_eq!(f.to_string(), "n3 s-a-1");
        let g = Fault::branch(NodeId::from_index(4), 1, false);
        assert_eq!(g.to_string(), "n4.1 s-a-0");
    }
}
