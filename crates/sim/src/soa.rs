//! Struct-of-arrays circuit buffers for campaign-scale simulation.
//!
//! [`Circuit`](sft_netlist::Circuit) stores one heap `Vec` of fanins (and an
//! optional name) per node — the right shape for editing, the wrong shape for
//! sweeping 100K–1M gates millions of times. [`SoaCircuit`] is a read-only
//! snapshot built once per fault-simulation campaign: compact `repr(u8)` gate
//! kinds, flat `u32` fanin/fanout slabs with offset tables, the topological
//! order, and fanout-free-region (FFR) links used for stem-grouped fault
//! dropping. The journal/views contract of the mutable netlist is untouched —
//! this is a derived view, rebuilt from the `Circuit` whenever a campaign
//! starts.

use crate::word::SimWord;
use sft_netlist::{dominators, Circuit, GateKind};

/// Sentinel for "no node" in the flat `u32` tables.
pub(crate) const NONE: u32 = u32::MAX;

/// A gate kind packed into one byte for cache-dense kind arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PackedKind {
    /// A primary input.
    Input = 0,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// A non-inverting buffer.
    Buf,
    /// An inverter.
    Not,
    /// Logical AND of all fanins.
    And,
    /// Logical OR of all fanins.
    Or,
    /// Complemented AND.
    Nand,
    /// Complemented OR.
    Nor,
    /// Parity (XOR) of all fanins.
    Xor,
    /// Complemented parity.
    Xnor,
}

impl PackedKind {}

impl From<GateKind> for PackedKind {
    fn from(kind: GateKind) -> Self {
        match kind {
            GateKind::Input => PackedKind::Input,
            GateKind::Const0 => PackedKind::Const0,
            GateKind::Const1 => PackedKind::Const1,
            GateKind::Buf => PackedKind::Buf,
            GateKind::Not => PackedKind::Not,
            GateKind::And => PackedKind::And,
            GateKind::Or => PackedKind::Or,
            GateKind::Nand => PackedKind::Nand,
            GateKind::Nor => PackedKind::Nor,
            GateKind::Xor => PackedKind::Xor,
            GateKind::Xnor => PackedKind::Xnor,
        }
    }
}

/// Evaluates one gate over simulation words, fetching fanin values through
/// `val(pin, node)` so callers can substitute forced pins (branch-fault
/// injection) or flipped stems without materialising a fanin buffer.
///
/// # Panics
///
/// Panics if called on [`PackedKind::Input`] — the topological sweep handles
/// inputs before gate evaluation, mirroring `GateKind::eval_words`.
#[inline]
pub(crate) fn eval_gate<W: SimWord>(
    kind: PackedKind,
    fanins: &[u32],
    mut val: impl FnMut(usize, u32) -> W,
) -> W {
    match kind {
        PackedKind::Input => panic!("no gate function for a primary input"),
        PackedKind::Const0 => W::ZERO,
        PackedKind::Const1 => W::ONES,
        PackedKind::Buf => val(0, fanins[0]),
        PackedKind::Not => val(0, fanins[0]).not(),
        PackedKind::And | PackedKind::Nand => {
            let mut acc = W::ONES;
            for (pin, &f) in fanins.iter().enumerate() {
                acc = acc.and(val(pin, f));
            }
            if kind == PackedKind::Nand {
                acc.not()
            } else {
                acc
            }
        }
        PackedKind::Or | PackedKind::Nor => {
            let mut acc = W::ZERO;
            for (pin, &f) in fanins.iter().enumerate() {
                acc = acc.or(val(pin, f));
            }
            if kind == PackedKind::Nor {
                acc.not()
            } else {
                acc
            }
        }
        PackedKind::Xor | PackedKind::Xnor => {
            let mut acc = W::ZERO;
            for (pin, &f) in fanins.iter().enumerate() {
                acc = acc.xor(val(pin, f));
            }
            if kind == PackedKind::Xnor {
                acc.not()
            } else {
                acc
            }
        }
    }
}

/// Kahn's algorithm over the flat fanin CSR — no per-node heap vectors: a
/// counting pass materialises the raw fanout CSR, then zero-indegree nodes
/// peel off a stack. Used by [`SoaCircuit::new`] when a rewire has
/// invalidated identity order.
fn flat_topo_order(n: usize, fanin_off: &[u32], fanins: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut pin_refs = vec![0u32; n];
    for &f in fanins {
        pin_refs[f as usize] += 1;
    }
    let mut out_off = Vec::with_capacity(n + 1);
    out_off.push(0u32);
    for &c in &pin_refs {
        out_off.push(out_off.last().unwrap() + c);
    }
    let mut raw = vec![0u32; fanins.len()];
    let mut cursor: Vec<u32> = out_off[..n].to_vec();
    for g in 0..n {
        for &f in &fanins[fanin_off[g] as usize..fanin_off[g + 1] as usize] {
            raw[cursor[f as usize] as usize] = g as u32;
            cursor[f as usize] += 1;
        }
    }
    let mut indeg: Vec<u32> = (0..n).map(|i| fanin_off[i + 1] - fanin_off[i]).collect();
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    while let Some(i) = queue.pop() {
        order.push(i);
        for &o in &raw[out_off[i as usize] as usize..out_off[i as usize + 1] as usize] {
            indeg[o as usize] -= 1;
            if indeg[o as usize] == 0 {
                queue.push(o);
            }
        }
    }
    assert_eq!(order.len(), n, "combinational circuit");
    let mut topo_pos = vec![0u32; n];
    for (pos, &id) in order.iter().enumerate() {
        topo_pos[id as usize] = pos as u32;
    }
    (order, topo_pos)
}

/// A flat, read-only struct-of-arrays snapshot of a [`Circuit`], built once
/// per campaign and shared (behind an `Arc`) by every simulation worker.
///
/// Beyond the evaluation slabs it carries the fanout-free-region (FFR)
/// structure: `ffr_head[n]` is the unique consumer of `n` when `n` has
/// exactly one fanin reference in the whole circuit and drives no primary
/// output — i.e. when every fault effect at `n` must exit through that
/// consumer — and a `NONE` sentinel otherwise (making `n` an FFR *root*).
/// Stem-grouped
/// fault simulation walks faults up to their root and shares one cone
/// propagation per root instead of one per fault.
#[derive(Debug)]
pub struct SoaCircuit {
    /// One packed kind byte per node.
    pub(crate) kinds: Vec<PackedKind>,
    /// `fanins[fanin_off[n]..fanin_off[n + 1]]` are node `n`'s fanins.
    pub(crate) fanin_off: Vec<u32>,
    /// Flat fanin slab (node ids).
    pub(crate) fanins: Vec<u32>,
    /// Topological order over all nodes.
    pub(crate) order: Vec<u32>,
    /// Position of each node in `order`.
    pub(crate) topo_pos: Vec<u32>,
    /// Logic level of each node: 0 for sources, `1 + max(fanin levels)` for
    /// gates. Nodes at the same level never depend on each other, which is
    /// what lets the ctrace engine process events level by level instead of
    /// through a priority queue.
    pub(crate) level: Vec<u32>,
    /// `max(level) + 1` — the number of level buckets an event queue needs.
    pub(crate) num_levels: u32,
    /// Position of each primary input in the input vector ([`NONE`] if the
    /// node is not an input).
    pub(crate) input_pos: Vec<u32>,
    /// Number of primary inputs.
    pub(crate) num_inputs: usize,
    /// Whether each node drives a primary output slot.
    pub(crate) output_mask: Vec<bool>,
    /// `fanouts[fanout_off[n]..fanout_off[n + 1]]` are node `n`'s distinct
    /// consumer gates (deduplicated).
    pub(crate) fanout_off: Vec<u32>,
    /// Flat deduplicated fanout slab (node ids).
    pub(crate) fanouts: Vec<u32>,
    /// Unique consumer when the node is interior to a fanout-free region,
    /// else [`NONE`].
    pub(crate) ffr_head: Vec<u32>,
    /// The fanout-free-region root reached by following `ffr_head`.
    pub(crate) ffr_root: Vec<u32>,
    /// `ffr_members[ffr_off[r]..ffr_off[r + 1]]` are the nodes whose
    /// `ffr_root` is `r` (the root itself first, then interiors in
    /// decreasing topological position, so every node appears after its
    /// head). Non-root nodes own empty ranges.
    pub(crate) ffr_off: Vec<u32>,
    /// Whether the ctrace engine defers excitations of this node to its
    /// region's resolution (interior of a large-enough region).
    pub(crate) ffr_defer: Vec<bool>,
    /// Flat FFR membership slab (node ids).
    pub(crate) ffr_members: Vec<u32>,
    /// Immediate dominator of each node over the fanout graph
    /// ([`Circuit::immediate_dominators`]), or [`NONE`] when the node has
    /// no proper gate dominator — its paths diverge all the way to the
    /// outputs, or it reaches no output at all.
    pub(crate) idom: Vec<u32>,
}

impl SoaCircuit {
    /// Builds the snapshot from `circuit` via the arena fast path.
    ///
    /// The flat-arena `Circuit` already stores kinds as a dense column and
    /// fanins as `(offset, len)` spans over one pool, so on the canonical
    /// layout (fresh construction, or after `sweep`) the fanin CSR is a
    /// single pool copy and — when id order is topological, which
    /// append-only construction guarantees — the topological sort
    /// disappears entirely. Fragmented or rewired circuits fall back to a
    /// span-walk copy and a flat Kahn pass over the CSR; no path touches
    /// per-node heap vectors or the name table. Differentially tested
    /// against [`rebuild`](Self::rebuild).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        assert!(n < NONE as usize, "circuit too large for u32 node ids");
        let total_fanins = circuit.fanin_count();
        assert!(total_fanins < NONE as usize, "fanin slab too large for u32 offsets");

        let mut kinds = Vec::with_capacity(n);
        let mut fanin_off = Vec::with_capacity(n + 1);
        let mut fanins = Vec::with_capacity(total_fanins);
        fanin_off.push(0u32);
        if let Some(pool) = circuit.fanin_pool_flat() {
            // Canonical layout: the pool *is* the CSR payload.
            fanins.extend(pool.iter().map(|f| f.index() as u32));
            let mut off = 0u32;
            for i in 0..n {
                let id = sft_netlist::NodeId::from_index(i);
                kinds.push(PackedKind::from(circuit.kind(id)));
                off += circuit.fanins(id).len() as u32;
                fanin_off.push(off);
            }
        } else {
            for i in 0..n {
                let id = sft_netlist::NodeId::from_index(i);
                kinds.push(PackedKind::from(circuit.kind(id)));
                fanins.extend(circuit.fanins(id).iter().map(|f| f.index() as u32));
                fanin_off.push(fanins.len() as u32);
            }
        }

        let (order, topo_pos) = if circuit.ids_topological() {
            // Append-only construction keeps every fanin id below its node
            // id, so id order is already topological.
            let identity: Vec<u32> = (0..n as u32).collect();
            (identity.clone(), identity)
        } else {
            flat_topo_order(n, &fanin_off, &fanins)
        };

        Self::finish(circuit, kinds, fanin_off, fanins, order, topo_pos)
    }

    /// Builds the snapshot from `circuit` through the pre-arena algorithm:
    /// a per-node walk through [`Circuit::iter`] and a from-scratch
    /// [`Circuit::topo_order`] (which allocates per-node fanout vectors).
    ///
    /// Kept as the differential-testing oracle for [`new`](Self::new) and
    /// as the campaign-entry baseline the arena speedup is measured
    /// against; engines never call it.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn rebuild(circuit: &Circuit) -> Self {
        let n = circuit.len();
        assert!(n < NONE as usize, "circuit too large for u32 node ids");

        let mut kinds = Vec::with_capacity(n);
        let mut fanin_off = Vec::with_capacity(n + 1);
        let total_fanins: usize = circuit.iter().map(|(_, node)| node.fanins().len()).sum();
        assert!(total_fanins < NONE as usize, "fanin slab too large for u32 offsets");
        let mut fanins = Vec::with_capacity(total_fanins);
        fanin_off.push(0);
        for (_, node) in circuit.iter() {
            kinds.push(PackedKind::from(node.kind()));
            fanins.extend(node.fanins().iter().map(|f| f.index() as u32));
            fanin_off.push(fanins.len() as u32);
        }

        let topo = circuit.topo_order().expect("combinational circuit");
        let mut order = Vec::with_capacity(n);
        let mut topo_pos = vec![0u32; n];
        for (pos, &id) in topo.iter().enumerate() {
            order.push(id.index() as u32);
            topo_pos[id.index()] = pos as u32;
        }

        Self::finish(circuit, kinds, fanin_off, fanins, order, topo_pos)
    }

    /// Shared tail of [`new`](Self::new) and [`rebuild`](Self::rebuild):
    /// levels, fanout CSR, FFR structure and dominators from the fanin CSR
    /// plus a valid topological order. Every derived quantity here is
    /// independent of *which* valid topological order was supplied.
    fn finish(
        circuit: &Circuit,
        kinds: Vec<PackedKind>,
        fanin_off: Vec<u32>,
        fanins: Vec<u32>,
        order: Vec<u32>,
        topo_pos: Vec<u32>,
    ) -> Self {
        let n = kinds.len();
        let total_fanins = fanins.len();
        let mut level = vec![0u32; n];
        for &id in &order {
            let i = id as usize;
            let (a, b) = (fanin_off[i] as usize, fanin_off[i + 1] as usize);
            for &f in &fanins[a..b] {
                level[i] = level[i].max(level[f as usize] + 1);
            }
        }
        let num_levels = level.iter().max().map_or(1, |&m| m + 1);

        let mut input_pos = vec![NONE; n];
        for (i, &id) in circuit.inputs().iter().enumerate() {
            input_pos[id.index()] = i as u32;
        }

        let mut output_mask = vec![false; n];
        let mut po_refs = vec![0u32; n];
        for &o in circuit.outputs() {
            output_mask[o.index()] = true;
            po_refs[o.index()] += 1;
        }

        // Deduplicated consumer lists, flat: count -> prefix-sum -> fill ->
        // dedup in place. Consumers are filled in increasing gate id, so the
        // per-driver slices are sorted and duplicates are adjacent.
        let mut pin_refs = vec![0u32; n];
        for &f in &fanins {
            pin_refs[f as usize] += 1;
        }
        let mut fanout_off = Vec::with_capacity(n + 1);
        fanout_off.push(0u32);
        for &c in &pin_refs {
            fanout_off.push(fanout_off.last().unwrap() + c);
        }
        let mut raw = vec![0u32; total_fanins];
        let mut cursor: Vec<u32> = fanout_off[..n].to_vec();
        for g in 0..n {
            let (a, b) = (fanin_off[g] as usize, fanin_off[g + 1] as usize);
            for &f in &fanins[a..b] {
                raw[cursor[f as usize] as usize] = g as u32;
                cursor[f as usize] += 1;
            }
        }
        let mut fanouts = Vec::with_capacity(total_fanins);
        let mut dedup_off = Vec::with_capacity(n + 1);
        dedup_off.push(0u32);
        for i in 0..n {
            let (a, b) = (fanout_off[i] as usize, fanout_off[i + 1] as usize);
            let mut last = NONE;
            for &g in &raw[a..b] {
                if g != last {
                    fanouts.push(g);
                    last = g;
                }
            }
            dedup_off.push(fanouts.len() as u32);
        }
        let fanout_off = dedup_off;

        // FFR links: a node is interior to a fanout-free region exactly when
        // it has one fanin reference in the whole circuit and no PO slot —
        // then every fault effect at it must exit through that one consumer
        // pin. Roots resolve in reverse topological order (the head is
        // always topologically later).
        let mut ffr_head = vec![NONE; n];
        for i in 0..n {
            if pin_refs[i] == 1 && po_refs[i] == 0 {
                ffr_head[i] = fanouts[fanout_off[i] as usize];
            }
        }
        let mut ffr_root = vec![NONE; n];
        for &id in order.iter().rev() {
            let i = id as usize;
            let h = ffr_head[i];
            ffr_root[i] = if h == NONE { id } else { ffr_root[h as usize] };
        }

        // FFR membership lists, grouped by root. Filling in reverse
        // topological order puts the root first and every interior node
        // after its head — exactly the order a backward sensitization
        // sweep needs.
        let mut ffr_count = vec![0u32; n];
        for i in 0..n {
            ffr_count[ffr_root[i] as usize] += 1;
        }
        let mut ffr_off = Vec::with_capacity(n + 1);
        ffr_off.push(0u32);
        for &c in &ffr_count {
            ffr_off.push(ffr_off.last().unwrap() + c);
        }
        let mut member_cursor: Vec<u32> = ffr_off[..n].to_vec();
        let mut ffr_members = vec![0u32; n];
        for &id in order.iter().rev() {
            let r = ffr_root[id as usize] as usize;
            ffr_members[member_cursor[r] as usize] = id;
            member_cursor[r] += 1;
        }

        // Deferral eligibility: the ctrace engine hands deviations entering
        // a fanout-free region to a per-region resolution instead of
        // walking the chain gate by gate — a win only when the region is
        // deep enough to amortise the resolution bookkeeping. Small
        // regions evaluate inline like any other node.
        let ffr_defer: Vec<bool> = (0..n)
            .map(|i| {
                if ffr_head[i] == NONE {
                    return false;
                }
                let r = ffr_root[i] as usize;
                ffr_off[r + 1] - ffr_off[r] >= crate::ctrace::DEFER_MIN_REGION
            })
            .collect();

        // Immediate dominators over the fanout graph: the funnel point of
        // every node's fault effects, used by the critical-path-tracing
        // engine to gate stem observability regionally. One reverse
        // topological Cooper-Harvey-Kennedy pass over the deduplicated
        // fanout slab already in hand — re-deriving the graph through
        // `Circuit::immediate_dominators` would cost a second topological
        // sort plus a per-node fanout allocation, a measurable slice of
        // campaign setup on 100K-gate circuits.
        let mut idom = vec![dominators::UNREACHABLE; n];
        let mut key = |x: u32| (topo_pos[x as usize], 0);
        for &id in order.iter().rev() {
            let i = id as usize;
            let (a, b) = (fanout_off[i] as usize, fanout_off[i + 1] as usize);
            let d = dominators::recompute_idom(
                fanouts[a..b].iter().copied(),
                po_refs[i] > 0,
                &idom,
                &mut key,
            );
            idom[i] = d;
        }
        // Both sentinels (virtual sink, unreachable) mean "no proper gate
        // dominator" to the engine.
        for d in &mut idom {
            if *d == dominators::SINK || *d == dominators::UNREACHABLE {
                *d = NONE;
            }
        }

        SoaCircuit {
            kinds,
            fanin_off,
            fanins,
            order,
            topo_pos,
            level,
            num_levels,
            input_pos,
            num_inputs: circuit.inputs().len(),
            output_mask,
            fanout_off,
            fanouts,
            ffr_head,
            ffr_root,
            ffr_off,
            ffr_members,
            ffr_defer,
            idom,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the snapshot has no nodes.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The fanout-free-region root that absorbs fault effects at `node`
    /// (the node itself when it is a root). The number of *distinct* roots
    /// bounds how many cone propagations a pattern block can cost.
    pub fn ffr_root(&self, node: usize) -> usize {
        self.ffr_root[node] as usize
    }

    /// Whether `node` is interior to a fanout-free region — its detection
    /// is resolved by the critical-path-tracing backward sweep instead of
    /// its own forward propagation.
    pub fn ffr_interior(&self, node: usize) -> bool {
        self.ffr_head[node] != NONE
    }

    /// The immediate dominator of `node` over the fanout graph, if a
    /// proper gate dominator exists (see
    /// [`Circuit::immediate_dominators`]).
    pub fn idom(&self, node: usize) -> Option<usize> {
        match self.idom[node] {
            NONE => None,
            d => Some(d as usize),
        }
    }

    /// Node `n`'s fanins as a flat slice.
    #[inline]
    pub(crate) fn fanin_slice(&self, n: usize) -> &[u32] {
        &self.fanins[self.fanin_off[n] as usize..self.fanin_off[n + 1] as usize]
    }

    /// Node `n`'s deduplicated consumer gates.
    #[inline]
    pub(crate) fn fanout_slice(&self, n: usize) -> &[u32] {
        &self.fanouts[self.fanout_off[n] as usize..self.fanout_off[n + 1] as usize]
    }

    /// Simulates `64 * W::LANES` patterns in one topological sweep;
    /// `input_words[i]` carries the values of primary input `i`. Fills
    /// `values` with one word per node.
    ///
    /// Bit-for-bit this matches [`Simulator::eval`](crate::Simulator::eval)
    /// lane by lane: lane `l` of every word is exactly the 64-bit sweep of
    /// lane `l` of the inputs.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn eval_into<W: SimWord>(&self, input_words: &[W], values: &mut Vec<W>) {
        assert_eq!(input_words.len(), self.num_inputs, "input word count mismatch");
        values.clear();
        values.resize(self.len(), W::ZERO);
        for &id in &self.order {
            let i = id as usize;
            let kind = self.kinds[i];
            let v = if kind == PackedKind::Input {
                input_words[self.input_pos[i] as usize]
            } else {
                eval_gate(kind, self.fanin_slice(i), |_, f| values[f as usize])
            };
            values[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{W256, W512};
    use crate::Simulator;
    use sft_circuits::random::{random_circuit, RandomCircuitConfig};
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn eval_matches_simulator_on_random_circuit() {
        let c = random_circuit(&RandomCircuitConfig {
            gates: 300,
            seed: 7,
            ..RandomCircuitConfig::default()
        });
        let soa = SoaCircuit::new(&c);
        let sim = Simulator::new(&c);
        let words: Vec<u64> = (0..c.inputs().len())
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
            .collect();
        let reference = sim.eval(&words);
        let mut values = Vec::new();
        soa.eval_into(&words, &mut values);
        assert_eq!(values, reference);

        // Wide evaluation: each lane carries an independent 64-pattern block
        // and must match a scalar sweep of that lane exactly.
        let lanes: Vec<Vec<u64>> = (0..W256::LANES)
            .map(|l| words.iter().map(|&w| w.rotate_left(l as u32 * 11)).collect())
            .collect();
        let wide_inputs: Vec<W256> =
            (0..words.len()).map(|i| W256::from_lanes(|l| lanes[l][i])).collect();
        let mut wide = Vec::new();
        soa.eval_into(&wide_inputs, &mut wide);
        for (l, lane_words) in lanes.iter().enumerate() {
            let scalar = sim.eval(lane_words);
            for (i, &w) in wide.iter().enumerate() {
                assert_eq!(w.lane(l), scalar[i], "node {i} lane {l}");
            }
        }
    }

    #[test]
    fn wide_widths_agree_lane_for_lane() {
        let c = parse(C17, "c17").unwrap();
        let soa = SoaCircuit::new(&c);
        let base: Vec<u64> = (0..5).map(|i| 0xA5A5_5A5A_F00D_BEEFu64 >> i).collect();
        let w256: Vec<W256> = base.iter().map(|&w| W256::from_lanes(|l| w ^ l as u64)).collect();
        let w512: Vec<W512> = base.iter().map(|&w| W512::from_lanes(|l| w ^ l as u64)).collect();
        let (mut v256, mut v512) = (Vec::new(), Vec::new());
        soa.eval_into(&w256, &mut v256);
        soa.eval_into(&w512, &mut v512);
        for i in 0..soa.len() {
            for l in 0..W256::LANES {
                assert_eq!(v256[i].lane(l), v512[i].lane(l), "node {i} lane {l}");
            }
        }
    }

    #[test]
    fn ffr_links_are_single_exit_chains() {
        let c = random_circuit(&RandomCircuitConfig {
            gates: 200,
            seed: 42,
            ..RandomCircuitConfig::default()
        });
        let soa = SoaCircuit::new(&c);
        let counts = c.fanout_counts();
        for (id, _) in c.iter() {
            let i = id.index();
            let head = soa.ffr_head[i];
            if head != NONE {
                // Interior node: exactly one reference overall and not a PO.
                assert_eq!(counts[i], 1, "node {i}");
                assert!(!soa.output_mask[i], "node {i}");
                assert_eq!(soa.fanout_slice(i), &[head], "node {i}");
                // The chain terminates at the shared root.
                assert_eq!(soa.ffr_root[i], soa.ffr_root[head as usize], "node {i}");
            } else {
                assert_eq!(soa.ffr_root[i], i as u32, "root must be itself");
            }
        }
    }

    /// Semantic equivalence of two snapshots: every order-independent field
    /// is bit-identical, and each snapshot's `order` is a valid topological
    /// order with `topo_pos` as its inverse and FFR membership correctly
    /// grouped (root first, every member after its head). The fast arena
    /// path may pick a different — equally valid — topological order than
    /// the legacy rebuild, which changes no engine result.
    fn assert_soa_equiv(a: &SoaCircuit, b: &SoaCircuit) {
        assert_eq!(a.kinds, b.kinds);
        assert_eq!(a.fanin_off, b.fanin_off);
        assert_eq!(a.fanins, b.fanins);
        assert_eq!(a.level, b.level);
        assert_eq!(a.num_levels, b.num_levels);
        assert_eq!(a.input_pos, b.input_pos);
        assert_eq!(a.num_inputs, b.num_inputs);
        assert_eq!(a.output_mask, b.output_mask);
        assert_eq!(a.fanout_off, b.fanout_off);
        assert_eq!(a.fanouts, b.fanouts);
        assert_eq!(a.ffr_head, b.ffr_head);
        assert_eq!(a.ffr_root, b.ffr_root);
        assert_eq!(a.ffr_off, b.ffr_off);
        assert_eq!(a.ffr_defer, b.ffr_defer);
        assert_eq!(a.idom, b.idom);
        for s in [a, b] {
            let n = s.len();
            assert_eq!(s.order.len(), n);
            for (pos, &id) in s.order.iter().enumerate() {
                assert_eq!(s.topo_pos[id as usize], pos as u32, "topo_pos inverse");
            }
            for i in 0..n {
                for &f in s.fanin_slice(i) {
                    assert!(s.topo_pos[f as usize] < s.topo_pos[i], "order is topological");
                }
            }
            let mut pos_in_region = vec![usize::MAX; n];
            for r in 0..n {
                let (lo, hi) = (s.ffr_off[r] as usize, s.ffr_off[r + 1] as usize);
                if lo == hi {
                    continue;
                }
                assert_eq!(s.ffr_members[lo] as usize, r, "root leads its region");
                for (k, &m) in s.ffr_members[lo..hi].iter().enumerate() {
                    assert_eq!(s.ffr_root[m as usize] as usize, r);
                    pos_in_region[m as usize] = k;
                }
                for &m in &s.ffr_members[lo + 1..hi] {
                    let h = s.ffr_head[m as usize] as usize;
                    assert!(pos_in_region[h] < pos_in_region[m as usize], "member after its head");
                }
            }
        }
    }

    #[test]
    fn fast_path_matches_legacy_rebuild_across_layouts() {
        use sft_netlist::GateKind;
        let mut c = random_circuit(&RandomCircuitConfig {
            gates: 400,
            seed: 11,
            ..RandomCircuitConfig::default()
        });
        // Post-normalize the pool is flat; ids need not be topological
        // (normalize's rewires can leave forward edges that survive sweep's
        // order-preserving renumber), so this may take either order path.
        assert!(c.fanin_spans_flat());
        assert_soa_equiv(&SoaCircuit::new(&c), &SoaCircuit::rebuild(&c));

        // Fragmented pool after committed rewires (fallback CSR walk).
        let gates: Vec<_> =
            c.iter().filter(|(_, n)| n.kind().is_gate()).map(|(id, _)| id).collect();
        let inputs = c.inputs().to_vec();
        for (k, &g) in gates.iter().enumerate().take(40) {
            c.rewire(
                g,
                GateKind::Nand,
                vec![inputs[k % inputs.len()], inputs[(k + 1) % inputs.len()]],
            )
            .unwrap();
        }
        assert!(!c.fanin_spans_flat());
        assert_soa_equiv(&SoaCircuit::new(&c), &SoaCircuit::rebuild(&c));

        // A forward edge (fanin id above node id) forces the Kahn fallback.
        let lo = gates[0];
        let hi = *gates.last().unwrap();
        assert!(lo < hi);
        if !c.reaches(lo, &[hi]) {
            c.rewire(lo, GateKind::Buf, vec![hi]).unwrap();
            assert!(!c.ids_topological());
            assert_soa_equiv(&SoaCircuit::new(&c), &SoaCircuit::rebuild(&c));
        }

        // Sweep restores the canonical layout and the fast path.
        c.sweep();
        assert!(c.fanin_spans_flat());
        assert_soa_equiv(&SoaCircuit::new(&c), &SoaCircuit::rebuild(&c));
    }

    #[test]
    fn identity_order_fast_path_matches_rebuild() {
        use sft_netlist::{Circuit, GateKind};
        // Append-only construction never creates forward edges, so the
        // conversion can reuse node ids as the topological order directly.
        let mut c = Circuit::new("ident");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Xor, vec![g1, a]).unwrap();
        let g3 = c.add_gate(GateKind::Nor, vec![g1, g2]).unwrap();
        c.add_output(g3, "y");
        assert!(c.fanin_spans_flat() && c.ids_topological());
        assert_soa_equiv(&SoaCircuit::new(&c), &SoaCircuit::rebuild(&c));
    }

    #[test]
    fn c17_structure() {
        let c = parse(C17, "c17").unwrap();
        let soa = SoaCircuit::new(&c);
        assert_eq!(soa.len(), c.len());
        assert_eq!(soa.num_inputs(), 5);
        // Node "10" feeds only gate "22": interior to 22's FFR.
        let find = |name: &str| {
            c.iter().find(|(_, n)| n.name() == Some(name)).map(|(id, _)| id.index()).unwrap()
        };
        let (n10, n11, n22) = (find("10"), find("11"), find("22"));
        assert_eq!(soa.ffr_head[n10], n22 as u32);
        assert_eq!(soa.ffr_root[n10], n22 as u32);
        // Node "11" fans out to 16 and 19: an FFR root.
        assert_eq!(soa.ffr_head[n11], NONE);
        assert_eq!(soa.ffr_root[n11], n11 as u32);
        // Outputs are their own roots.
        assert_eq!(soa.ffr_head[n22], NONE);
    }
}
