//! Critical-path tracing with dominator-shortcut stem observability.
//!
//! The wide engine ([`SimEngine::Wide`]) pays, per fault, a walk up the
//! fault's fanout-free region (FFR) and, per stem, a full event propagation
//! to the primary outputs. This module replaces both with structure-driven
//! derivations that stay **bit-exact**:
//!
//! 1. **Sensitization inside FFRs.** An FFR is a tree: every interior node
//!    feeds exactly one pin circuit-wide, so a single fault inside it
//!    deviates exactly the nodes on the unique path to the root, and each
//!    gate on that path sees the deviation on one pin while its other pins
//!    hold good values. The per-pattern mask on which a flip of node `n`
//!    flips the root therefore factors as `sens(n) = sens(head(n)) AND
//!    pin_sens(head(n), n)`, where `pin_sens` is the classic side-pin
//!    condition (all-1 side pins for AND/NAND, all-0 for OR/NOR, always for
//!    XOR/XNOR/BUF/NOT). One backward sweep from the root computes `sens`
//!    for the whole region, and every fault inside it resolves as
//!    `deviation-at-site AND sens(site)` — no per-fault walk.
//!
//! 2. **Dominator regions.** Every path from an FFR root `r` to any output
//!    passes through its immediate dominator `d = idom(r)` over the fanout
//!    graph (computed against a virtual sink all primary-output slots
//!    feed). Three consequences, each load-bearing:
//!    - no node deviated by a flip of `r` can drive a primary output before
//!      `d` (such a node would witness an `r -> output` path avoiding `d`);
//!    - the deviation cannot cross into the strict downstream of `d`
//!      except through `d` itself (an edge from a deviated node into a node
//!      past `d` would close a cycle through `d`);
//!    - every live node the propagation touches precedes `d` topologically,
//!      so in a topologically-ordered event queue `d` pops after the whole
//!      region has settled.
//!
//!    Hence propagation from `r` can *stop at `d`*, the deviation mask it
//!    delivers there is exact, and `obs(r) = deliver(r -> d, full flip)
//!    AND obs(d)` — chains of stems collapse into one cached propagation
//!    per dominator region instead of one full cone sweep per stem. A node
//!    with no proper dominator (`idom = None`) falls back to the wide
//!    engine's full propagation.
//!
//! Both derivations are pinned bit-identical to explicit per-fault
//! simulation by the crate's brute-force tests; coverage and detection
//! decisions cannot drift between engines, only time moves.

use crate::fsim::WideFaultSim;
use crate::soa::{PackedKind, SoaCircuit, NONE};
use crate::word::SimWord;
use crate::Fault;
use std::cmp::Reverse;
use std::sync::Arc;

/// Minimum fanout-free-region size (members, root included) before the
/// ctrace engine defers excitations of the region's interiors to a
/// per-region resolution. Below this, walking the one or two chain gates
/// inline is cheaper than the resolution bookkeeping; above it — XOR
/// checksum trees, wide parity cones — the deferral replaces a
/// gate-by-gate walk with one cached-sensitization AND per region.
pub(crate) const DEFER_MIN_REGION: u32 = 16;

/// Share threshold for the cached full-flip observability in the ctrace
/// engine (cf. `OBS_SHARE_MIN` for the wide engine). Deferral makes the
/// full-flip propagation cheaper for ctrace, so caching pays off for
/// smaller shares than in the wide engine.
pub(crate) const OBS_SHARE_MIN_CT: u32 = 2;

/// Detection algorithm used by [`WideFaultSim`] (and therefore campaigns
/// and test generation). Both engines produce bit-identical detection
/// masks on every circuit — the choice is purely a performance dial, with
/// `Ctrace` the default and `Wide` kept as an escape hatch (`--engine wide`
/// on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimEngine {
    /// Per-fault FFR walk plus full-flip/actual-deviation stem propagation
    /// (the PR 6 engine).
    Wide,
    /// Critical-path tracing inside FFRs plus dominator-shortcut stem
    /// observability.
    #[default]
    Ctrace,
}

impl SimEngine {
    /// Parses the CLI spelling (`wide` / `ctrace`).
    pub fn parse(s: &str) -> Option<SimEngine> {
        match s {
            "wide" => Some(SimEngine::Wide),
            "ctrace" => Some(SimEngine::Ctrace),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimEngine::Wide => "wide",
            SimEngine::Ctrace => "ctrace",
        })
    }
}

/// The side-pin sensitization condition of `head` with respect to its fanin
/// `node`: the per-pattern mask on which flipping `node` flips `head`'s
/// output, given every other pin holds its good value. `node` feeds `head`
/// on exactly one pin (it is FFR-interior), so skipping its first
/// occurrence is skipping its only occurrence.
#[inline]
fn pin_sens<W: SimWord>(soa: &SoaCircuit, good: &[W], head: usize, node: u32) -> W {
    match soa.kinds[head] {
        PackedKind::Buf | PackedKind::Not | PackedKind::Xor | PackedKind::Xnor => W::ONES,
        PackedKind::And | PackedKind::Nand => {
            let mut acc = W::ONES;
            let mut skipped = false;
            for &f in soa.fanin_slice(head) {
                if !skipped && f == node {
                    skipped = true;
                } else {
                    acc = acc.and(good[f as usize]);
                }
            }
            acc
        }
        PackedKind::Or | PackedKind::Nor => {
            let mut acc = W::ONES;
            let mut skipped = false;
            for &f in soa.fanin_slice(head) {
                if !skipped && f == node {
                    skipped = true;
                } else {
                    acc = acc.and(good[f as usize].not());
                }
            }
            acc
        }
        PackedKind::Input | PackedKind::Const0 | PackedKind::Const1 => {
            unreachable!("an FFR head consumes a pin, so it is a gate")
        }
    }
}

impl<W: SimWord> WideFaultSim<W> {
    /// The critical-path-tracing detection algorithm; see the module docs.
    pub(crate) fn detect_masks_ctrace(&mut self, faults: &[Fault], input_words: &[W]) -> Vec<W> {
        let tables = Arc::clone(self.tables());
        let soa = &tables.soa;
        self.begin_block(soa, faults, input_words);
        let mut results = Vec::with_capacity(faults.len());
        for fault in faults {
            let (site, dev_site) = self.site_deviation(soa, fault);
            let root = soa.ffr_root[site as usize];
            // Deviation delivered at the FFR root: one AND against the
            // cached sensitization instead of a gate-by-gate walk. A fault
            // sitting at the root needs no sensitization at all
            // (`sens(root) = ONES`), which spares regions whose alive
            // faults have all collapsed onto the root — common once easy
            // interior faults drop — their per-block sweep entirely.
            let dev_root = if site == root {
                dev_site
            } else if dev_site.is_zero() {
                W::ZERO
            } else {
                self.ensure_sens(soa, root);
                dev_site.and(self.sens[site as usize])
            };
            let detected =
                if dev_root.is_zero() { W::ZERO } else { self.observe(soa, root, dev_root) };
            results.push(detected);
        }
        self.end_block();
        results
    }

    /// Computes the sensitization masks of every node in `root`'s FFR for
    /// the current block, once per root per block. Members are stored root
    /// first, then interiors in decreasing topological position, so each
    /// node's head is already resolved when the node is reached.
    fn ensure_sens(&mut self, soa: &SoaCircuit, root: u32) {
        let r = root as usize;
        if self.sens_epoch[r] == self.epoch {
            return;
        }
        self.sens_epoch[r] = self.epoch;
        let (a, b) = (soa.ffr_off[r] as usize, soa.ffr_off[r + 1] as usize);
        for &m in &soa.ffr_members[a..b] {
            let i = m as usize;
            self.sens[i] = if m == root {
                W::ONES
            } else {
                let h = soa.ffr_head[i] as usize;
                let up = self.sens[h];
                if up.is_zero() {
                    W::ZERO
                } else {
                    up.and(pin_sens(soa, &self.good, h, m))
                }
            };
        }
    }

    /// Detection mask of a deviation `dev` sitting at FFR root `root`:
    /// climbs the dominator chain, delivering the deviation region by
    /// region, until it dies, meets a cached observability, or tops out
    /// into a full propagation. Once the deviation survives its own region
    /// the remaining chain is resolved as cached observability — dominator
    /// trunks are confluence points shared by every stem they dominate.
    fn observe(&mut self, soa: &SoaCircuit, root: u32, dev: W) -> W {
        let mut node = root;
        let mut dev = dev;
        loop {
            let i = node as usize;
            if self.obs_epoch[i] == self.epoch {
                return dev.and(self.obs[i]);
            }
            if node != root || self.root_share[i] >= OBS_SHARE_MIN_CT {
                return dev.and(self.chain_obs(soa, node));
            }
            let d = soa.idom[i];
            if d == NONE {
                return self.propagate_deviation_ct(soa, node, dev);
            }
            dev = self.propagate_to(soa, node, dev, d);
            if dev.is_zero() {
                return W::ZERO;
            }
            node = d;
        }
    }

    /// The full-flip observability of `node`, resolved through the
    /// dominator chain and cached at every level for the current block:
    /// `obs(x) = deliver(x -> idom(x), full flip) AND obs(idom(x))`, with
    /// a full event propagation at the chain top (no proper dominator).
    fn chain_obs(&mut self, soa: &SoaCircuit, node: u32) -> W {
        // Collect the uncached suffix of the chain, then resolve top-down.
        let mut chain = std::mem::take(&mut self.chain);
        chain.clear();
        let mut x = node;
        loop {
            chain.push(x);
            let d = soa.idom[x as usize];
            if d == NONE || self.obs_epoch[d as usize] == self.epoch {
                break;
            }
            x = d;
        }
        for &y in chain.iter().rev() {
            let i = y as usize;
            let o = match soa.idom[i] {
                NONE => self.propagate_deviation_ct(soa, y, W::ONES),
                d => {
                    let upper = self.obs[d as usize];
                    if upper.is_zero() {
                        W::ZERO
                    } else {
                        self.propagate_to(soa, y, W::ONES, d).and(upper)
                    }
                }
            };
            self.obs[i] = o;
            self.obs_epoch[i] = self.epoch;
        }
        self.chain = chain;
        self.obs[node as usize]
    }

    /// Event-propagates a deviation of `dev` at `seed` through its fanout
    /// cone, like [`WideFaultSim::propagate_deviation`], but with **FFR
    /// entry deferral**: an excitation of a node interior to a fanout-free
    /// region is recorded as a *touch* instead of being evaluated, and the
    /// whole region resolves as one unit the moment every event
    /// topologically at or before its root has been processed (the touch
    /// resolutions are merged into the event order by root position, so
    /// downstream logic still settles strictly in topological order):
    ///
    /// - **single touch** `n`: no other deviation reaches the region — a
    ///   deviated pin of any member would have excited that member as a
    ///   second touch — so every side pin along `n`'s chain holds its good
    ///   value and the deviation delivered at the root is exactly
    ///   `dev(n) AND sens(n)`: the cached sensitization mask replaces the
    ///   chain walk;
    /// - **multiple touches**: deviations interfere inside the tree
    ///   (reconvergence through the region's side inputs, or the root
    ///   excited directly through an outside fanin while interior touches
    ///   were deferred), so the region's members are re-evaluated
    ///   explicitly in topological order — all outside fanins have settled
    ///   by resolution time.
    ///
    /// Either way a surviving deviation at the root re-enters normal event
    /// propagation.
    fn propagate_deviation_ct(&mut self, soa: &SoaCircuit, seed: u32, dev: W) -> W {
        let s = seed as usize;
        let mut detected = W::ZERO;
        self.faulty[s] = self.good[s].xor(dev);
        self.deviated[s] = true;
        self.dirty.push(seed);
        if soa.output_mask[s] {
            detected = dev;
        }
        self.push_excited(soa, s);
        // Level sweep: nodes at one level never depend on each other, and
        // an excited consumer always sits strictly deeper than its exciter,
        // so draining levels in ascending order settles the cone in
        // dependency order without a priority queue. Within a level the
        // excitation bucket drains before the resolve bucket: a region root
        // excited through an outside fanin folds into the resolution as a
        // self-touch before the region resolves.
        while let Some(Reverse(l)) = self.lheap.pop() {
            let lu = l as usize;
            self.ldirty[lu] = false;
            let mut bucket = std::mem::take(&mut self.buckets[lu]);
            for &id in &bucket {
                let i = id as usize;
                self.queued[i] = false;
                debug_assert!(
                    !soa.ffr_defer[i],
                    "deferred-region interiors are recorded as touches, never queued"
                );
                if self.ffr_pending[i] {
                    // A pending region's root excited through an outside
                    // fanin while its interior touches are still deferred:
                    // fold the excitation into the resolution as a
                    // self-touch (the resolve bucket of this level drains
                    // right after this one).
                    self.entries.push((id, id));
                    continue;
                }
                let v = eval_gate(soa, i, &self.faulty);
                if v == self.good[i] {
                    continue;
                }
                self.faulty[i] = v;
                self.deviated[i] = true;
                self.dirty.push(id);
                if soa.output_mask[i] {
                    detected = detected.or(v.xor(self.good[i]));
                }
                self.push_excited(soa, i);
            }
            bucket.clear();
            debug_assert!(self.buckets[lu].is_empty(), "no same-level excitations");
            self.buckets[lu] = bucket;
            let mut rbucket = std::mem::take(&mut self.rbuckets[lu]);
            for &r in &rbucket {
                // Every event at or before the region's root has been
                // processed: all touches are recorded, outside fanins have
                // settled.
                self.ffr_pending[r as usize] = false;
                detected = detected.or(self.resolve_region(soa, r, seed));
            }
            rbucket.clear();
            debug_assert!(self.rbuckets[lu].is_empty(), "no same-level resolves");
            self.rbuckets[lu] = rbucket;
        }
        for &(_, en) in &self.entries {
            self.entered[en as usize] = false;
        }
        self.entries.clear();
        for id in self.dirty.drain(..) {
            let i = id as usize;
            self.deviated[i] = false;
            self.faulty[i] = self.good[i];
        }
        detected
    }

    /// Resolves one deferred fanout-free region (see
    /// [`propagate_deviation_ct`](Self::propagate_deviation_ct)): computes
    /// the deviation delivered at root `r`, marks the root and pushes its
    /// fanouts if it survives, and returns the root's output contribution.
    /// Every fanin outside the region has settled when this runs, so both
    /// resolution paths read exact values.
    fn resolve_region(&mut self, soa: &SoaCircuit, r: u32, seed: u32) -> W {
        let ri = r as usize;
        let mut single = NONE;
        let mut count = 0u32;
        for &(er, en) in &self.entries {
            if er == r {
                single = en;
                count += 1;
            }
        }
        debug_assert!(count > 0, "a pending region has at least one entry");
        let delivered = if count == 1 {
            self.ensure_sens(soa, r);
            let n = single as usize;
            let v = eval_gate(soa, n, &self.faulty);
            v.xor(self.good[n]).and(self.sens[n])
        } else {
            // Interfering touches: replay the union of paths from the
            // touches to the root in topological order. The region is a
            // tree, so paths only merge on the way up, and members off
            // those paths keep their good values — no need to visit them.
            // The propagation seed's deviation is an injected boundary
            // condition, not a consequence of its fanins, so it is never
            // re-evaluated.
            let mut rheap = std::mem::take(&mut self.rheap);
            for &(er, en) in &self.entries {
                if er == r && en != r {
                    rheap.push(Reverse((soa.topo_pos[en as usize], en)));
                }
            }
            while let Some(Reverse((_, m))) = rheap.pop() {
                let i = m as usize;
                let h = soa.ffr_head[i];
                if m == seed {
                    // Already deviated by construction; keep it flowing.
                    if h != r {
                        rheap.push(Reverse((soa.topo_pos[h as usize], h)));
                    }
                    continue;
                }
                let v = eval_gate(soa, i, &self.faulty);
                if v == self.good[i] {
                    // Write the reverted value back: readers take `faulty`
                    // as the current value unconditionally.
                    self.faulty[i] = v;
                    self.deviated[i] = false;
                    continue;
                }
                if !self.deviated[i] {
                    self.deviated[i] = true;
                    self.dirty.push(m);
                }
                self.faulty[i] = v;
                if h != r {
                    rheap.push(Reverse((soa.topo_pos[h as usize], h)));
                }
            }
            self.rheap = rheap;
            let v = eval_gate(soa, ri, &self.faulty);
            v.xor(self.good[ri])
        };
        if delivered.is_zero() {
            return W::ZERO;
        }
        self.faulty[ri] = self.good[ri].xor(delivered);
        self.deviated[ri] = true;
        self.dirty.push(r);
        self.push_excited(soa, ri);
        if soa.output_mask[ri] {
            delivered
        } else {
            W::ZERO
        }
    }

    /// Hands every consumer of newly-deviated node `i` to the event loop:
    /// interiors of large fanout-free regions are recorded as region
    /// touches on the spot (their evaluation is deferred to the region
    /// resolution, so there is nothing to order — skipping the queue saves
    /// the round-trip), all others are queued by topological position.
    #[inline]
    fn push_excited(&mut self, soa: &SoaCircuit, i: usize) {
        for &g in soa.fanout_slice(i) {
            let gi = g as usize;
            if soa.ffr_defer[gi] {
                if !self.entered[gi] {
                    self.entered[gi] = true;
                    self.record_touch(soa, soa.ffr_root[gi], g);
                }
            } else {
                self.queue_plain(soa, g);
            }
        }
    }

    /// Records a touch of node `n` in the region rooted at `r` and queues
    /// the region's resolve event if it is not already pending.
    #[inline]
    fn record_touch(&mut self, soa: &SoaCircuit, r: u32, n: u32) {
        self.entries.push((r, n));
        if !self.ffr_pending[r as usize] {
            self.ffr_pending[r as usize] = true;
            self.push_level(soa.level[r as usize]);
            self.rbuckets[soa.level[r as usize] as usize].push(r);
        }
    }

    /// Marks `level` live for the current level sweep.
    #[inline]
    fn push_level(&mut self, level: u32) {
        if !self.ldirty[level as usize] {
            self.ldirty[level as usize] = true;
            self.lheap.push(Reverse(level));
        }
    }

    /// Event-propagates a deviation of `dev` at `root` through the region
    /// between `root` and its dominator `stop`, and returns the deviation
    /// mask delivered at `stop` — exact, because nothing in the region can
    /// reach an output or the strict downstream of `stop` except through
    /// `stop` (see the module docs). Dead side branches past `stop` are
    /// discarded unevaluated.
    fn propagate_to(&mut self, soa: &SoaCircuit, root: u32, dev: W, stop: u32) -> W {
        let r = root as usize;
        debug_assert!(!soa.output_mask[r], "a PO driver has no proper dominator");
        self.faulty[r] = self.good[r].xor(dev);
        self.deviated[r] = true;
        self.dirty.push(root);
        for &g in soa.fanout_slice(r) {
            self.heap.push(Reverse((soa.topo_pos[g as usize], g)));
        }
        // Dominator regions are typically a handful of gates between a stem
        // and its confluence point, so a plain by-position heap beats the
        // level sweep of `propagate_deviation_ct` here (the sweep's
        // per-level bookkeeping outweighs its dedup savings on regions this
        // small — measured on the stitched scale suite).
        let mut delivered = W::ZERO;
        while let Some(Reverse((_, id))) = self.heap.pop() {
            let i = id as usize;
            if id == stop {
                // Every region node precedes `stop` topologically, so the
                // region has fully settled by now; whatever remains queued
                // is dead logic the outputs cannot see.
                let v = eval_gate(soa, i, &self.faulty);
                delivered = v.xor(self.good[i]);
                break;
            }
            // Deduplicate: a node may be queued via several fanins.
            if self.deviated[i] {
                continue;
            }
            let v = eval_gate(soa, i, &self.faulty);
            if v == self.good[i] {
                continue;
            }
            debug_assert!(
                !soa.output_mask[i],
                "no primary output strictly inside a dominator region"
            );
            self.faulty[i] = v;
            self.deviated[i] = true;
            self.dirty.push(id);
            for &g in soa.fanout_slice(i) {
                self.heap.push(Reverse((soa.topo_pos[g as usize], g)));
            }
        }
        self.heap.clear();
        for id in self.dirty.drain(..) {
            let i = id as usize;
            self.deviated[i] = false;
            self.faulty[i] = self.good[i];
        }
        delivered
    }

    /// Queues node `g` for the current level sweep if it is not queued yet
    /// (a node excited through several fanins is evaluated once).
    #[inline]
    fn queue_plain(&mut self, soa: &SoaCircuit, g: u32) {
        let gi = g as usize;
        if !self.queued[gi] {
            self.queued[gi] = true;
            self.push_level(soa.level[gi]);
            self.buckets[soa.level[gi] as usize].push(g);
        }
    }
}

/// Evaluates gate `i` reading every fanin's *current* value from `faulty`.
/// The ctrace invariant — `faulty[x] == good[x]` for every non-deviated
/// `x`, established by `begin_block` and restored by every propagation —
/// makes this a single branchless load per pin, where gating on `deviated`
/// would cost a second load and an unpredictable branch in the hottest
/// loop of the engine.
#[inline]
fn eval_gate<W: SimWord>(soa: &SoaCircuit, i: usize, faulty: &[W]) -> W {
    crate::soa::eval_gate(soa.kinds[i], soa.fanin_slice(i), |_, f| faulty[f as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{campaign, CampaignConfig};
    use crate::fsim::FaultSimTables;
    use crate::word::W256;
    use crate::{fault_list, pattern_block};
    use sft_circuits::random::{random_circuit, RandomCircuitConfig};
    use sft_par::Jobs;

    /// The core bit-identity contract: for every fault and every pattern,
    /// the ctrace engine's detection mask equals the wide engine's, at u64
    /// and at wide word widths, across several blocks (so the per-block
    /// caches are exercised repeatedly).
    #[test]
    fn ctrace_masks_are_bit_identical_to_wide() {
        for seed in [1u64, 9, 33, 77] {
            let c = random_circuit(&RandomCircuitConfig {
                inputs: 16,
                outputs: 8,
                gates: 220,
                window: 24, // deep: long stem chains, real dominator regions
                seed,
            });
            let faults = fault_list(&c);
            let tables = Arc::new(FaultSimTables::new(&c));
            let mut wide =
                WideFaultSim::<u64>::with_tables(Arc::clone(&tables)).with_engine(SimEngine::Wide);
            let mut ctrace = WideFaultSim::<u64>::with_tables(Arc::clone(&tables))
                .with_engine(SimEngine::Ctrace);
            let num_inputs = c.inputs().len();
            for block in 0..6 {
                let words = pattern_block(0xC0FFEE ^ seed, block, num_inputs);
                let a = wide.detect_masks(&faults, &words);
                let b = ctrace.detect_masks(&faults, &words);
                assert_eq!(a, b, "seed {seed} block {block}");
            }

            let mut wide256 =
                WideFaultSim::<W256>::with_tables(Arc::clone(&tables)).with_engine(SimEngine::Wide);
            let mut ctrace256 =
                WideFaultSim::<W256>::with_tables(tables).with_engine(SimEngine::Ctrace);
            let blocks: Vec<Vec<u64>> =
                (0..W256::LANES as u64).map(|b| pattern_block(seed, b, num_inputs)).collect();
            let inputs: Vec<W256> =
                (0..num_inputs).map(|i| W256::from_lanes(|l| blocks[l][i])).collect();
            assert_eq!(
                wide256.detect_masks(&faults, &inputs),
                ctrace256.detect_masks(&faults, &inputs),
                "seed {seed} wide word"
            );
        }
    }

    /// Campaign results — detection indices, effective-pattern statistic,
    /// plateau stop — are identical between engines at 1 and N threads.
    #[test]
    fn campaign_is_engine_independent_at_any_thread_count() {
        let c = random_circuit(&RandomCircuitConfig {
            inputs: 12,
            outputs: 6,
            gates: 120,
            window: 18,
            seed: 5,
        });
        let faults = fault_list(&c);
        for (max_patterns, plateau) in [(2048, 0), (1 << 14, 256)] {
            let mut reference = None;
            for engine in [SimEngine::Wide, SimEngine::Ctrace] {
                for jobs in [Jobs::serial(), Jobs::new(4)] {
                    let r = campaign(
                        &c,
                        &faults,
                        &CampaignConfig {
                            max_patterns,
                            plateau,
                            seed: 17,
                            jobs,
                            parallel_grain: 0,
                            engine,
                            ..CampaignConfig::default()
                        },
                    );
                    match &reference {
                        None => reference = Some(r),
                        Some(reference) => {
                            assert_eq!(reference, &r, "engine={engine} jobs={jobs:?}");
                        }
                    }
                }
            }
        }
    }

    /// XOR checksum trees: the stitched shape where stems chain through
    /// dominators — the regime the shortcut exists for. Masks must still be
    /// identical between engines.
    #[test]
    fn ctrace_matches_wide_on_stitched_checksum_trees() {
        let c = sft_circuits::gen::stitched(
            6,
            &RandomCircuitConfig { inputs: 10, outputs: 4, gates: 80, window: 12, seed: 2 },
        );
        let faults = fault_list(&c);
        let tables = Arc::new(FaultSimTables::new(&c));
        let mut wide =
            WideFaultSim::<u64>::with_tables(Arc::clone(&tables)).with_engine(SimEngine::Wide);
        let mut ctrace = WideFaultSim::<u64>::with_tables(tables).with_engine(SimEngine::Ctrace);
        let num_inputs = c.inputs().len();
        for block in 0..4 {
            let words = pattern_block(0x57AB, block, num_inputs);
            assert_eq!(
                wide.detect_masks(&faults, &words),
                ctrace.detect_masks(&faults, &words),
                "block {block}"
            );
        }
    }
}
