//! Parallel-pattern logic and stuck-at fault simulation.
//!
//! This crate reimplements the fault-simulation substrate the paper relies
//! on (FSIM \[17\] — Lee & Ha's parallel-pattern single-fault-propagation
//! simulator) in safe Rust:
//!
//! - [`Simulator`] — 64-way bit-parallel good-machine simulation;
//! - [`Fault`]/[`FaultSite`] — single stuck-at faults on stems and fanout
//!   branches, with [`fault_list`] and equivalence [`collapse`];
//! - [`FaultSim`]/[`WideFaultSim`] — parallel-pattern single-fault
//!   propagation restricted to the fault's fanout cone, with fanout-free
//!   regions grouped so faults sharing a stem share one cone propagation
//!   ([`FaultSimTables`] holds the read-only [`SoaCircuit`] precomputation
//!   so concurrent simulators share one copy). Two bit-identical engines
//!   ([`SimEngine`]): the default critical-path-tracing engine derives all
//!   FFR-internal detections from one backward sensitization sweep per
//!   stem and gates stem observability at immediate dominators, while
//!   `wide` keeps the explicit per-fault propagation as an escape hatch;
//! - [`SimWord`] — the simulation word abstraction: `u64` (64 patterns per
//!   sweep) or the auto-vectorizable wide blocks [`W256`]/[`W512`];
//! - [`campaign`] — the random-pattern testability experiment driver used by
//!   Table 6 of the paper (fault coverage, remaining faults, last effective
//!   pattern). Campaigns run pattern blocks on
//!   [`CampaignConfig::jobs`] worker threads at a configurable word width
//!   ([`SimWidth`]) with bit-identical results at any thread count and any
//!   width ([`pattern_block`] derives each block's patterns purely from
//!   `(seed, block)`).
//!
//! # Examples
//!
//! ```
//! use sft_netlist::bench_format::parse;
//! use sft_sim::{fault_list, FaultSim};
//!
//! let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
//! let faults = fault_list(&c);
//! let mut fsim = FaultSim::new(&c);
//! // Pattern a=1,b=1 detects y stuck-at-0 (among others).
//! let detected = fsim.detect_block(&faults, &[u64::MAX, u64::MAX]);
//! assert!(detected.iter().any(Option::is_some));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod campaign;
mod ctrace;
mod fault;
mod fsim;
mod logic;
mod measures;
mod soa;
mod word;

pub use campaign::{campaign, pattern_block, CampaignConfig, CampaignResult, SimWidth};
pub use ctrace::SimEngine;
pub use fault::{collapse, fault_list, Fault, FaultSite};
pub use fsim::{FaultSim, FaultSimTables, WideFaultSim};
pub use logic::Simulator;
pub use measures::{cop_measures, CopMeasures};
pub use soa::{PackedKind, SoaCircuit};
pub use word::{SimWord, W256, W512};
