//! Parallel-pattern logic and stuck-at fault simulation.
//!
//! This crate reimplements the fault-simulation substrate the paper relies
//! on (FSIM \[17\] — Lee & Ha's parallel-pattern single-fault-propagation
//! simulator) in safe Rust:
//!
//! - [`Simulator`] — 64-way bit-parallel good-machine simulation;
//! - [`Fault`]/[`FaultSite`] — single stuck-at faults on stems and fanout
//!   branches, with [`fault_list`] and equivalence [`collapse`];
//! - [`FaultSim`] — parallel-pattern single-fault propagation restricted to
//!   the fault's fanout cone ([`FaultSimTables`] holds the read-only
//!   precomputation so concurrent simulators share one copy);
//! - [`campaign`] — the random-pattern testability experiment driver used by
//!   Table 6 of the paper (fault coverage, remaining faults, last effective
//!   pattern). Campaigns run pattern blocks on
//!   [`CampaignConfig::jobs`] worker threads with bit-identical results at
//!   any thread count ([`pattern_block`] derives each block's patterns
//!   purely from `(seed, block)`).
//!
//! # Examples
//!
//! ```
//! use sft_netlist::bench_format::parse;
//! use sft_sim::{fault_list, FaultSim};
//!
//! let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
//! let faults = fault_list(&c);
//! let mut fsim = FaultSim::new(&c);
//! // Pattern a=1,b=1 detects y stuck-at-0 (among others).
//! let detected = fsim.detect_block(&faults, &[u64::MAX, u64::MAX]);
//! assert!(detected.iter().any(Option::is_some));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod campaign;
mod fault;
mod fsim;
mod logic;
mod measures;

pub use campaign::{campaign, pattern_block, CampaignConfig, CampaignResult};
pub use fault::{collapse, fault_list, Fault, FaultSite};
pub use fsim::{FaultSim, FaultSimTables};
pub use logic::Simulator;
pub use measures::{cop_measures, CopMeasures};
