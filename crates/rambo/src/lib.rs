//! A redundancy-addition-and-removal (RAR) multi-level optimizer — the
//! RAMBO_C-style baseline of Table 3 (ref. \[1\], Cheng & Entrena, "Multi-Level
//! Logic Optimization by Redundancy Addition and Removal").
//!
//! The mechanism: adding a connection that is provably **redundant** (its
//! new-pin stuck-at-non-controlling fault is untestable) does not change
//! the circuit function, but it can make *other* connections redundant;
//! removing those shrinks the circuit. This crate implements the loop:
//!
//! 1. pick a candidate `(source wire, destination gate)` pair (seeded
//!    random sampling, filtered cheaply by random-pattern fault
//!    simulation);
//! 2. prove the tentative connection redundant with PODEM; otherwise
//!    discard;
//! 3. run full redundancy removal on the augmented circuit; keep the
//!    result only if the equivalent 2-input gate count dropped.
//!
//! Every accepted step is equivalence-preserving **by construction**
//! (additions proven redundant, removals proven redundant), and the
//! optimizer re-verifies the final result against the input with BDDs.
//!
//! Like the original tool, RAR tends to reduce gates while *increasing*
//! the number of paths — the contrast the paper draws in Table 3.
//!
//! # Examples
//!
//! ```no_run
//! use sft_netlist::bench_format::parse;
//! use sft_rambo::{optimize, RamboOptions};
//!
//! let mut c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
//! let report = optimize(&mut c, &RamboOptions::default())?;
//! println!("gates: {} -> {}", report.gates_before, report.gates_after);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_atpg::{generate_test, remove_redundancies, TestResult};
use sft_budget::{Budget, StopReason};
use sft_netlist::{Circuit, GateKind, NodeId};
use sft_sim::{Fault, FaultSim};
use std::fmt;

/// Options for the RAR optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RamboOptions {
    /// PODEM backtrack limit for redundancy proofs.
    pub backtrack_limit: u64,
    /// Number of candidate connections to try.
    pub candidate_attempts: usize,
    /// Stop after this many accepted (gate-reducing) additions.
    pub max_accepted: usize,
    /// Random-pattern blocks (64 pairs each) used to pre-filter candidates.
    pub filter_blocks: usize,
    /// RNG seed for candidate sampling.
    pub seed: u64,
}

impl Default for RamboOptions {
    fn default() -> Self {
        RamboOptions {
            backtrack_limit: 20_000,
            candidate_attempts: 400,
            max_accepted: 16,
            filter_blocks: 4,
            seed: 0x8a3,
        }
    }
}

/// Summary of a RAR run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RamboReport {
    /// Candidates sampled.
    pub attempts: usize,
    /// Connections proven redundant (added tentatively).
    pub proven_redundant: usize,
    /// Additions kept because removal shrank the circuit.
    pub accepted: usize,
    /// Equivalent 2-input gates before.
    pub gates_before: u64,
    /// Equivalent 2-input gates after.
    pub gates_after: u64,
    /// Paths before.
    pub paths_before: u128,
    /// Paths after.
    pub paths_after: u128,
    /// Why the candidate loop stopped. [`StopReason::MaxPasses`] is the
    /// ordinary outcome (attempt or acceptance cap reached);
    /// [`StopReason::Converged`] means the circuit ran out of candidate
    /// sites. Every accepted addition is equivalence-preserving by
    /// construction, so an early stop loses no work.
    pub stop_reason: StopReason,
}

impl fmt::Display for RamboReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts, {} redundant, {} accepted: gates {} -> {}, paths {} -> {} ({})",
            self.attempts,
            self.proven_redundant,
            self.accepted,
            self.gates_before,
            self.gates_after,
            self.paths_before,
            self.paths_after,
            self.stop_reason
        )
    }
}

/// Errors from the optimizer.
#[derive(Debug)]
pub enum RamboError {
    /// Netlist manipulation failed.
    Netlist(sft_netlist::NetlistError),
    /// Final BDD verification failed (internal bug guard).
    VerificationFailed,
    /// BDD blow-up during verification.
    Bdd(sft_bdd::BddError),
}

impl fmt::Display for RamboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RamboError::Netlist(e) => write!(f, "netlist error: {e}"),
            RamboError::VerificationFailed => write!(f, "optimizer changed the function"),
            RamboError::Bdd(e) => write!(f, "bdd error: {e}"),
        }
    }
}

impl std::error::Error for RamboError {}

impl From<sft_netlist::NetlistError> for RamboError {
    fn from(e: sft_netlist::NetlistError) -> Self {
        RamboError::Netlist(e)
    }
}

impl From<sft_bdd::BddError> for RamboError {
    fn from(e: sft_bdd::BddError) -> Self {
        RamboError::Bdd(e)
    }
}

/// Quick random-pattern filter: `true` if the fault survives (may be
/// redundant), `false` if some random pattern detects it.
fn survives_random_filter(
    circuit: &Circuit,
    fault: Fault,
    blocks: usize,
    rng: &mut StdRng,
) -> bool {
    let mut fsim = FaultSim::new(circuit);
    let faults = [fault];
    let mut words = vec![0u64; circuit.inputs().len()];
    for _ in 0..blocks {
        for w in words.iter_mut() {
            *w = rng.gen();
        }
        if fsim.detect_block(&faults, &words)[0].is_some() {
            return false;
        }
    }
    true
}

/// Runs redundancy addition and removal on `circuit`.
///
/// # Errors
///
/// Returns [`RamboError::VerificationFailed`] if the final BDD check fails
/// (which would indicate an internal bug), or propagates netlist/BDD
/// errors.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn optimize(circuit: &mut Circuit, options: &RamboOptions) -> Result<RamboReport, RamboError> {
    optimize_with_budget(circuit, options, &Budget::unlimited())
}

/// Runs redundancy addition and removal under an effort [`Budget`].
///
/// The budget is consumed one step per candidate attempt and checked
/// before each attempt; exhaustion (deadline, step budget, cancellation)
/// stops the loop cleanly and is reported in
/// [`RamboReport::stop_reason`]. Because every accepted addition is
/// individually proven redundant, the circuit is valid and equivalent to
/// the input at every stopping point — an exhausted budget returns the
/// best result so far, not an error.
///
/// # Errors
///
/// Returns [`RamboError::VerificationFailed`] if the final BDD check fails
/// (which would indicate an internal bug), or propagates netlist/BDD
/// errors.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn optimize_with_budget(
    circuit: &mut Circuit,
    options: &RamboOptions,
    budget: &Budget,
) -> Result<RamboReport, RamboError> {
    let original = circuit.clone();
    let mut report = RamboReport {
        gates_before: circuit.two_input_gate_count(),
        paths_before: circuit.path_count(),
        ..RamboReport::default()
    };
    // Start from an irredundant circuit (removal alone may already help).
    remove_redundancies(circuit, options.backtrack_limit);

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut stop = StopReason::MaxPasses;
    while report.attempts < options.candidate_attempts && report.accepted < options.max_accepted {
        if let Err(e) = budget.consume(1) {
            stop = e.into();
            break;
        }
        report.attempts += 1;
        // Sample a destination AND/OR-family gate and a source wire.
        let live = circuit.live_mask();
        let gates: Vec<NodeId> = circuit
            .iter()
            .filter(|(id, n)| {
                live[id.index()]
                    && matches!(
                        n.kind(),
                        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor
                    )
            })
            .map(|(id, _)| id)
            .collect();
        let wires: Vec<NodeId> = circuit
            .iter()
            .filter(|(id, n)| {
                live[id.index()] && !matches!(n.kind(), GateKind::Const0 | GateKind::Const1)
            })
            .map(|(id, _)| id)
            .collect();
        if gates.is_empty() || wires.is_empty() {
            stop = StopReason::Converged;
            break;
        }
        let dest = gates[rng.gen_range(0..gates.len())];
        let source = wires[rng.gen_range(0..wires.len())];
        if source == dest
            || circuit.node(dest).fanins().contains(&source)
            || circuit.reaches(dest, &[source])
        {
            continue; // already connected or would create a cycle
        }
        // Tentative addition, applied in place inside an edit transaction:
        // rolling the single rewire back through the journal costs O(1) per
        // attempt, where cloning the circuit cost O(circuit).
        let cp = circuit.begin_edit();
        let kind = circuit.node(dest).kind();
        let mut fanins = circuit.node(dest).fanins().to_vec();
        fanins.push(source);
        let new_pin = (fanins.len() - 1) as u8;
        if let Err(e) = circuit.rewire(dest, kind, fanins) {
            circuit.rollback_to(cp);
            return Err(e.into());
        }
        // The addition is function-preserving iff the new pin stuck at the
        // gate's non-controlling value is untestable.
        let nc = !kind.controlling_value().expect("and/or family");
        let fault = Fault::branch(dest, new_pin, nc);
        let redundant = survives_random_filter(circuit, fault, options.filter_blocks, &mut rng)
            && matches!(
                generate_test(circuit, fault, options.backtrack_limit),
                TestResult::Untestable
            );
        circuit.rollback_to(cp);
        if !redundant {
            continue;
        }
        report.proven_redundant += 1;
        // Removal phase on a boundary clone (removal rewrites wholesale and
        // is kept only if it wins): does the augmented circuit shrink?
        let mut cleaned = circuit.clone();
        let mut fanins = cleaned.node(dest).fanins().to_vec();
        fanins.push(source);
        cleaned.rewire(dest, kind, fanins)?;
        remove_redundancies(&mut cleaned, options.backtrack_limit);
        if cleaned.two_input_gate_count() < circuit.two_input_gate_count() {
            *circuit = cleaned;
            report.accepted += 1;
        }
    }

    match sft_bdd::equivalent(&original, circuit)? {
        sft_bdd::CheckResult::Equivalent => {}
        sft_bdd::CheckResult::Different { .. } => return Err(RamboError::VerificationFailed),
    }
    report.stop_reason = stop;
    report.gates_after = circuit.two_input_gate_count();
    report.paths_after = circuit.path_count();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    #[test]
    fn preserves_function_on_c17() {
        let src = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
        let original = parse(src, "c17").unwrap();
        let mut c = original.clone();
        let opts = RamboOptions { candidate_attempts: 60, ..RamboOptions::default() };
        let report = optimize(&mut c, &opts).unwrap();
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
        assert!(report.gates_after <= report.gates_before);
    }

    #[test]
    fn removal_alone_cleans_redundant_circuit() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let original = parse(src, "abs").unwrap();
        let mut c = original.clone();
        let opts = RamboOptions { candidate_attempts: 5, ..RamboOptions::default() };
        let report = optimize(&mut c, &opts).unwrap();
        assert!(report.gates_after < report.gates_before);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    #[test]
    fn report_display() {
        let r = RamboReport {
            attempts: 5,
            proven_redundant: 2,
            accepted: 1,
            gates_before: 10,
            gates_after: 9,
            paths_before: 50,
            paths_after: 60,
            stop_reason: StopReason::MaxPasses,
        };
        assert!(r.to_string().contains("gates 10 -> 9"));
        assert!(r.to_string().ends_with("(max-passes)"));
    }

    #[test]
    fn step_budget_stops_candidate_loop_without_losing_work() {
        // c17 is irredundant, so the candidate loop itself must hit the
        // step budget (the circuit never runs out of candidate sites).
        let src = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
        let original = parse(src, "c17").unwrap();
        let mut c = original.clone();
        let budget = sft_budget::Budget::unlimited().with_step_limit(2);
        let report = optimize_with_budget(&mut c, &RamboOptions::default(), &budget).unwrap();
        assert_eq!(report.stop_reason, StopReason::StepBudget);
        // The last granted unit still runs, so at most 2 attempts happened.
        assert!(report.attempts <= 2, "attempts = {}", report.attempts);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    #[test]
    fn cancellation_stops_the_loop() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let original = parse(src, "abs").unwrap();
        let mut c = original.clone();
        let flag = sft_budget::CancelFlag::new();
        flag.cancel();
        let budget = sft_budget::Budget::unlimited().with_cancel(flag);
        let report = optimize_with_budget(&mut c, &RamboOptions::default(), &budget).unwrap();
        assert_eq!(report.stop_reason, StopReason::Cancelled);
        assert_eq!(report.attempts, 0);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// The classical RAR showcase: in a circuit where adding one redundant
    /// wire unlocks removals, the optimizer finds a smaller circuit. We use
    /// a seeded search over a redundancy-rich random circuit and assert it
    /// never regresses and stays equivalent.
    #[test]
    fn never_regresses_on_random_circuits() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use sft_netlist::{Circuit, GateKind};
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..3 {
            let mut c = Circuit::new(format!("r{trial}"));
            let ins: Vec<_> = (0..6).map(|i| c.add_input(format!("i{i}"))).collect();
            let mut pool = ins.clone();
            for _ in 0..25 {
                let kinds = [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor];
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let x = pool[rng.gen_range(0..pool.len())];
                let y = pool[rng.gen_range(0..pool.len())];
                if x == y {
                    continue;
                }
                let g = c.add_gate(kind, vec![x, y]).unwrap();
                pool.push(g);
            }
            for (i, &o) in pool.iter().rev().take(3).enumerate() {
                c.add_output(o, format!("o{i}"));
            }
            let original = c.clone();
            let opts =
                RamboOptions { candidate_attempts: 40, max_accepted: 4, ..RamboOptions::default() };
            let report = optimize(&mut c, &opts).unwrap();
            assert!(report.gates_after <= report.gates_before, "trial {trial}");
            assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
        }
    }
}
