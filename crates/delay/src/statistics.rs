//! Non-enumerative path statistics: the distribution of path lengths.
//!
//! Procedure 1 counts paths; the same dynamic program, labelled with a
//! count *per depth*, yields the full path-length histogram without
//! enumerating anything — useful for judging how resynthesis reshapes the
//! path population (the paper's delay discussion: modified circuits must
//! not get longer critical paths).

use sft_netlist::{Circuit, GateKind};

/// A histogram of input-to-output path lengths (index = number of gates on
/// the path, including buffers and inverters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathLengthHistogram {
    counts: Vec<u128>,
}

impl PathLengthHistogram {
    /// Paths of exactly `length` gates.
    pub fn count(&self, length: usize) -> u128 {
        self.counts.get(length).copied().unwrap_or(0)
    }

    /// `(length, count)` pairs with nonzero counts, ascending.
    pub fn nonzero(&self) -> Vec<(usize, u128)> {
        self.counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(l, &c)| (l, c)).collect()
    }

    /// Total number of paths (must equal Procedure 1's count).
    pub fn total(&self) -> u128 {
        self.counts.iter().fold(0u128, |a, &b| a.saturating_add(b))
    }

    /// The longest path length (0 for circuits with no paths).
    pub fn longest(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Mean path length (0.0 for circuits with no paths).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self.counts.iter().enumerate().map(|(l, &c)| l as f64 * c as f64).sum();
        weighted / total as f64
    }
}

/// Computes the path-length histogram in `O(lines × depth)`.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn path_length_histogram(circuit: &Circuit) -> PathLengthHistogram {
    let order = circuit.topo_order().expect("combinational circuit");
    let depth = circuit.depth() as usize;
    // labels[node][d] = number of partial paths of length d ending at node.
    let mut labels: Vec<Vec<u128>> = vec![Vec::new(); circuit.len()];
    for id in order {
        let node = circuit.node(id);
        let mut v = vec![0u128; depth + 1];
        match node.kind() {
            GateKind::Input => v[0] = 1,
            GateKind::Const0 | GateKind::Const1 => {}
            _ => {
                for f in node.fanins() {
                    for (d, &c) in labels[f.index()].iter().enumerate() {
                        if c > 0 {
                            v[d + 1] = v[d + 1].saturating_add(c);
                        }
                    }
                }
            }
        }
        labels[id.index()] = v;
    }
    let mut counts = vec![0u128; depth + 1];
    for &o in circuit.outputs() {
        for (d, &c) in labels[o.index()].iter().enumerate() {
            counts[d] = counts[d].saturating_add(c);
        }
    }
    PathLengthHistogram { counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_paths;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn matches_enumeration_on_c17() {
        let c = parse(C17, "c17").unwrap();
        let h = path_length_histogram(&c);
        assert_eq!(h.total(), c.path_count());
        let paths = enumerate_paths(&c, 1000).unwrap();
        for (length, count) in h.nonzero() {
            let enumerated = paths.iter().filter(|p| p.gate_count() == length).count() as u128;
            assert_eq!(count, enumerated, "length {length}");
        }
        assert_eq!(h.longest() as u32, c.depth());
    }

    #[test]
    fn exponential_circuit_histogram_is_single_spike() {
        // k doubling stages: all 2^k paths have the same length.
        let mut src = String::from("INPUT(a)\nOUTPUT(y10)\ny0 = BUF(a)\n");
        for i in 0..10 {
            src.push_str(&format!(
                "l{i} = BUF(y{i})\nr{i} = NOT(y{i})\ny{} = OR(l{i}, r{i})\n",
                i + 1
            ));
        }
        let c = parse(&src, "exp").unwrap();
        let h = path_length_histogram(&c);
        assert_eq!(h.total(), 1 << 10);
        assert_eq!(h.nonzero().len(), 1);
        assert_eq!(h.count(h.longest()), 1 << 10);
    }

    #[test]
    fn mean_and_empty_behave() {
        let c = parse("INPUT(a)\nOUTPUT(a)\n", "wire").unwrap();
        let h = path_length_histogram(&c);
        assert_eq!(h.total(), 1);
        assert_eq!(h.longest(), 0);
        assert!((h.mean() - 0.0).abs() < 1e-12);
        // No outputs at all.
        let empty = parse("INPUT(a)\n", "none").unwrap();
        let h = path_length_histogram(&empty);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
