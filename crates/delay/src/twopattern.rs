//! 64-way parallel two-pattern simulation with hazard tracking.
//!
//! Each line carries, for 64 pattern pairs `<v1, v2>` at once, three words:
//! the initial value, the final value, and a conservative **glitch-free**
//! flag. `glitch_free` means: if `v1 == v2`, the line provably holds its
//! value throughout the pair (no static hazard); if `v1 != v2`, the line
//! makes exactly one clean transition (no dynamic hazard). The flag is
//! computed structurally:
//!
//! - primary inputs and constants are glitch-free by definition;
//! - an AND/OR-family gate is glitch-free if some side input holds a steady
//!   glitch-free controlling value, or if all inputs are glitch-free and
//!   their transitions are monotone in the same direction (mixed rising and
//!   falling inputs can race);
//! - a parity gate is glitch-free only if all inputs are glitch-free and at
//!   most one of them has a transition.
//!
//! The rules are conservative (sound for "no hazard", never claiming
//! glitch-freedom that delays could violate), which is what robust path
//! delay fault testing requires.

use sft_netlist::{Circuit, GateKind, NodeId};

/// Per-line words of a two-pattern simulation: `(v1, v2, glitch_free)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineWaves {
    /// Initial-vector values, one bit per pattern pair.
    pub v1: u64,
    /// Final-vector values.
    pub v2: u64,
    /// Conservative glitch-free flags.
    pub glitch_free: u64,
}

impl LineWaves {
    /// Bit mask of pairs where the line has a transition.
    pub fn transition(&self) -> u64 {
        self.v1 ^ self.v2
    }

    /// Bit mask of pairs with a clean rising transition.
    pub fn rising(&self) -> u64 {
        self.transition() & self.v2 & self.glitch_free
    }

    /// Bit mask of pairs with a clean falling transition.
    pub fn falling(&self) -> u64 {
        self.transition() & !self.v2 & self.glitch_free
    }
}

/// A two-pattern simulator bound to one circuit.
///
/// # Examples
///
/// ```
/// use sft_delay::TwoPatternSim;
/// use sft_netlist::bench_format::parse;
///
/// let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
/// let sim = TwoPatternSim::new(&c);
/// // Pair 0: a rises 0->1 while b holds 1: y rises cleanly.
/// let waves = sim.simulate(&[0b0, 0b1], &[0b1, 0b1]);
/// let y = c.outputs()[0];
/// assert_eq!(waves[y.index()].rising() & 1, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TwoPatternSim<'c> {
    circuit: &'c Circuit,
    order: Vec<NodeId>,
    input_pos: Vec<usize>,
}

impl<'c> TwoPatternSim<'c> {
    /// Prepares a simulator for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &'c Circuit) -> Self {
        let order = circuit.topo_order().expect("combinational circuit");
        let mut input_pos = vec![usize::MAX; circuit.len()];
        for (i, &id) in circuit.inputs().iter().enumerate() {
            input_pos[id.index()] = i;
        }
        TwoPatternSim { circuit, order, input_pos }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Simulates 64 pattern pairs; `v1_words[i]`/`v2_words[i]` carry the two
    /// vectors of primary input `i`. Returns per-node waves.
    ///
    /// # Panics
    ///
    /// Panics if the input word counts differ from the number of inputs.
    pub fn simulate(&self, v1_words: &[u64], v2_words: &[u64]) -> Vec<LineWaves> {
        let mut waves = vec![LineWaves::default(); self.circuit.len()];
        self.simulate_into(v1_words, v2_words, &mut waves);
        waves
    }

    /// Like [`simulate`](Self::simulate) but reuses a buffer.
    ///
    /// # Panics
    ///
    /// Panics if the input word counts differ from the number of inputs.
    pub fn simulate_into(&self, v1_words: &[u64], v2_words: &[u64], waves: &mut Vec<LineWaves>) {
        assert_eq!(v1_words.len(), self.circuit.inputs().len(), "v1 word count mismatch");
        assert_eq!(v2_words.len(), self.circuit.inputs().len(), "v2 word count mismatch");
        waves.clear();
        waves.resize(self.circuit.len(), LineWaves::default());
        for &id in &self.order {
            let node = self.circuit.node(id);
            let w = match node.kind() {
                GateKind::Input => {
                    let pos = self.input_pos[id.index()];
                    LineWaves { v1: v1_words[pos], v2: v2_words[pos], glitch_free: u64::MAX }
                }
                GateKind::Const0 => LineWaves { v1: 0, v2: 0, glitch_free: u64::MAX },
                GateKind::Const1 => LineWaves { v1: u64::MAX, v2: u64::MAX, glitch_free: u64::MAX },
                GateKind::Buf => waves[node.fanins()[0].index()],
                GateKind::Not => {
                    let f = waves[node.fanins()[0].index()];
                    LineWaves { v1: !f.v1, v2: !f.v2, glitch_free: f.glitch_free }
                }
                kind @ (GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor) => {
                    let c = kind.controlling_value().expect("and/or family");
                    let c_mask = if c { u64::MAX } else { 0 };
                    let mut v1 = if c { 0 } else { u64::MAX };
                    let mut v2 = v1;
                    let mut all_gf = u64::MAX;
                    let mut steady_controlling_gf = 0u64;
                    let mut any_rising = 0u64;
                    let mut any_falling = 0u64;
                    for f in node.fanins() {
                        let w = waves[f.index()];
                        if c {
                            v1 |= w.v1;
                            v2 |= w.v2;
                        } else {
                            v1 &= w.v1;
                            v2 &= w.v2;
                        }
                        all_gf &= w.glitch_free;
                        let steady = !(w.v1 ^ w.v2);
                        steady_controlling_gf |= w.glitch_free & steady & !(w.v1 ^ c_mask);
                        let t = w.v1 ^ w.v2;
                        any_rising |= t & w.v2;
                        any_falling |= t & !w.v2;
                    }
                    let mixed = any_rising & any_falling;
                    let gf = steady_controlling_gf | (all_gf & !mixed);
                    if kind.inverts() {
                        LineWaves { v1: !v1, v2: !v2, glitch_free: gf }
                    } else {
                        LineWaves { v1, v2, glitch_free: gf }
                    }
                }
                kind @ (GateKind::Xor | GateKind::Xnor) => {
                    let mut v1 = 0u64;
                    let mut v2 = 0u64;
                    let mut all_gf = u64::MAX;
                    let mut seen_t = 0u64;
                    let mut multi_t = 0u64;
                    for f in node.fanins() {
                        let w = waves[f.index()];
                        v1 ^= w.v1;
                        v2 ^= w.v2;
                        all_gf &= w.glitch_free;
                        let t = w.v1 ^ w.v2;
                        multi_t |= seen_t & t;
                        seen_t |= t;
                    }
                    let gf = all_gf & !multi_t;
                    if kind.inverts() {
                        LineWaves { v1: !v1, v2: !v2, glitch_free: gf }
                    } else {
                        LineWaves { v1, v2, glitch_free: gf }
                    }
                }
            };
            waves[id.index()] = w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    fn single(sim: &TwoPatternSim<'_>, v1: &[bool], v2: &[bool]) -> Vec<LineWaves> {
        let w1: Vec<u64> = v1.iter().map(|&b| u64::from(b)).collect();
        let w2: Vec<u64> = v2.iter().map(|&b| u64::from(b)).collect();
        let mut waves = Vec::new();
        sim.simulate_into(&w1, &w2, &mut waves);
        waves
    }

    #[test]
    fn values_match_scalar_simulation() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = NAND(a, b)\ny = XOR(t, c)\n";
        let c = parse(src, "t").unwrap();
        let sim = TwoPatternSim::new(&c);
        for m1 in 0..8u32 {
            for m2 in 0..8u32 {
                let p1: Vec<bool> = (0..3).map(|i| m1 >> i & 1 == 1).collect();
                let p2: Vec<bool> = (0..3).map(|i| m2 >> i & 1 == 1).collect();
                let waves = single(&sim, &p1, &p2);
                let o = c.outputs()[0];
                assert_eq!(waves[o.index()].v1 & 1 == 1, c.eval_assignment(&p1)[0]);
                assert_eq!(waves[o.index()].v2 & 1 == 1, c.eval_assignment(&p2)[0]);
            }
        }
    }

    #[test]
    fn steady_controlling_side_gives_glitch_free_output() {
        // y = AND(a, b): b steady 0 forces y steady 0 even while a toggles.
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let sim = TwoPatternSim::new(&c);
        let waves = single(&sim, &[false, false], &[true, false]);
        let y = c.outputs()[0];
        assert_eq!(waves[y.index()].glitch_free & 1, 1);
        assert_eq!(waves[y.index()].transition() & 1, 0);
    }

    #[test]
    fn mixed_transitions_into_and_are_hazardous() {
        // a falls, b rises into an AND: static-0 hazard possible.
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let sim = TwoPatternSim::new(&c);
        let waves = single(&sim, &[true, false], &[false, true]);
        let y = c.outputs()[0];
        assert_eq!(waves[y.index()].glitch_free & 1, 0, "must be flagged hazardous");
    }

    #[test]
    fn same_direction_transitions_are_clean() {
        // Both inputs rise into an AND: output rises cleanly (monotone).
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let sim = TwoPatternSim::new(&c);
        let waves = single(&sim, &[false, false], &[true, true]);
        let y = c.outputs()[0];
        assert_eq!(waves[y.index()].rising() & 1, 1);
    }

    #[test]
    fn xor_two_transitions_hazardous() {
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "t").unwrap();
        let sim = TwoPatternSim::new(&c);
        // Both rise: y = 0 -> 0 but may pulse.
        let waves = single(&sim, &[false, false], &[true, true]);
        let y = c.outputs()[0];
        assert_eq!(waves[y.index()].glitch_free & 1, 0);
        // Single transition: clean.
        let waves = single(&sim, &[false, true], &[true, true]);
        assert_eq!(waves[y.index()].glitch_free & 1, 1);
        assert_eq!(waves[y.index()].falling() & 1, 1);
    }

    #[test]
    fn inverter_preserves_cleanliness() {
        let c = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let sim = TwoPatternSim::new(&c);
        let waves = single(&sim, &[false], &[true]);
        let y = c.outputs()[0];
        assert_eq!(waves[y.index()].falling() & 1, 1);
    }

    /// The glitch-free flag is sound: whenever it claims glitch-freedom, an
    /// exhaustive 3-valued (X-based) hazard analysis agrees. We check via
    /// the standard X-simulation: a line is hazard-free if simulating with
    /// all transitioning inputs set to X yields a definite value equal on
    /// both vectors... conservatively approximated here by checking only
    /// steady lines: if v1==v2 and gf, then X-sim must give that value.
    #[test]
    fn glitch_free_soundness_vs_x_simulation() {
        use sft_netlist::GateKind;
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = OR(b, c)\nt3 = NAND(t1, t2)\ny = XOR(t3, a)\n";
        let c = parse(src, "t").unwrap();
        let sim = TwoPatternSim::new(&c);
        let order = c.topo_order().unwrap();
        for m1 in 0..8u32 {
            for m2 in 0..8u32 {
                let p1: Vec<bool> = (0..3).map(|i| m1 >> i & 1 == 1).collect();
                let p2: Vec<bool> = (0..3).map(|i| m2 >> i & 1 == 1).collect();
                let waves = single(&sim, &p1, &p2);
                // X-simulation: transitioning inputs are X.
                #[derive(Clone, Copy, PartialEq)]
                enum V {
                    Zero,
                    One,
                    X,
                }
                let mut xv = vec![V::X; c.len()];
                for (i, &id) in c.inputs().iter().enumerate() {
                    xv[id.index()] = if p1[i] != p2[i] {
                        V::X
                    } else if p1[i] {
                        V::One
                    } else {
                        V::Zero
                    };
                }
                for &id in &order {
                    let node = c.node(id);
                    if !node.kind().is_gate() {
                        continue;
                    }
                    let ins: Vec<V> = node.fanins().iter().map(|f| xv[f.index()]).collect();
                    xv[id.index()] = match node.kind() {
                        GateKind::Buf => ins[0],
                        GateKind::Not => match ins[0] {
                            V::Zero => V::One,
                            V::One => V::Zero,
                            V::X => V::X,
                        },
                        GateKind::And | GateKind::Nand => {
                            let v = if ins.contains(&V::Zero) {
                                V::Zero
                            } else if ins.contains(&V::X) {
                                V::X
                            } else {
                                V::One
                            };
                            if node.kind() == GateKind::Nand {
                                match v {
                                    V::Zero => V::One,
                                    V::One => V::Zero,
                                    V::X => V::X,
                                }
                            } else {
                                v
                            }
                        }
                        GateKind::Or | GateKind::Nor => {
                            let v = if ins.contains(&V::One) {
                                V::One
                            } else if ins.contains(&V::X) {
                                V::X
                            } else {
                                V::Zero
                            };
                            if node.kind() == GateKind::Nor {
                                match v {
                                    V::Zero => V::One,
                                    V::One => V::Zero,
                                    V::X => V::X,
                                }
                            } else {
                                v
                            }
                        }
                        _ => {
                            if ins.contains(&V::X) {
                                V::X
                            } else {
                                let ones = ins.iter().filter(|&&v| v == V::One).count();
                                let odd = ones % 2 == 1;
                                let out = odd != (node.kind() == GateKind::Xnor);
                                if out {
                                    V::One
                                } else {
                                    V::Zero
                                }
                            }
                        }
                    };
                }
                for (id, _) in c.iter() {
                    let w = waves[id.index()];
                    let steady_gf = w.transition() & 1 == 0 && w.glitch_free & 1 == 1;
                    if steady_gf {
                        // X-sim must agree the value is definite... except
                        // where gf came from a steady controlling side input
                        // that the X-sim also sees (X-sim is the weaker
                        // analysis, so it may say X where we used monotone
                        // reasoning; only the converse would be unsound).
                        // Soundness check: if X-sim is definite, values agree.
                        let xvv = xv[id.index()];
                        if xvv != V::X {
                            let expect = w.v1 & 1 == 1;
                            assert_eq!(xvv == V::One, expect);
                        }
                    }
                }
            }
        }
    }
}
