//! Non-enumerative robust path counting (the method of \[8\] the paper
//! builds on — Pomeranz & Reddy, ICCAD 1992).
//!
//! For a single two-pattern pair, the number of path delay faults the pair
//! robustly tests can be computed **without enumerating paths**: label
//! every line with the number of robustly-sensitized partial paths from a
//! transitioning primary input, exactly like Procedure 1 labels lines with
//! path counts, but restricted to the robustly-sensitized edge subgraph.
//! The sum over the primary outputs is the exact per-pair detection count.
//!
//! This is what makes the path-count reductions of Procedures 2 and 3
//! directly meaningful for circuits whose paths cannot be enumerated (the
//! paper's irs15850 has 23 million): coverage analysis stays linear in the
//! circuit size per pattern pair.
//!
//! Per-pair counts cannot simply be summed across pairs (a fault detected
//! twice would be double-counted — the limitation \[8\] engineers around);
//! use [`crate::pdf_campaign`] when an exact cumulative count over an
//! enumerable path set is needed.

use crate::robust::RobustAnalysis;
use crate::twopattern::LineWaves;
use sft_netlist::{Circuit, GateKind};

/// The number of path delay faults robustly tested by pattern-pair `bit`
/// of a simulated block — computed non-enumeratively in `O(lines)`.
///
/// `waves` and `analysis` must come from the same simulation of `circuit`.
///
/// # Panics
///
/// Panics if the circuit is cyclic, `waves.len() != circuit.len()`, or
/// `bit >= 64`.
pub fn robust_count_for_pair(
    circuit: &Circuit,
    waves: &[LineWaves],
    analysis: &RobustAnalysis,
    bit: u32,
) -> u128 {
    assert_eq!(waves.len(), circuit.len(), "wave vector size mismatch");
    assert!(bit < 64, "pair index out of range");
    let mask = 1u64 << bit;
    let order = circuit.topo_order().expect("combinational circuit");
    let mut labels = vec![0u128; circuit.len()];
    for id in order {
        let node = circuit.node(id);
        labels[id.index()] = match node.kind() {
            GateKind::Input => {
                // A clean transition at the PI launches one partial path.
                u128::from(
                    waves[id.index()].transition() & waves[id.index()].glitch_free & mask != 0,
                )
            }
            GateKind::Const0 | GateKind::Const1 => 0,
            _ => node
                .fanins()
                .iter()
                .enumerate()
                .filter(|&(pin, _)| analysis.pin_mask(id, pin as u8) & mask != 0)
                .fold(0u128, |acc, (_, f)| acc.saturating_add(labels[f.index()])),
        };
    }
    circuit.outputs().iter().fold(0u128, |acc, o| acc.saturating_add(labels[o.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_paths, robust_detection_masks, TwoPatternSim};
    use sft_netlist::bench_format::parse;

    /// Cross-validation: the non-enumerative count equals the number of
    /// paths the enumerative checker marks detected, for every pair of a
    /// random block, on several circuits.
    #[test]
    fn matches_enumerative_count() {
        let sources = [
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = OR(b, c)\ny = AND(a, t)\n",
            "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
        ];
        for (ci, src) in sources.iter().enumerate() {
            let c = parse(src, format!("c{ci}")).unwrap();
            let paths = enumerate_paths(&c, 10_000).unwrap();
            let sim = TwoPatternSim::new(&c);
            // A deterministic pseudo-random block.
            let n = c.inputs().len();
            let v1: Vec<u64> =
                (0..n as u64).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)).collect();
            let v2: Vec<u64> =
                (0..n as u64).map(|i| 0xbf58_476d_1ce4_e5b9u64.wrapping_mul(i + 3)).collect();
            let waves = sim.simulate(&v1, &v2);
            let analysis = robust_detection_masks(&c, &waves);
            for bit in 0..64u32 {
                let fast = robust_count_for_pair(&c, &waves, &analysis, bit);
                let slow: u128 = paths
                    .iter()
                    .map(|p| {
                        let (r, f) = analysis.path_masks(&waves, p);
                        u128::from((r | f) >> bit & 1)
                    })
                    .sum();
                assert_eq!(fast, slow, "circuit {ci} pair {bit}");
            }
        }
    }

    /// On a circuit with an astronomically large path count, the
    /// non-enumerative count still runs (and is bounded by the total).
    #[test]
    fn scales_past_enumeration() {
        // 24 doubling stages: 2^24 paths — too many to enumerate here.
        let mut src = String::from("INPUT(a)\nOUTPUT(y24)\n");
        src.push_str("y0 = BUF(a)\n");
        for i in 0..24 {
            src.push_str(&format!(
                "l{i} = BUF(y{i})\nr{i} = NOT(y{i})\ny{} = OR(l{i}, r{i})\n",
                i + 1
            ));
        }
        let c = parse(&src, "wide").unwrap();
        assert_eq!(c.path_count(), 1 << 24);
        let sim = TwoPatternSim::new(&c);
        let waves = sim.simulate(&[0], &[u64::MAX]);
        let analysis = robust_detection_masks(&c, &waves);
        let count = robust_count_for_pair(&c, &waves, &analysis, 0);
        assert!(count <= 1 << 24);
    }
}
