//! The transition (gate-delay) fault model.
//!
//! A transition fault is a gross delay lumped at one line: `slow-to-rise`
//! or `slow-to-fall`. A two-pattern pair `<v1, v2>` detects it iff the
//! line has the corresponding transition and the line's *stuck-at* fault at
//! the initial value is detected by `v2` (the classical reduction of
//! transition-fault testing to stuck-at testing with a launch condition).
//!
//! The paper works with the strictly more expressive path delay fault
//! model; transition faults are provided as the cheaper industrial
//! companion metric — their count is linear in the circuit size, so they
//! survive resynthesis comparisons even when paths cannot be enumerated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_netlist::{Circuit, GateKind, NodeId};
use sft_sim::{Fault, FaultSim, Simulator};
use std::fmt;

/// A transition fault on a stem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionFault {
    /// The affected line.
    pub line: NodeId,
    /// `true` = slow-to-rise (needs a rising transition), `false` =
    /// slow-to-fall.
    pub slow_to_rise: bool,
}

impl fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slow-to-{}", self.line, if self.slow_to_rise { "rise" } else { "fall" })
    }
}

/// All stem transition faults of the live logic (two per line).
pub fn transition_fault_list(circuit: &Circuit) -> Vec<TransitionFault> {
    let live = circuit.live_mask();
    circuit
        .iter()
        .filter(|(id, n)| {
            live[id.index()] && !matches!(n.kind(), GateKind::Const0 | GateKind::Const1)
        })
        .flat_map(|(id, _)| {
            [
                TransitionFault { line: id, slow_to_rise: true },
                TransitionFault { line: id, slow_to_rise: false },
            ]
        })
        .collect()
}

/// Result of a random two-pattern transition-fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionCampaignResult {
    /// Total transition faults.
    pub total_faults: usize,
    /// Faults detected.
    pub detected: usize,
    /// Pairs applied.
    pub pairs_applied: u64,
}

impl TransitionCampaignResult {
    /// Coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }
}

/// Runs a random two-pattern transition-fault campaign: for each pair, a
/// fault `slow-to-rise on ℓ` is detected iff `v1` sets `ℓ` to 0, `v2` sets
/// it to 1, and `ℓ s-a-0` is detected by `v2` (dually for slow-to-fall).
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn transition_campaign(
    circuit: &Circuit,
    max_pairs: u64,
    seed: u64,
) -> TransitionCampaignResult {
    let faults = transition_fault_list(circuit);
    let sim = Simulator::new(circuit);
    let mut fsim = FaultSim::new(circuit);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = circuit.inputs().len();
    let mut detected = vec![false; faults.len()];
    let mut total_detected = 0usize;
    let mut applied = 0u64;
    let mut v1 = vec![0u64; n];
    let mut v2 = vec![0u64; n];
    let mut launch_values = Vec::new();

    // The stuck-at faults underlying each transition fault.
    let stuck: Vec<Fault> = faults.iter().map(|t| Fault::stem(t.line, !t.slow_to_rise)).collect();

    while applied < max_pairs && total_detected < faults.len() {
        let block = (max_pairs - applied).min(64);
        for i in 0..n {
            v1[i] = rng.gen();
            v2[i] = rng.gen();
        }
        sim.eval_into(&v1, &mut launch_values);
        // Detection of the underlying stuck-at faults by v2, per pair bit.
        // detect_block gives the FIRST detecting bit only, so iterate: any
        // detecting bit where the launch condition also holds counts. To
        // stay exact we re-query per fault with the launch mask applied:
        // the launch condition is a per-bit mask; a fault is detected if
        // its stuck-at diff mask intersects the launch mask. detect_block
        // only exposes the first bit, so run it on the masked subset by
        // checking that first bit, then falling back to a per-fault scan
        // over the remaining bits via repeated calls is wasteful — instead
        // we exploit that stuck-at detection of `ℓ s-a-v` by a vector only
        // depends on that vector: the set of detecting bits is exactly the
        // diff mask. We recover the full mask by injecting the fault once.
        let alive: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
        let alive_stuck: Vec<Fault> = alive.iter().map(|&i| stuck[i]).collect();
        let masks = fsim.detect_masks(&alive_stuck, &v2);
        for (slot, &fi) in alive.iter().enumerate() {
            let t = faults[fi];
            let lv = launch_values[t.line.index()];
            // Launch: v1 value is the pre-transition value.
            let launch_mask = if t.slow_to_rise { !lv } else { lv };
            let usable = masks[slot] & launch_mask & mask_low(block);
            if usable != 0 {
                detected[fi] = true;
                total_detected += 1;
            }
        }
        applied += block;
    }

    TransitionCampaignResult {
        total_faults: faults.len(),
        detected: total_detected,
        pairs_applied: applied,
    }
}

fn mask_low(bits: u64) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn c17_fully_transition_testable() {
        let c = parse(C17, "c17").unwrap();
        let r = transition_campaign(&c, 1 << 13, 3);
        // c17 is fully testable for stuck-at faults and every line can make
        // both transitions, so coverage saturates.
        assert_eq!(r.detected, r.total_faults, "{r:?}");
    }

    #[test]
    fn redundant_stuck_at_blocks_transition() {
        // t s-a-0 redundant => t slow-to-rise undetectable.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        let r = transition_campaign(&c, 1 << 12, 7);
        assert!(r.detected < r.total_faults);
    }

    #[test]
    fn deterministic() {
        let c = parse(C17, "c17").unwrap();
        let a = transition_campaign(&c, 512, 9);
        let b = transition_campaign(&c, 512, 9);
        assert_eq!(a, b);
    }

    /// Cross-check against a brute-force per-pair evaluation on a small
    /// circuit: simulate v1 and v2 independently and apply the definition.
    #[test]
    fn agrees_with_definition() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        let c = parse(src, "and").unwrap();
        let faults = transition_fault_list(&c);
        // Exhaust all 16 pairs.
        let mut covered = vec![false; faults.len()];
        for p1 in 0..4u64 {
            for p2 in 0..4u64 {
                let v1 = vec![p1 & 1, p1 >> 1 & 1];
                let v2 = vec![p2 & 1, p2 >> 1 & 1];
                let sim = Simulator::new(&c);
                let launch = sim.eval(&v1);
                let capture = sim.eval(&v2);
                let mut fsim = FaultSim::new(&c);
                for (fi, t) in faults.iter().enumerate() {
                    let lv = launch[t.line.index()] & 1 == 1;
                    let cv = capture[t.line.index()] & 1 == 1;
                    let transitions = t.slow_to_rise && !lv && cv || !t.slow_to_rise && lv && !cv;
                    let sa = Fault::stem(t.line, !t.slow_to_rise);
                    let det = fsim.detect_block(&[sa], &v2)[0] == Some(0);
                    if transitions && det {
                        covered[fi] = true;
                    }
                }
            }
        }
        // The campaign with enough random pairs finds exactly the same set.
        let r = transition_campaign(&c, 4096, 5);
        assert_eq!(r.detected, covered.iter().filter(|&&x| x).count());
    }
}
