//! The path delay fault (PDF) substrate: path enumeration, a two-pattern
//! hazard-tracking algebra, robust sensitization analysis and random
//! two-pattern campaigns.
//!
//! The paper's motivation for reducing path counts is the path delay fault
//! model: every physical input-to-output path, in both transition
//! directions, is a fault. This crate provides:
//!
//! - [`PathSet`] / [`enumerate_paths`] — explicit enumeration of all
//!   input-to-output paths (with a hard cap, since path counts explode);
//! - [`TwoPatternSim`] — 64-way parallel simulation of `<v1, v2>` pattern
//!   pairs computing, per line, the two values plus a conservative
//!   *glitch-free* flag;
//! - robust sensitization masks per gate input (the classical robust
//!   propagation conditions), and per-path robust detection;
//! - [`pdf_campaign`] — the random two-pattern robust-coverage experiment of
//!   Table 7 of the paper.
//!
//! # Examples
//!
//! ```
//! use sft_delay::enumerate_paths;
//! use sft_netlist::bench_format::parse;
//!
//! let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
//! let paths = enumerate_paths(&c, 100)?;
//! assert_eq!(paths.len(), 2);          // a->y and b->y
//! assert_eq!(paths.fault_count(), 4);  // two transition directions each
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod campaign;
mod nonenumerative;
mod paths;
mod robust;
mod statistics;
mod transition;
mod twopattern;

pub use campaign::{
    pair_block, pdf_campaign, pdf_campaign_on, pdf_campaign_on_with_budget,
    pdf_campaign_with_budget, PdfCampaignConfig, PdfCampaignResult,
};
pub use nonenumerative::robust_count_for_pair;
pub use paths::{enumerate_paths, Path, PathEnumError, PathSet};
pub use robust::{robust_detection_masks, RobustAnalysis};
pub use statistics::{path_length_histogram, PathLengthHistogram};
pub use transition::{
    transition_campaign, transition_fault_list, TransitionCampaignResult, TransitionFault,
};
pub use twopattern::{LineWaves, TwoPatternSim};
