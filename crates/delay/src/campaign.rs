//! Random two-pattern robust PDF coverage campaigns (the Table 7
//! experiment).
//!
//! Like the stuck-at campaign in `sft-sim`, the pair words of 64-pair
//! block `b` are a pure function of `(seed, b)`, blocks are simulated in
//! chunks of [`PdfCampaignConfig::jobs`] concurrent workers, and results
//! merge in block order — so coverage is bit-identical at any thread
//! count.

use crate::{enumerate_paths, robust_detection_masks, PathEnumError, PathSet, TwoPatternSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_budget::{Budget, Exhausted, StopReason};
use sft_netlist::Circuit;
use sft_par::{derive_seed, parallel_map, Jobs};

/// Configuration of a random two-pattern campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdfCampaignConfig {
    /// Maximum number of pattern pairs to apply.
    pub max_pairs: u64,
    /// Stop when no new fault has been detected for this many consecutive
    /// pairs (the paper used 100,000; scale to your budget). 0 disables.
    pub plateau: u64,
    /// RNG seed (equal seeds = identical pair sequences, making
    /// before/after-resynthesis comparisons fair).
    pub seed: u64,
    /// Cap on the number of enumerated paths.
    pub path_limit: usize,
    /// Worker threads simulating pair blocks concurrently. Results are
    /// bit-identical at any value; [`Jobs::serial`] (the default) spawns no
    /// threads. Budget steps are granted on the main thread *before* a
    /// block is dispatched, so a step limit is never overshot.
    pub jobs: Jobs,
}

impl Default for PdfCampaignConfig {
    fn default() -> Self {
        PdfCampaignConfig {
            max_pairs: 1 << 16,
            plateau: 1 << 14,
            seed: 0x5f7,
            path_limit: 1 << 22,
            jobs: Jobs::serial(),
        }
    }
}

/// Result of a random two-pattern robust PDF campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdfCampaignResult {
    /// Total number of path delay faults (2 × paths).
    pub total_faults: usize,
    /// Number of robustly detected faults.
    pub detected: usize,
    /// The last pair index (0-based) that detected a new fault.
    pub last_effective_pair: Option<u64>,
    /// Number of pairs applied.
    pub pairs_applied: u64,
    /// Why the campaign stopped: [`StopReason::Converged`] (all faults
    /// detected, or the plateau heuristic fired), [`StopReason::MaxPasses`]
    /// (the pair cap was reached) or a budget-exhaustion reason. Coverage
    /// accumulated before an early stop is always retained.
    pub stop_reason: StopReason,
}

impl PdfCampaignResult {
    /// Robust PDF coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }
}

/// Runs a random two-pattern robust PDF campaign on `circuit`.
///
/// Pairs are drawn uniformly (both vectors independent) in blocks of 64.
/// Detection is exact per the robust sensitization conditions of
/// [`robust_detection_masks`].
///
/// # Errors
///
/// Returns [`PathEnumError::TooManyPaths`] when the circuit exceeds
/// `config.path_limit` paths.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn pdf_campaign(
    circuit: &Circuit,
    config: &PdfCampaignConfig,
) -> Result<PdfCampaignResult, PathEnumError> {
    pdf_campaign_with_budget(circuit, config, &Budget::unlimited())
}

/// Runs a random two-pattern robust PDF campaign under an effort
/// [`Budget`].
///
/// The budget is checked — and one step consumed — per 64-pair block;
/// exhaustion stops the campaign and reports the coverage reached so far
/// with the matching [`PdfCampaignResult::stop_reason`].
///
/// # Errors
///
/// Returns [`PathEnumError::TooManyPaths`] when the circuit exceeds
/// `config.path_limit` paths.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn pdf_campaign_with_budget(
    circuit: &Circuit,
    config: &PdfCampaignConfig,
    budget: &Budget,
) -> Result<PdfCampaignResult, PathEnumError> {
    let paths = enumerate_paths(circuit, config.path_limit)?;
    Ok(pdf_campaign_on_with_budget(circuit, &paths, config, budget))
}

/// Like [`pdf_campaign`] but over an already-enumerated [`PathSet`].
///
/// # Panics
///
/// Panics if the circuit is cyclic or `paths` was enumerated from a
/// different circuit.
pub fn pdf_campaign_on(
    circuit: &Circuit,
    paths: &PathSet,
    config: &PdfCampaignConfig,
) -> PdfCampaignResult {
    pdf_campaign_on_with_budget(circuit, paths, config, &Budget::unlimited())
}

/// Like [`pdf_campaign_with_budget`] but over an already-enumerated
/// [`PathSet`].
///
/// # Panics
///
/// Panics if the circuit is cyclic or `paths` was enumerated from a
/// different circuit.
pub fn pdf_campaign_on_with_budget(
    circuit: &Circuit,
    paths: &PathSet,
    config: &PdfCampaignConfig,
    budget: &Budget,
) -> PdfCampaignResult {
    let sim = TwoPatternSim::new(circuit);
    let n_inputs = circuit.inputs().len();
    let mut detected = vec![false; paths.fault_count()];
    let mut applied: u64 = 0;
    let mut last_effective: Option<u64> = None;
    let mut total_detected = 0usize;
    let mut block_index: u64 = 0;

    // Simulates one 64-pair block and returns the indices of the path
    // delay faults it robustly detects. Pure in `(seed, block)` and
    // read-only on the simulator, so blocks fan out to worker threads.
    let run_block = |block: u64| -> Vec<u32> {
        let (v1, v2) = pair_block(config.seed, block, n_inputs);
        let mut waves = Vec::new();
        sim.simulate_into(&v1, &v2, &mut waves);
        let analysis = robust_detection_masks(circuit, &waves);
        let mut local = vec![false; paths.fault_count()];
        analysis.accumulate(&waves, paths, &mut local);
        (0..local.len()).filter(|&i| local[i]).map(|i| i as u32).collect()
    };

    let mut stop = StopReason::MaxPasses;
    'campaign: while applied < config.max_pairs {
        if total_detected == detected.len() {
            stop = StopReason::Converged;
            break;
        }
        // One chunk: up to `jobs` blocks, each granted one budget step on
        // this thread *before* dispatch (a step limit is never overshot).
        let blocks_left = (config.max_pairs - applied).div_ceil(64);
        let want = (config.jobs.get() as u64).min(blocks_left);
        let mut blocks: Vec<(u64, u64, u64)> = Vec::with_capacity(want as usize);
        let mut exhausted: Option<Exhausted> = None;
        for i in 0..want {
            if let Err(e) = budget.consume(1) {
                exhausted = Some(e);
                break;
            }
            let offset = applied + i * 64;
            blocks.push((block_index + i, offset, (config.max_pairs - offset).min(64)));
        }
        let detections: Vec<Vec<u32>> =
            parallel_map(config.jobs, &blocks, |_, &(b, _, _)| run_block(b));
        // Merge strictly in block order; the stop rules run per block
        // exactly as the serial loop would (later blocks of a stopped
        // chunk are discarded).
        for (&(_, offset, size), block_detected) in blocks.iter().zip(&detections) {
            let mut new = 0usize;
            for &fi in block_detected {
                if !detected[fi as usize] {
                    detected[fi as usize] = true;
                    new += 1;
                }
            }
            if new > 0 {
                total_detected += new;
                // Block-granular effectiveness index (the exact bit within
                // the block is not tracked; the paper's statistic is coarse
                // anyway).
                last_effective = Some(offset + size - 1);
            }
            applied = offset + size;
            block_index += 1;
            if total_detected == detected.len() {
                stop = StopReason::Converged;
                break 'campaign;
            }
            if config.plateau > 0 {
                let plateaued = match last_effective {
                    Some(l) => applied.saturating_sub(l) > config.plateau,
                    None => applied > config.plateau,
                };
                if plateaued {
                    stop = StopReason::Converged;
                    break 'campaign;
                }
            }
        }
        if let Some(e) = exhausted {
            stop = e.into();
            break;
        }
    }
    if total_detected == detected.len() {
        stop = StopReason::Converged;
    }

    PdfCampaignResult {
        total_faults: detected.len(),
        detected: total_detected,
        last_effective_pair: last_effective,
        pairs_applied: applied,
        stop_reason: stop,
    }
}

/// The 64 pattern pairs of pair block `block` — `(v1 words, v2 words)`,
/// one word per primary input per vector — derived purely from
/// `(seed, block)`, so any worker regenerates exactly the pairs the
/// single-threaded loop would draw.
pub fn pair_block(seed: u64, block: u64, num_inputs: usize) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, block));
    let v1 = (0..num_inputs).map(|_| rng.gen()).collect();
    let v2 = (0..num_inputs).map(|_| rng.gen()).collect();
    (v1, v2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn c17_pdf_coverage_positive_and_deterministic() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig {
            max_pairs: 2048,
            plateau: 0,
            seed: 7,
            path_limit: 1000,
            ..Default::default()
        };
        let a = pdf_campaign(&c, &cfg).unwrap();
        let b = pdf_campaign(&c, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total_faults, 22);
        assert!(a.detected > 0, "some robust PDFs must be detectable in c17");
        assert!(a.detected <= a.total_faults);
    }

    #[test]
    fn single_and_gate_fully_robustly_testable() {
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and").unwrap();
        let cfg = PdfCampaignConfig {
            max_pairs: 4096,
            plateau: 0,
            seed: 3,
            path_limit: 100,
            ..Default::default()
        };
        let r = pdf_campaign(&c, &cfg).unwrap();
        assert_eq!(r.total_faults, 4);
        assert_eq!(r.detected, 4, "all four PDFs of a bare AND are robustly testable");
    }

    #[test]
    fn path_limit_propagates() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig {
            max_pairs: 64,
            plateau: 0,
            seed: 3,
            path_limit: 4,
            ..Default::default()
        };
        assert!(pdf_campaign(&c, &cfg).is_err());
    }

    #[test]
    fn plateau_terminates() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig {
            max_pairs: u64::MAX / 2,
            plateau: 512,
            seed: 5,
            path_limit: 100,
            ..Default::default()
        };
        let r = pdf_campaign(&c, &cfg).unwrap();
        assert!(r.pairs_applied < u64::MAX / 2);
        assert_eq!(r.stop_reason, StopReason::Converged);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let c = parse(C17, "c17").unwrap();
        for (max_pairs, plateau) in [(2048, 0), (1 << 15, 512), (100, 0)] {
            let serial = pdf_campaign(
                &c,
                &PdfCampaignConfig {
                    max_pairs,
                    plateau,
                    seed: 7,
                    path_limit: 1000,
                    ..Default::default()
                },
            )
            .unwrap();
            for jobs in [2, 3, 8] {
                let par = pdf_campaign(
                    &c,
                    &PdfCampaignConfig {
                        max_pairs,
                        plateau,
                        seed: 7,
                        path_limit: 1000,
                        jobs: Jobs::new(jobs),
                    },
                )
                .unwrap();
                assert_eq!(serial, par, "jobs={jobs} max={max_pairs} plateau={plateau}");
            }
        }
    }

    #[test]
    fn pre_expired_deadline_applies_no_pairs() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig {
            max_pairs: 2048,
            plateau: 0,
            seed: 7,
            path_limit: 1000,
            ..Default::default()
        };
        let budget = Budget::unlimited().with_time_limit(std::time::Duration::ZERO);
        let r = pdf_campaign_with_budget(&c, &cfg, &budget).unwrap();
        assert_eq!(r.stop_reason, StopReason::Deadline);
        assert_eq!(r.pairs_applied, 0);
        assert_eq!(r.detected, 0);
    }

    #[test]
    fn step_budget_caps_pattern_blocks() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig {
            max_pairs: 1 << 20,
            plateau: 0,
            seed: 7,
            path_limit: 1000,
            ..Default::default()
        };
        // One step per 64-pair block: two blocks, then exhaustion.
        let budget = Budget::unlimited().with_step_limit(2);
        let full = pdf_campaign(&c, &cfg).unwrap();
        let r = pdf_campaign_on_with_budget(
            &c,
            &enumerate_paths(&c, cfg.path_limit).unwrap(),
            &cfg,
            &budget,
        );
        let _ = full;
        assert!(r.pairs_applied <= 2 * 64, "{} pairs", r.pairs_applied);
        assert!(matches!(r.stop_reason, StopReason::StepBudget | StopReason::Converged));
        if r.stop_reason == StopReason::StepBudget {
            assert!(r.detected <= r.total_faults);
        }
    }
}
