//! Random two-pattern robust PDF coverage campaigns (the Table 7
//! experiment).

use crate::{enumerate_paths, robust_detection_masks, PathEnumError, PathSet, TwoPatternSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_budget::{Budget, StopReason};
use sft_netlist::Circuit;

/// Configuration of a random two-pattern campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdfCampaignConfig {
    /// Maximum number of pattern pairs to apply.
    pub max_pairs: u64,
    /// Stop when no new fault has been detected for this many consecutive
    /// pairs (the paper used 100,000; scale to your budget). 0 disables.
    pub plateau: u64,
    /// RNG seed (equal seeds = identical pair sequences, making
    /// before/after-resynthesis comparisons fair).
    pub seed: u64,
    /// Cap on the number of enumerated paths.
    pub path_limit: usize,
}

impl Default for PdfCampaignConfig {
    fn default() -> Self {
        PdfCampaignConfig { max_pairs: 1 << 16, plateau: 1 << 14, seed: 0x5f7, path_limit: 1 << 22 }
    }
}

/// Result of a random two-pattern robust PDF campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdfCampaignResult {
    /// Total number of path delay faults (2 × paths).
    pub total_faults: usize,
    /// Number of robustly detected faults.
    pub detected: usize,
    /// The last pair index (0-based) that detected a new fault.
    pub last_effective_pair: Option<u64>,
    /// Number of pairs applied.
    pub pairs_applied: u64,
    /// Why the campaign stopped: [`StopReason::Converged`] (all faults
    /// detected, or the plateau heuristic fired), [`StopReason::MaxPasses`]
    /// (the pair cap was reached) or a budget-exhaustion reason. Coverage
    /// accumulated before an early stop is always retained.
    pub stop_reason: StopReason,
}

impl PdfCampaignResult {
    /// Robust PDF coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }
}

/// Runs a random two-pattern robust PDF campaign on `circuit`.
///
/// Pairs are drawn uniformly (both vectors independent) in blocks of 64.
/// Detection is exact per the robust sensitization conditions of
/// [`robust_detection_masks`].
///
/// # Errors
///
/// Returns [`PathEnumError::TooManyPaths`] when the circuit exceeds
/// `config.path_limit` paths.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn pdf_campaign(
    circuit: &Circuit,
    config: &PdfCampaignConfig,
) -> Result<PdfCampaignResult, PathEnumError> {
    pdf_campaign_with_budget(circuit, config, &Budget::unlimited())
}

/// Runs a random two-pattern robust PDF campaign under an effort
/// [`Budget`].
///
/// The budget is checked — and one step consumed — per 64-pair block;
/// exhaustion stops the campaign and reports the coverage reached so far
/// with the matching [`PdfCampaignResult::stop_reason`].
///
/// # Errors
///
/// Returns [`PathEnumError::TooManyPaths`] when the circuit exceeds
/// `config.path_limit` paths.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn pdf_campaign_with_budget(
    circuit: &Circuit,
    config: &PdfCampaignConfig,
    budget: &Budget,
) -> Result<PdfCampaignResult, PathEnumError> {
    let paths = enumerate_paths(circuit, config.path_limit)?;
    Ok(pdf_campaign_on_with_budget(circuit, &paths, config, budget))
}

/// Like [`pdf_campaign`] but over an already-enumerated [`PathSet`].
///
/// # Panics
///
/// Panics if the circuit is cyclic or `paths` was enumerated from a
/// different circuit.
pub fn pdf_campaign_on(
    circuit: &Circuit,
    paths: &PathSet,
    config: &PdfCampaignConfig,
) -> PdfCampaignResult {
    pdf_campaign_on_with_budget(circuit, paths, config, &Budget::unlimited())
}

/// Like [`pdf_campaign_with_budget`] but over an already-enumerated
/// [`PathSet`].
///
/// # Panics
///
/// Panics if the circuit is cyclic or `paths` was enumerated from a
/// different circuit.
pub fn pdf_campaign_on_with_budget(
    circuit: &Circuit,
    paths: &PathSet,
    config: &PdfCampaignConfig,
    budget: &Budget,
) -> PdfCampaignResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sim = TwoPatternSim::new(circuit);
    let n_inputs = circuit.inputs().len();
    let mut detected = vec![false; paths.fault_count()];
    let mut v1 = vec![0u64; n_inputs];
    let mut v2 = vec![0u64; n_inputs];
    let mut waves = Vec::new();
    let mut applied: u64 = 0;
    let mut last_effective: Option<u64> = None;
    let mut total_detected = 0usize;

    let mut stop = StopReason::MaxPasses;
    while applied < config.max_pairs {
        if total_detected == detected.len() {
            stop = StopReason::Converged;
            break;
        }
        if let Err(e) = budget.consume(1) {
            stop = e.into();
            break;
        }
        let block = (config.max_pairs - applied).min(64);
        for i in 0..n_inputs {
            v1[i] = rng.gen();
            v2[i] = rng.gen();
        }
        sim.simulate_into(&v1, &v2, &mut waves);
        let analysis = robust_detection_masks(circuit, &waves);
        let new = analysis.accumulate(&waves, paths, &mut detected);
        if new > 0 {
            total_detected += new;
            // Block-granular effectiveness index (the exact bit within the
            // block is not tracked; the paper's statistic is coarse anyway).
            last_effective = Some(applied + block - 1);
        }
        applied += block;
        if config.plateau > 0 {
            let plateaued = match last_effective {
                Some(l) => applied.saturating_sub(l) > config.plateau,
                None => applied > config.plateau,
            };
            if plateaued {
                stop = StopReason::Converged;
                break;
            }
        }
    }
    if total_detected == detected.len() {
        stop = StopReason::Converged;
    }

    PdfCampaignResult {
        total_faults: detected.len(),
        detected: total_detected,
        last_effective_pair: last_effective,
        pairs_applied: applied,
        stop_reason: stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn c17_pdf_coverage_positive_and_deterministic() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig { max_pairs: 2048, plateau: 0, seed: 7, path_limit: 1000 };
        let a = pdf_campaign(&c, &cfg).unwrap();
        let b = pdf_campaign(&c, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total_faults, 22);
        assert!(a.detected > 0, "some robust PDFs must be detectable in c17");
        assert!(a.detected <= a.total_faults);
    }

    #[test]
    fn single_and_gate_fully_robustly_testable() {
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and").unwrap();
        let cfg = PdfCampaignConfig { max_pairs: 4096, plateau: 0, seed: 3, path_limit: 100 };
        let r = pdf_campaign(&c, &cfg).unwrap();
        assert_eq!(r.total_faults, 4);
        assert_eq!(r.detected, 4, "all four PDFs of a bare AND are robustly testable");
    }

    #[test]
    fn path_limit_propagates() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig { max_pairs: 64, plateau: 0, seed: 3, path_limit: 4 };
        assert!(pdf_campaign(&c, &cfg).is_err());
    }

    #[test]
    fn plateau_terminates() {
        let c = parse(C17, "c17").unwrap();
        let cfg =
            PdfCampaignConfig { max_pairs: u64::MAX / 2, plateau: 512, seed: 5, path_limit: 100 };
        let r = pdf_campaign(&c, &cfg).unwrap();
        assert!(r.pairs_applied < u64::MAX / 2);
        assert_eq!(r.stop_reason, StopReason::Converged);
    }

    #[test]
    fn pre_expired_deadline_applies_no_pairs() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig { max_pairs: 2048, plateau: 0, seed: 7, path_limit: 1000 };
        let budget = Budget::unlimited().with_time_limit(std::time::Duration::ZERO);
        let r = pdf_campaign_with_budget(&c, &cfg, &budget).unwrap();
        assert_eq!(r.stop_reason, StopReason::Deadline);
        assert_eq!(r.pairs_applied, 0);
        assert_eq!(r.detected, 0);
    }

    #[test]
    fn step_budget_caps_pattern_blocks() {
        let c = parse(C17, "c17").unwrap();
        let cfg = PdfCampaignConfig { max_pairs: 1 << 20, plateau: 0, seed: 7, path_limit: 1000 };
        // One step per 64-pair block: two blocks, then exhaustion.
        let budget = Budget::unlimited().with_step_limit(2);
        let full = pdf_campaign(&c, &cfg).unwrap();
        let r = pdf_campaign_on_with_budget(
            &c,
            &enumerate_paths(&c, cfg.path_limit).unwrap(),
            &cfg,
            &budget,
        );
        let _ = full;
        assert!(r.pairs_applied <= 2 * 64, "{} pairs", r.pairs_applied);
        assert!(matches!(r.stop_reason, StopReason::StepBudget | StopReason::Converged));
        if r.stop_reason == StopReason::StepBudget {
            assert!(r.detected <= r.total_faults);
        }
    }
}
