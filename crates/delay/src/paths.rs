//! Explicit enumeration of input-to-output paths.

use sft_netlist::{Circuit, GateKind, NodeId};
use std::fmt;

/// One physical path from a primary input to a primary output.
///
/// A path is the start node followed by a sequence of `(gate, pin)` hops:
/// hop `k` enters `gate` through fanin position `pin`, whose driver is the
/// previous element of the path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// The primary input where the path starts.
    pub start: NodeId,
    /// The gates traversed, with the entering pin. The last gate drives a
    /// primary output.
    pub hops: Vec<(NodeId, u8)>,
}

impl Path {
    /// Number of gates on the path.
    pub fn gate_count(&self) -> usize {
        self.hops.len()
    }

    /// The last node of the path (the output node), or the start for a
    /// degenerate input-is-output path.
    pub fn end(&self) -> NodeId {
        self.hops.last().map_or(self.start, |&(g, _)| g)
    }

    /// The parity of inverting gates along the path: `true` if a rising
    /// transition at the start arrives as a falling transition at the end.
    pub fn inverts(&self, circuit: &Circuit) -> bool {
        self.hops.iter().filter(|&&(g, _)| circuit.node(g).kind().inverts()).count() % 2 == 1
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for (g, pin) in &self.hops {
            write!(f, " -{pin}-> {g}")?;
        }
        Ok(())
    }
}

/// Error from [`enumerate_paths`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathEnumError {
    /// The circuit has more paths than the requested cap.
    TooManyPaths {
        /// The cap that was exceeded.
        limit: usize,
        /// The exact total path count (from Procedure 1).
        actual: u128,
    },
}

impl fmt::Display for PathEnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathEnumError::TooManyPaths { limit, actual } => {
                write!(f, "circuit has {actual} paths, more than the enumeration cap {limit}")
            }
        }
    }
}

impl std::error::Error for PathEnumError {}

/// A dense set of enumerated paths with flattened edge storage, ready for
/// word-parallel robust analysis.
#[derive(Debug, Clone)]
pub struct PathSet {
    paths: Vec<Path>,
}

impl PathSet {
    /// The enumerated paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of path delay faults: two transition directions per path.
    pub fn fault_count(&self) -> usize {
        self.paths.len() * 2
    }

    /// Iterates over the paths.
    pub fn iter(&self) -> std::slice::Iter<'_, Path> {
        self.paths.iter()
    }
}

impl<'a> IntoIterator for &'a PathSet {
    type Item = &'a Path;
    type IntoIter = std::slice::Iter<'a, Path>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Enumerates every input-to-output path of `circuit`, up to `limit`.
///
/// The number of paths is first computed exactly with Procedure 1; if it
/// exceeds `limit` (or `usize::MAX`), no enumeration is attempted and
/// [`PathEnumError::TooManyPaths`] is returned — this mirrors the paper's
/// observation that enumerative methods stop scaling (\[8\]) and keeps memory
/// bounded.
///
/// Paths through constants do not exist (constants have no input paths);
/// a primary input that directly drives an output contributes a hop-free
/// path per output slot it drives.
///
/// # Errors
///
/// Returns [`PathEnumError::TooManyPaths`] when the exact path count
/// exceeds `limit`.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn enumerate_paths(circuit: &Circuit, limit: usize) -> Result<PathSet, PathEnumError> {
    let actual = circuit.path_count();
    if actual > limit as u128 {
        return Err(PathEnumError::TooManyPaths { limit, actual });
    }
    let mut paths = Vec::with_capacity(actual as usize);
    // DFS backward from each output slot, walking fanins.
    // stack of (node, pin-into-consumer) frames built forward on unwind:
    // simpler: recursive closure collecting hops in reverse.
    fn dfs(circuit: &Circuit, node: NodeId, suffix: &mut Vec<(NodeId, u8)>, out: &mut Vec<Path>) {
        let n = circuit.node(node);
        match n.kind() {
            GateKind::Input => {
                let mut hops: Vec<(NodeId, u8)> = suffix.iter().rev().copied().collect();
                hops.shrink_to_fit();
                out.push(Path { start: node, hops });
            }
            GateKind::Const0 | GateKind::Const1 => {}
            _ => {
                for (pin, &f) in n.fanins().iter().enumerate() {
                    suffix.push((node, pin as u8));
                    dfs(circuit, f, suffix, out);
                    suffix.pop();
                }
            }
        }
    }
    let mut suffix = Vec::new();
    for &o in circuit.outputs() {
        dfs(circuit, o, &mut suffix, &mut paths);
    }
    debug_assert_eq!(paths.len() as u128, actual, "enumeration must match Procedure 1");
    Ok(PathSet { paths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn c17_has_11_paths() {
        let c = parse(C17, "c17").unwrap();
        let p = enumerate_paths(&c, 1000).unwrap();
        assert_eq!(p.len(), 11);
        assert_eq!(p.len() as u128, c.path_count());
        assert_eq!(p.fault_count(), 22);
        // Every path ends at an output.
        for path in &p {
            assert!(c.outputs().contains(&path.end()), "path {path} must end at a PO");
        }
    }

    #[test]
    fn limit_enforced_without_enumeration() {
        let c = parse(C17, "c17").unwrap();
        match enumerate_paths(&c, 5) {
            Err(PathEnumError::TooManyPaths { limit: 5, actual: 11 }) => {}
            other => panic!("expected TooManyPaths, got {other:?}"),
        }
    }

    #[test]
    fn inversion_parity() {
        let src = "INPUT(a)\nOUTPUT(y)\nt = NOT(a)\ny = NAND(t, t)\n";
        let c = parse(src, "t").unwrap();
        let p = enumerate_paths(&c, 100).unwrap();
        // Two paths (through each NAND pin), each crossing NOT+NAND = even.
        assert_eq!(p.len(), 2);
        for path in &p {
            assert!(!path.inverts(&c));
        }
    }

    #[test]
    fn input_driving_output_directly() {
        let src = "INPUT(a)\nOUTPUT(a)\n";
        let c = parse(src, "wire").unwrap();
        let p = enumerate_paths(&c, 10).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.paths()[0].gate_count(), 0);
        assert_eq!(p.paths()[0].end(), c.inputs()[0]);
    }

    #[test]
    fn display_shows_pins() {
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let p = enumerate_paths(&c, 10).unwrap();
        let strings: Vec<String> = p.iter().map(|p| p.to_string()).collect();
        assert!(strings.iter().any(|s| s.contains("-0->")));
        assert!(strings.iter().any(|s| s.contains("-1->")));
    }
}
