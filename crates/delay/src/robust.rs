//! Robust path-delay-fault sensitization analysis.
//!
//! A two-pattern pair robustly tests a path delay fault if it detects the
//! fault regardless of delays elsewhere in the circuit. The classical
//! (Lin–Reddy) structural conditions, checked gate by gate along the path,
//! are:
//!
//! - every on-path line has a transition;
//! - at each on-path gate with controlling value `c`, when the on-path
//!   input's **final** value is non-controlling (a `c → c̄` transition),
//!   every off-path input must hold a steady, hazard-free non-controlling
//!   value; when the final value is controlling (`c̄ → c`), every off-path
//!   input only needs the non-controlling value on the final vector;
//! - at a parity (XOR/XNOR) gate, every off-path input must be steady and
//!   hazard-free (either value), since parity gates have no controlling
//!   value;
//! - buffers and inverters propagate unconditionally.
//!
//! The analysis is word-parallel: for 64 pattern pairs at once it computes,
//! per gate input pin, the mask of pairs under which a transition entering
//! that pin propagates robustly. A path is robustly sensitized by exactly
//! the AND of its pins' masks.

use crate::paths::PathSet;
use crate::twopattern::LineWaves;
use sft_netlist::{Circuit, GateKind};

/// Word-parallel robust-sensitization masks for one simulated block.
#[derive(Debug, Clone)]
pub struct RobustAnalysis {
    /// `masks[node][pin]`: pairs under which a transition entering `pin` of
    /// `node` propagates robustly through it.
    masks: Vec<Vec<u64>>,
}

impl RobustAnalysis {
    /// The robust-propagation mask for `pin` of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node or pin is out of range.
    pub fn pin_mask(&self, node: sft_netlist::NodeId, pin: u8) -> u64 {
        self.masks[node.index()][pin as usize]
    }

    /// Mask of pairs that robustly sensitize the whole `path` (still needs
    /// to be ANDed with the start line's clean-transition mask, which
    /// [`path_masks`](Self::path_masks) does for you).
    fn hops_mask(&self, path: &crate::Path) -> u64 {
        path.hops.iter().fold(u64::MAX, |acc, &(g, pin)| acc & self.masks[g.index()][pin as usize])
    }

    /// For one path: masks of pairs that robustly test its rising-launch
    /// and falling-launch faults (`(rising, falling)`, direction at the
    /// path's start).
    pub fn path_masks(&self, waves: &[LineWaves], path: &crate::Path) -> (u64, u64) {
        let hops = self.hops_mask(path);
        let start = waves[path.start.index()];
        (hops & start.rising(), hops & start.falling())
    }

    /// Updates a per-path-fault detection bitmap for a whole [`PathSet`].
    /// `detected` holds 2 bits per path: bit `2i` = rising at start of path
    /// `i`, bit `2i + 1` = falling.
    ///
    /// Returns the number of newly detected path faults.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len() != paths.len() * 2`.
    pub fn accumulate(&self, waves: &[LineWaves], paths: &PathSet, detected: &mut [bool]) -> usize {
        assert_eq!(detected.len(), paths.len() * 2, "detection bitmap size mismatch");
        let mut new = 0;
        for (i, path) in paths.iter().enumerate() {
            let need_r = !detected[2 * i];
            let need_f = !detected[2 * i + 1];
            if !need_r && !need_f {
                continue;
            }
            let (r, f) = self.path_masks(waves, path);
            if need_r && r != 0 {
                detected[2 * i] = true;
                new += 1;
            }
            if need_f && f != 0 {
                detected[2 * i + 1] = true;
                new += 1;
            }
        }
        new
    }
}

/// Computes the per-pin robust-propagation masks for one simulated block.
///
/// # Panics
///
/// Panics if `waves.len() != circuit.len()`.
pub fn robust_detection_masks(circuit: &Circuit, waves: &[LineWaves]) -> RobustAnalysis {
    assert_eq!(waves.len(), circuit.len(), "wave vector size mismatch");
    let mut masks: Vec<Vec<u64>> = Vec::with_capacity(circuit.len());
    for (_, node) in circuit.iter() {
        let kind = node.kind();
        let fanins = node.fanins();
        let mut pin_masks = vec![0u64; fanins.len()];
        match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => {}
            GateKind::Buf | GateKind::Not => {
                // Unconditional propagation of a transition.
                pin_masks[0] = waves[fanins[0].index()].transition();
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let c = kind.controlling_value().expect("and/or family");
                let c_mask = if c { u64::MAX } else { 0 };
                for pin in 0..fanins.len() {
                    let on = waves[fanins[pin].index()];
                    let mut all_steady_nc = u64::MAX;
                    let mut all_final_nc = u64::MAX;
                    for (q, f) in fanins.iter().enumerate() {
                        if q == pin {
                            continue;
                        }
                        let side = waves[f.index()];
                        let steady = !(side.v1 ^ side.v2);
                        let nc_v2 = !(side.v2 ^ !c_mask);
                        let nc_v1 = !(side.v1 ^ !c_mask);
                        all_steady_nc &= side.glitch_free & steady & nc_v1;
                        all_final_nc &= nc_v2;
                    }
                    let t = on.transition();
                    let final_nc = !(on.v2 ^ !c_mask);
                    // c -> c̄ on-path transition: side inputs steady nc.
                    // c̄ -> c: side inputs nc on final vector only.
                    pin_masks[pin] = t & ((final_nc & all_steady_nc) | (!final_nc & all_final_nc));
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                for pin in 0..fanins.len() {
                    let on = waves[fanins[pin].index()];
                    let mut all_steady_gf = u64::MAX;
                    for (q, f) in fanins.iter().enumerate() {
                        if q == pin {
                            continue;
                        }
                        let side = waves[f.index()];
                        let steady = !(side.v1 ^ side.v2);
                        all_steady_gf &= side.glitch_free & steady;
                    }
                    pin_masks[pin] = on.transition() & all_steady_gf;
                }
            }
        }
        masks.push(pin_masks);
    }
    RobustAnalysis { masks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_paths, TwoPatternSim};
    use sft_netlist::bench_format::parse;

    fn analyze(
        src: &str,
        v1: &[bool],
        v2: &[bool],
    ) -> (sft_netlist::Circuit, Vec<LineWaves>, RobustAnalysis, PathSet) {
        let c = parse(src, "t").unwrap();
        let sim = TwoPatternSim::new(&c);
        let w1: Vec<u64> = v1.iter().map(|&b| u64::from(b)).collect();
        let w2: Vec<u64> = v2.iter().map(|&b| u64::from(b)).collect();
        let waves = sim.simulate(&w1, &w2);
        let analysis = robust_detection_masks(&c, &waves);
        let paths = enumerate_paths(&c, 10_000).unwrap();
        (c, waves, analysis, paths)
    }

    #[test]
    fn and_gate_robust_conditions() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        // Rising a with steady b=1: robust for the a-path.
        let (_, waves, analysis, paths) = analyze(src, &[false, true], &[true, true]);
        let a_path = paths.iter().position(|p| p.hops[0].1 == 0).unwrap();
        let (r, f) = analysis.path_masks(&waves, &paths.paths()[a_path]);
        assert_eq!(r & 1, 1);
        assert_eq!(f & 1, 0);
        // Falling a (final value controlling) with b rising late: the
        // final-vector-only condition applies: b v2=1 suffices.
        let (_, waves, analysis, paths) = analyze(src, &[true, false], &[false, true]);
        let p = &paths.paths()[a_path];
        let (r, f) = analysis.path_masks(&waves, p);
        assert_eq!(f & 1, 1, "falling on-path with final nc side ok");
        assert_eq!(r & 1, 0);
    }

    #[test]
    fn non_robust_when_side_input_glitches() {
        // y = AND(a, t), t = OR(b, c) with b falling, c rising: t steady-1
        // but hazardous; a rising through AND must NOT be robust.
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = OR(b, c)\ny = AND(a, t)\n";
        let (c, waves, analysis, paths) = analyze(src, &[false, true, false], &[true, false, true]);
        let a = c.inputs()[0];
        let a_path = paths.iter().position(|p| p.start == a).unwrap();
        let (r, _) = analysis.path_masks(&waves, &paths.paths()[a_path]);
        assert_eq!(r & 1, 0, "hazardous side input breaks robustness");
    }

    #[test]
    fn inverter_chain_propagates() {
        let src = "INPUT(a)\nOUTPUT(y)\nt1 = NOT(a)\nt2 = NOT(t1)\ny = NOT(t2)\n";
        let (_, waves, analysis, paths) = analyze(src, &[false], &[true]);
        let (r, f) = analysis.path_masks(&waves, &paths.paths()[0]);
        assert_eq!(r & 1, 1);
        assert_eq!(f & 1, 0);
    }

    #[test]
    fn xor_requires_steady_side() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
        // a rises, b steady: robust.
        let (c, waves, analysis, paths) = analyze(src, &[false, true], &[true, true]);
        let a = c.inputs()[0];
        let pa = paths.iter().position(|p| p.start == a).unwrap();
        let (r, _) = analysis.path_masks(&waves, &paths.paths()[pa]);
        assert_eq!(r & 1, 1);
        // Both transition: not robust for either path.
        let (_, waves, analysis, paths) = analyze(src, &[false, false], &[true, true]);
        for p in &paths {
            let (r, f) = analysis.path_masks(&waves, p);
            assert_eq!(r & 1, 0);
            assert_eq!(f & 1, 0);
        }
    }

    #[test]
    fn accumulate_counts_new_detections_once() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        let (_, waves, analysis, paths) = analyze(src, &[false, true], &[true, true]);
        let mut det = vec![false; paths.fault_count()];
        let n1 = analysis.accumulate(&waves, &paths, &mut det);
        assert_eq!(n1, 1); // rising a-path only
        let n2 = analysis.accumulate(&waves, &paths, &mut det);
        assert_eq!(n2, 0, "already-detected faults are not recounted");
    }

    /// Cross-check against a brute-force delay-assignment simulator on a
    /// tiny circuit: if our analysis says "robust", then for several random
    /// gate-delay assignments the sampled output value at the end of the
    /// second cycle must differ when the path is made slow.
    #[test]
    fn robust_claims_survive_delay_perturbation() {
        // y = OR(AND(a,b), c) — test the a-path rising.
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(t, c)\n";
        let (c, waves, analysis, paths) = analyze(src, &[false, true, false], &[true, true, false]);
        let a = c.inputs()[0];
        let idx = paths.iter().position(|p| p.start == a).unwrap();
        let (r, _) = analysis.path_masks(&waves, &paths.paths()[idx]);
        assert_eq!(r & 1, 1);
        // Under ANY delay assignment, with v2 applied, the good output is 1
        // and the only way it is still 0 at sample time is the a->t->y path
        // being slow: i.e. the initial value 0 persists. Brute force: in a
        // unit-delay world where every off-path gate has arbitrary delay,
        // the output at sample time is determined by the slow path alone.
        // Here we simply confirm final values: v1 -> y=0, v2 -> y=1.
        let y1 = c.eval_assignment(&[false, true, false])[0];
        let y2 = c.eval_assignment(&[true, true, false])[0];
        assert!(!y1 && y2);
    }
}
