//! Physical validation of the robust sensitization analysis.
//!
//! The definition of a robust test: a two-pattern pair robustly detects a
//! path delay fault iff, **for every assignment of gate delays** in which
//! that path is slow (its total delay exceeds the sample time), the sampled
//! output value differs from the good final value.
//!
//! This test validates our structural robust conditions against that
//! definition directly: an event-driven *timed* gate-level simulator runs
//! the two-pattern pair under many adversarial delay assignments with the
//! target path made slow, and the sampled output must be wrong every time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_delay::{enumerate_paths, robust_detection_masks, Path, TwoPatternSim};
use sft_netlist::bench_format::parse;
use sft_netlist::{Circuit, GateKind, NodeId};
use std::collections::BTreeSet;

/// Timed simulation: every line's waveform under per-(gate-input) delays.
/// `delays[gate][pin]` is the propagation delay from that input pin to the
/// gate output. Inputs switch from `v1` to `v2` at t = 0. Returns a
/// closure-free dense evaluation: the value of every line at time `t`.
struct TimedSim<'c> {
    circuit: &'c Circuit,
    order: Vec<NodeId>,
    delays: Vec<Vec<u32>>,
}

impl<'c> TimedSim<'c> {
    fn new(circuit: &'c Circuit, delays: Vec<Vec<u32>>) -> Self {
        let order = circuit.topo_order().expect("combinational circuit");
        TimedSim { circuit, order, delays }
    }

    /// Value of every line at time `t` (inputs switch at t = 0; a gate
    /// input pin sees the driver's value at `t - delay[pin]`).
    ///
    /// Computed recursively over (line, time) with memoization on the
    /// event-relevant times only; for the small validation circuits a
    /// direct recursive evaluation is fast enough.
    fn value_at(&self, v1: &[bool], v2: &[bool], line: NodeId, t: i64) -> bool {
        let node = self.circuit.node(line);
        match node.kind() {
            GateKind::Input => {
                let pos =
                    self.circuit.inputs().iter().position(|&i| i == line).expect("input line");
                if t >= 0 {
                    v2[pos]
                } else {
                    v1[pos]
                }
            }
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            kind => {
                let vals: Vec<bool> = node
                    .fanins()
                    .iter()
                    .enumerate()
                    .map(|(pin, &f)| {
                        let d = self.delays[line.index()][pin] as i64;
                        self.value_at(v1, v2, f, t - d)
                    })
                    .collect();
                kind.eval(&vals)
            }
        }
    }

    /// All times at which any signal can change, up to `horizon` (sums of
    /// delays along paths). For sampling we only need the final settled
    /// value and the value just before the slow path arrives.
    fn settle_time(&self) -> i64 {
        // Upper bound: sum of max pin delay per gate along any path <=
        // total sum of all delays.
        self.order
            .iter()
            .map(|id| self.delays[id.index()].iter().copied().max().unwrap_or(0) as i64)
            .sum::<i64>()
            + 1
    }
}

/// The delay of `path` under a delay assignment.
fn path_delay(path: &Path, delays: &[Vec<u32>]) -> i64 {
    path.hops.iter().map(|&(g, pin)| delays[g.index()][pin as usize] as i64).sum()
}

fn validate_circuit(src: &str, name: &str, pairs: u32, delay_trials: u32, seed: u64) {
    let c = parse(src, name).unwrap();
    let paths = enumerate_paths(&c, 10_000).unwrap();
    let sim = TwoPatternSim::new(&c);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = c.inputs().len();

    for _ in 0..pairs {
        let m1: u64 = rng.gen();
        let m2: u64 = rng.gen();
        let v1: Vec<bool> = (0..n).map(|i| m1 >> i & 1 == 1).collect();
        let v2: Vec<bool> = (0..n).map(|i| m2 >> i & 1 == 1).collect();
        let w1: Vec<u64> = v1.iter().map(|&b| u64::from(b)).collect();
        let w2: Vec<u64> = v2.iter().map(|&b| u64::from(b)).collect();
        let waves = sim.simulate(&w1, &w2);
        let analysis = robust_detection_masks(&c, &waves);

        for path in &paths {
            let (r, f) = analysis.path_masks(&waves, path);
            if (r | f) & 1 == 0 {
                continue; // not claimed robust for this pair
            }
            let out_slot =
                c.outputs().iter().position(|&o| o == path.end()).expect("paths end at outputs");
            // Good final value at the path's output.
            let good = c.eval_assignment(&v2)[out_slot];

            // Adversarial delay assignments: random delays everywhere, the
            // target path made slower than the sample time.
            for _ in 0..delay_trials {
                let mut delays: Vec<Vec<u32>> = c
                    .iter()
                    .map(|(_, node)| node.fanins().iter().map(|_| rng.gen_range(1..8)).collect())
                    .collect();
                // Inflate the on-path pins so this path dominates, then
                // sample strictly before it arrives.
                for &(g, pin) in &path.hops {
                    delays[g.index()][pin as usize] += 64;
                }
                let tsim = TimedSim::new(&c, delays.clone());
                let slow = path_delay(path, &delays);
                let settle = tsim.settle_time();
                // Sample after everything except the slow path could have
                // settled but before the slow path's transition arrives.
                let sample = slow - 1;
                assert!(sample < settle);
                let sampled = tsim.value_at(&v1, &v2, path.end(), sample);
                assert_ne!(
                    sampled, good,
                    "{name}: pair {v1:?}->{v2:?} claimed robust for {path} but an \
                     adversarial delay assignment hides the fault"
                );
            }
        }
    }
}

#[test]
fn robust_claims_hold_under_adversarial_delays_small_gates() {
    validate_circuit("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2", 16, 4, 11);
    validate_circuit(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = OR(b, c)\ny = AND(a, t)\n",
        "aoi",
        16,
        4,
        12,
    );
}

#[test]
fn robust_claims_hold_on_c17() {
    let c17 = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
    validate_circuit(c17, "c17", 12, 3, 13);
}

#[test]
fn robust_claims_hold_on_reconvergent_xor_logic() {
    let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
t1 = XOR(a, b)\nt2 = AND(t1, c)\nt3 = NOR(a, c)\ny = OR(t2, t3)\n";
    validate_circuit(src, "xmix", 16, 3, 14);
}

/// Sanity for the validator itself: a non-robust sensitization CAN be
/// defeated by delays. y = OR(AND(a,b), AND(a,!b)) with b glitching: the
/// classic static-1 hazard hides a slow a-path under the right delays,
/// and the (non-robust) functional test is defeated — demonstrating that
/// the adversarial machinery actually bites.
#[test]
fn validator_detects_hazard_masking() {
    let src = "\
INPUT(a)\nINPUT(b)\nOUTPUT(y)\nnb = NOT(b)\nt1 = AND(a, b)\nt2 = AND(a, nb)\ny = OR(t1, t2)\n";
    let c = parse(src, "haz").unwrap();
    let paths = enumerate_paths(&c, 100).unwrap();
    // Pair: a steady 1, b falls. Functionally y stays 1; the b-paths carry
    // transitions but with a hazard at y. Our analysis must NOT claim any
    // robust detection for the b-originating paths in the falling case...
    let sim = TwoPatternSim::new(&c);
    let waves = sim.simulate(&[1, 1], &[1, 0]);
    let analysis = robust_detection_masks(&c, &waves);
    let b = c.inputs()[1];
    for path in paths.iter().filter(|p| p.start == b) {
        let (r, f) = analysis.path_masks(&waves, path);
        assert_eq!(r & 1, 0, "{path}");
        assert_eq!(f & 1, 0, "{path}");
    }
    // The sorted event: y's good value is 1 on both vectors, so no PO
    // transition exists at all — any "detection" would have been spurious.
    let settled: BTreeSet<bool> =
        [c.eval_assignment(&[true, true])[0], c.eval_assignment(&[true, false])[0]]
            .into_iter()
            .collect();
    assert_eq!(settled.len(), 1);
}
