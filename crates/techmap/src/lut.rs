//! LUT-*k* covering: cut the netlist into *k*-input truth-table nodes.
//!
//! FPGA-style technology mapping views the circuit not as standard cells but
//! as *k*-input lookup tables: any single-output function of at most `k`
//! variables costs exactly one LUT. This module covers a [`Circuit`] with
//! such nodes:
//!
//! 1. gates wider than `k` inputs are decomposed into balanced same-kind
//!    trees (associative for AND/OR/XOR; the complemented kinds keep their
//!    inversion at the tree root), so every gate is *k*-feasible;
//! 2. a deterministic greedy pass over the topological order grows each
//!    gate's cut by merging its fanin cuts while the union stays within `k`
//!    leaves, sealing fanins as LUT roots when it would not;
//! 3. every root's function over its cut is extracted as an
//!    [`sft_truth::TruthTable`] via [`Circuit::cone_function`] — the same
//!    bridge resynthesis uses — so a covering round-trips losslessly
//!    through `sft-truth`.
//!
//! The result is a [`LutNetwork`]: the (possibly decomposed) circuit the
//! node ids refer to, plus one [`Lut`] per root in topological order.
//! [`LutNetwork::expand`] synthesizes the tables back into gates, which is
//! how the `.lut` interchange format (crate `sft-io`) imports coverings.
//!
//! # Examples
//!
//! ```
//! use sft_netlist::bench_format::parse;
//! use sft_techmap::cover_luts;
//!
//! let c = parse(
//!     "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(t, c)\n",
//!     "demo",
//! )?;
//! let net = cover_luts(&c, 4)?;
//! // Both gates fit one 3-input LUT: y = ab + c.
//! assert_eq!(net.luts.len(), 1);
//! assert_eq!(net.luts[0].inputs.len(), 3);
//! let back = net.expand()?;
//! assert_eq!(back.eval_assignment(&[true, true, false]), vec![true]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use sft_netlist::{Circuit, GateKind, NetlistError, NodeId};
use sft_truth::{TruthTable, MAX_INPUTS};

/// Smallest supported LUT input count. A 1-LUT can only buffer or invert,
/// which makes the greedy covering degenerate; `k = 2` is the classical
/// lower bound.
pub const MIN_LUT_INPUTS: usize = 2;

/// Largest supported LUT input count, bounded by the truth-table width of
/// `sft-truth` ([`MAX_INPUTS`] = 7, i.e. 128-entry tables in a `u128`).
pub const MAX_LUT_INPUTS: usize = MAX_INPUTS;

/// One lookup-table node of a covering: a root line, its ordered cut, and
/// the function of the root over the cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lut {
    /// The circuit line this LUT implements.
    pub root: NodeId,
    /// The cut leaves, in ascending id order. Leaf 0 is the most
    /// significant minterm bit of [`table`](Self::table), matching the
    /// workspace-wide MSB-first convention of [`TruthTable`].
    pub inputs: Vec<NodeId>,
    /// The function of `root` over `inputs`.
    pub table: TruthTable,
}

/// A complete LUT-*k* covering of a circuit.
///
/// `luts` is in topological order (a LUT's leaves are primary inputs,
/// constants, or roots of earlier LUTs), so a single forward pass can
/// rebuild or serialize the network.
#[derive(Debug)]
pub struct LutNetwork {
    /// The circuit the [`Lut`] node ids refer to. This is a clone of the
    /// covered circuit in which gates wider than `k` inputs were decomposed
    /// into balanced trees; circuits that are already *k*-feasible are
    /// copied unchanged.
    pub circuit: Circuit,
    /// The LUT input limit the covering was built for.
    pub k: usize,
    /// The covering, in topological order.
    pub luts: Vec<Lut>,
}

impl LutNetwork {
    /// Synthesizes every LUT back into AND/OR/NOT gates (shared-inverter
    /// sum-of-products per table) and returns the resulting circuit. The
    /// primary inputs keep their names and order; internal nodes are fresh.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if a table cannot be synthesized over its
    /// leaves (impossible for coverings produced by [`cover_luts`]).
    pub fn expand(&self) -> Result<Circuit, NetlistError> {
        let src = &self.circuit;
        let mut out = Circuit::with_capacity(src.name(), src.len());
        let mut map: Vec<Option<NodeId>> = vec![None; src.len()];
        for &i in src.inputs() {
            let name = src.node(i).name().unwrap_or_default().to_string();
            map[i.index()] = Some(out.add_input(name));
        }
        let leaf = |out: &mut Circuit, map: &mut Vec<Option<NodeId>>, id: NodeId| {
            if map[id.index()].is_none() {
                // Only constants can be unmapped leaves: LUT cuts contain
                // inputs (mapped above), earlier roots (mapped below) and
                // constants.
                let value = src.node(id).kind() == GateKind::Const1;
                map[id.index()] = Some(out.add_const(value));
            }
            map[id.index()].expect("leaf mapped")
        };
        for lut in &self.luts {
            let ins: Vec<NodeId> =
                lut.inputs.iter().map(|&l| leaf(&mut out, &mut map, l)).collect();
            let root = out.synthesize_sop(&ins, &lut.table)?;
            map[lut.root.index()] = Some(root);
        }
        for (slot, &o) in src.outputs().iter().enumerate() {
            let driver = leaf(&mut out, &mut map, o);
            let name = src.output_name(slot).unwrap_or_default().to_string();
            out.add_output(driver, name);
        }
        Ok(out)
    }

    /// Number of LUTs in the covering (the FPGA-style area metric).
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// The widest cut actually used (≤ `k`).
    pub fn max_cut_width(&self) -> usize {
        self.luts.iter().map(|l| l.inputs.len()).max().unwrap_or(0)
    }

    /// LUT depth of the network: the longest chain of LUTs from any leaf to
    /// any primary output (the FPGA-style delay metric).
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.circuit.len()];
        for lut in &self.luts {
            let max_in = lut.inputs.iter().map(|l| d[l.index()]).max().unwrap_or(0);
            d[lut.root.index()] = max_in + 1;
        }
        self.circuit.outputs().iter().map(|o| d[o.index()]).max().unwrap_or(0)
    }
}

/// Splits every gate with more than `k` fanins into a balanced tree of
/// same-kind gates of at most `k` fanins. The complemented kinds
/// (NAND/NOR/XNOR) keep the inversion at the rewired root; interior tree
/// nodes use the uncomplemented base kind, so the function is unchanged.
fn decompose_wide(c: &mut Circuit, k: usize) -> Result<(), NetlistError> {
    let original = c.len();
    for idx in 0..original {
        let id = NodeId::from_index(idx);
        let node = c.node(id);
        let kind = node.kind();
        if node.fanins().len() <= k {
            continue;
        }
        let base = match kind {
            GateKind::And | GateKind::Nand => GateKind::And,
            GateKind::Or | GateKind::Nor => GateKind::Or,
            GateKind::Xor | GateKind::Xnor => GateKind::Xor,
            // Buf/Not take one fanin; inputs and constants take none.
            other => unreachable!("{other} cannot have more than {k} fanins"),
        };
        let mut layer = node.fanins().to_vec();
        while layer.len() > k {
            let mut next = Vec::with_capacity(layer.len().div_ceil(k));
            for chunk in layer.chunks(k) {
                next.push(match chunk {
                    [single] => *single,
                    _ => c.add_gate(base, chunk.to_vec())?,
                });
            }
            layer = next;
        }
        c.rewire(id, kind, layer)?;
    }
    Ok(())
}

/// Covers `circuit` with *k*-input LUTs.
///
/// The covering is deterministic: wide gates are decomposed in id order,
/// the greedy merge walks one topological order, and cut leaves are kept
/// id-sorted. Logic duplication is allowed (a gate merged into one
/// consumer's cone may later be sealed as a root for another consumer),
/// exactly as in classical FPGA mapping.
///
/// # Errors
///
/// Returns [`NetlistError::Cone`] if `k` is outside
/// [`MIN_LUT_INPUTS`]`..=`[`MAX_LUT_INPUTS`], and propagates structural
/// errors ([`NetlistError::Cyclic`], malformed arities) from the circuit.
///
/// # Examples
///
/// ```
/// use sft_netlist::bench_format::parse;
/// use sft_techmap::cover_luts;
///
/// // A 16-bit parity tree collapses into ceil(15/3)-ish 4-input LUTs.
/// let mut src = String::new();
/// for i in 0..16 {
///     src.push_str(&format!("INPUT(x{i})\n"));
/// }
/// src.push_str("OUTPUT(p)\np = XOR(");
/// src.push_str(&(0..16).map(|i| format!("x{i}")).collect::<Vec<_>>().join(", "));
/// src.push_str(")\n");
/// let c = parse(&src, "par16")?;
/// let net = cover_luts(&c, 4)?;
/// assert_eq!(net.depth(), 2); // 16 -> 4 -> 1 with 4-input LUTs
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn cover_luts(circuit: &Circuit, k: usize) -> Result<LutNetwork, NetlistError> {
    if !(MIN_LUT_INPUTS..=MAX_LUT_INPUTS).contains(&k) {
        return Err(NetlistError::Cone(format!(
            "LUT input limit {k} outside {MIN_LUT_INPUTS}..={MAX_LUT_INPUTS}"
        )));
    }
    let mut c = circuit.clone();
    decompose_wide(&mut c, k)?;
    let order = c.topo_order()?;
    let live = c.live_mask();
    let mut cut: Vec<Vec<NodeId>> = vec![Vec::new(); c.len()];
    let mut is_root = vec![false; c.len()];
    for &o in c.outputs() {
        if c.node(o).kind().is_gate() {
            is_root[o.index()] = true;
        }
    }
    for &id in &order {
        let node = c.node(id);
        if !node.kind().is_gate() || !live[id.index()] {
            continue;
        }
        // Merge fanin cuts while the union fits; a fanin that is a leaf by
        // nature (input/constant) or already sealed contributes itself.
        let mut merged: Vec<NodeId> = Vec::new();
        for &f in node.fanins() {
            let fanin_is_leaf = !c.node(f).kind().is_gate() || is_root[f.index()];
            let leaves: &[NodeId] =
                if fanin_is_leaf { std::slice::from_ref(&f) } else { &cut[f.index()] };
            for &l in leaves {
                if !merged.contains(&l) {
                    merged.push(l);
                }
            }
        }
        if merged.len() <= k {
            merged.sort();
            cut[id.index()] = merged;
        } else {
            // Overflow: seal every gate fanin as a LUT root and restart
            // this node's cone at its immediate fanins.
            let mut leaves: Vec<NodeId> = Vec::with_capacity(node.fanins().len());
            for &f in node.fanins() {
                if c.node(f).kind().is_gate() {
                    is_root[f.index()] = true;
                }
                if !leaves.contains(&f) {
                    leaves.push(f);
                }
            }
            leaves.sort();
            cut[id.index()] = leaves;
        }
    }
    let mut luts = Vec::new();
    for &id in &order {
        if !is_root[id.index()] {
            continue;
        }
        let inputs = cut[id.index()].clone();
        let table = c.cone_function(id, &inputs)?;
        luts.push(Lut { root: id, inputs, table });
    }
    Ok(LutNetwork { circuit: c, k, luts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    fn same_function(a: &Circuit, b: &Circuit) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let n = a.inputs().len();
        assert!(n <= 16, "test helper is exhaustive");
        for m in 0..1u64 << n {
            let v: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(a.eval_assignment(&v), b.eval_assignment(&v), "minterm {m}");
        }
    }

    #[test]
    fn single_gate_is_one_lut() {
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "t").unwrap();
        let net = cover_luts(&c, 4).unwrap();
        assert_eq!(net.lut_count(), 1);
        assert_eq!(net.depth(), 1);
        assert_eq!(net.luts[0].table.on_set().collect::<Vec<_>>(), vec![0, 1, 2]);
        same_function(&c, &net.expand().unwrap());
    }

    #[test]
    fn chain_merges_into_one_lut() {
        let c = parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
             t1 = AND(a, b)\nt2 = OR(t1, c)\ny = XOR(t2, d)\n",
            "t",
        )
        .unwrap();
        let net = cover_luts(&c, 4).unwrap();
        assert_eq!(net.lut_count(), 1, "whole cone fits a 4-LUT");
        assert_eq!(net.luts[0].inputs.len(), 4);
        same_function(&c, &net.expand().unwrap());
    }

    #[test]
    fn overflow_seals_roots() {
        // 6 distinct inputs through a 2-level cone cannot fit one 4-LUT.
        let c = parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\n\
             t1 = AND(a, b, c)\nt2 = OR(d, e, f)\ny = XOR(t1, t2)\n",
            "t",
        )
        .unwrap();
        let net = cover_luts(&c, 4).unwrap();
        assert_eq!(net.lut_count(), 3);
        assert_eq!(net.depth(), 2);
        same_function(&c, &net.expand().unwrap());
    }

    #[test]
    fn wide_gates_decompose() {
        let mut src = String::new();
        for i in 0..13 {
            src.push_str(&format!("INPUT(x{i})\n"));
        }
        src.push_str("OUTPUT(y)\ny = NOR(");
        src.push_str(&(0..13).map(|i| format!("x{i}")).collect::<Vec<_>>().join(", "));
        src.push_str(")\n");
        let c = parse(&src, "wide").unwrap();
        for k in MIN_LUT_INPUTS..=MAX_LUT_INPUTS {
            let net = cover_luts(&c, k).unwrap();
            assert!(net.max_cut_width() <= k, "k={k}");
            same_function(&c, &net.expand().unwrap());
        }
    }

    #[test]
    fn constants_survive() {
        let c = parse("INPUT(a)\nOUTPUT(y)\nk = CONST1\ny = AND(a, k)\n", "t").unwrap();
        let net = cover_luts(&c, 2).unwrap();
        same_function(&c, &net.expand().unwrap());
    }

    #[test]
    fn output_driven_by_input_or_constant() {
        let c = parse("INPUT(a)\nOUTPUT(a)\nOUTPUT(z)\nz = CONST0\n", "t").unwrap();
        let net = cover_luts(&c, 3).unwrap();
        assert_eq!(net.lut_count(), 0);
        let back = net.expand().unwrap();
        assert_eq!(back.eval_assignment(&[true]), vec![true, false]);
    }

    #[test]
    fn bad_k_rejected() {
        let c = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        assert!(matches!(cover_luts(&c, 1), Err(NetlistError::Cone(_))));
        assert!(matches!(cover_luts(&c, 8), Err(NetlistError::Cone(_))));
    }

    #[test]
    fn shared_fanout_duplicates_or_seals_consistently() {
        // t fans out to two consumers; whatever the covering chooses, the
        // function is preserved and every cut respects k.
        let c = parse(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\nOUTPUT(z)\n\
             t = XOR(a, b)\ny = AND(t, c, d, e)\nz = OR(t, c)\n",
            "t",
        )
        .unwrap();
        for k in [2, 3, 4, 5] {
            let net = cover_luts(&c, k).unwrap();
            assert!(net.max_cut_width() <= k);
            same_function(&c, &net.expand().unwrap());
        }
    }
}
