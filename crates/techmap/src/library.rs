//! The standard-cell library: tree patterns over NAND2/INV.

use std::fmt;

/// A pattern tree matched against the subject graph. `Input(i)` binds the
/// `i`-th cell pin (pins may repeat in principle, but the standard cells
/// use distinct pins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// A cell pin.
    Input(u8),
    /// An inverter over a subpattern.
    Inv(Box<Pattern>),
    /// A 2-input NAND over two subpatterns.
    Nand(Box<Pattern>, Box<Pattern>),
}

impl Pattern {
    /// Convenience constructor: pin `i`.
    pub fn input(i: u8) -> Pattern {
        Pattern::Input(i)
    }

    /// Convenience constructor: inverter.
    pub fn inv(p: Pattern) -> Pattern {
        Pattern::Inv(Box::new(p))
    }

    /// Convenience constructor: NAND2.
    pub fn nand(a: Pattern, b: Pattern) -> Pattern {
        Pattern::Nand(Box::new(a), Box::new(b))
    }

    /// Number of pins (distinct `Input` indices).
    pub fn pin_count(&self) -> usize {
        fn max_pin(p: &Pattern) -> u8 {
            match p {
                Pattern::Input(i) => *i,
                Pattern::Inv(a) => max_pin(a),
                Pattern::Nand(a, b) => max_pin(a).max(max_pin(b)),
            }
        }
        max_pin(self) as usize + 1
    }
}

/// One standard cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Cell name (e.g. `NAND3`).
    pub name: &'static str,
    /// Area in literals (the SIS convention: one literal per input).
    pub literals: u32,
    /// The pattern tree the cell implements.
    pub pattern: Pattern,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} lits)", self.name, self.literals)
    }
}

/// A technology library.
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<Cell>,
}

impl Library {
    /// A library from explicit cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty or lacks an inverter/NAND2 (the base
    /// cells every cover needs).
    pub fn new(cells: Vec<Cell>) -> Self {
        assert!(!cells.is_empty(), "library must not be empty");
        let has_inv = cells
            .iter()
            .any(|c| matches!(&c.pattern, Pattern::Inv(p) if matches!(**p, Pattern::Input(_))));
        let has_nand = cells.iter().any(|c| {
            matches!(&c.pattern, Pattern::Nand(a, b)
                if matches!(**a, Pattern::Input(_)) && matches!(**b, Pattern::Input(_)))
        });
        assert!(has_inv && has_nand, "library must contain INV and NAND2 base cells");
        Library { cells }
    }

    /// The cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The standard 10-cell library used by the Table 4 experiment:
    /// INV, NAND2/3/4, NOR2/3, AND2, OR2, AOI21, OAI21, XOR2.
    pub fn standard() -> Self {
        use Pattern as P;
        let i = P::input;
        let cells = vec![
            Cell { name: "INV", literals: 1, pattern: P::inv(i(0)) },
            Cell { name: "NAND2", literals: 2, pattern: P::nand(i(0), i(1)) },
            Cell {
                name: "NAND3",
                literals: 3,
                pattern: P::nand(P::inv(P::nand(i(0), i(1))), i(2)),
            },
            Cell {
                name: "NAND4",
                literals: 4,
                pattern: P::nand(P::inv(P::nand(i(0), i(1))), P::inv(P::nand(i(2), i(3)))),
            },
            Cell { name: "AND2", literals: 2, pattern: P::inv(P::nand(i(0), i(1))) },
            Cell { name: "NOR2", literals: 2, pattern: P::nand(P::inv(i(0)), P::inv(i(1))) },
            Cell {
                name: "NOR3",
                literals: 3,
                pattern: P::nand(P::inv(P::nand(P::inv(i(0)), P::inv(i(1)))), P::inv(i(2))),
            },
            Cell { name: "OR2", literals: 2, pattern: P::inv(P::nand(P::inv(i(0)), P::inv(i(1)))) },
            Cell {
                name: "AOI21",
                literals: 3,
                pattern: P::inv(P::nand(P::nand(i(0), i(1)), P::inv(i(2)))),
            },
            Cell {
                name: "OAI21",
                literals: 3,
                pattern: P::nand(P::inv(P::nand(P::inv(i(0)), P::inv(i(1)))), i(2)),
            },
            Cell {
                name: "XOR2",
                literals: 2,
                pattern: P::nand(P::nand(i(0), P::inv(i(1))), P::nand(P::inv(i(0)), i(1))),
            },
        ];
        Library { cells }
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_sanity() {
        let lib = Library::standard();
        assert!(lib.cells().len() >= 10);
        for cell in lib.cells() {
            assert!(cell.literals >= 1);
            assert!(cell.pattern.pin_count() >= 1);
        }
        let nand3 = lib.cells().iter().find(|c| c.name == "NAND3").unwrap();
        assert_eq!(nand3.pattern.pin_count(), 3);
    }

    #[test]
    fn library_requires_base_cells() {
        let result = std::panic::catch_unwind(|| {
            Library::new(vec![Cell {
                name: "INV",
                literals: 1,
                pattern: Pattern::inv(Pattern::input(0)),
            }])
        });
        assert!(result.is_err(), "missing NAND2 must be rejected");
    }

    #[test]
    fn xor2_pattern_repeats_pins() {
        let lib = Library::standard();
        let xor = lib.cells().iter().find(|c| c.name == "XOR2").unwrap();
        assert_eq!(xor.pattern.pin_count(), 2);
    }
}
