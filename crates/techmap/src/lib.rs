//! A SIS-style technology mapper (Table 4 substrate).
//!
//! The paper evaluates circuit size after resynthesis by running the SIS
//! technology mapper and reporting two columns: the number of **literals**
//! in the mapped netlist and the number of gates on the **longest path**.
//! This crate reimplements that flow with the classical algorithm
//! (Keutzer's DAGON recipe):
//!
//! 1. decompose the circuit into a **subject graph** of 2-input NAND gates
//!    and inverters;
//! 2. partition the subject DAG into trees at fanout points;
//! 3. cover each tree by dynamic programming over a small standard-cell
//!    [`Library`] of tree patterns, minimizing total literal count;
//! 4. report [`MappedStats`]: literals, cell count and mapped depth.
//!
//! # Examples
//!
//! ```
//! use sft_netlist::bench_format::parse;
//! use sft_techmap::{map_circuit, Library};
//!
//! let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?;
//! let mapped = map_circuit(&c, &Library::standard());
//! assert_eq!(mapped.literals, 2); // one AND2 cell
//! assert_eq!(mapped.longest_path, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

//!
//! Beyond the standard-cell flow, [`cover_luts`] provides an FPGA-style
//! **LUT-k covering**: the netlist is cut into *k*-input truth-table nodes
//! ([`Lut`]) that round-trip losslessly through `sft-truth` — the substrate
//! of the `.lut` interchange format in `sft-io`.

mod library;
pub mod lut;
mod mapper;
mod subject;

pub use library::{Cell, Library, Pattern};
pub use lut::{cover_luts, Lut, LutNetwork, MAX_LUT_INPUTS, MIN_LUT_INPUTS};
pub use mapper::{map_circuit, MappedStats};
pub use subject::SubjectGraph;
