//! The NAND2/INV subject graph.

use sft_netlist::{Circuit, GateKind, NodeId};
use std::collections::HashMap;

/// A node of the subject graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubjectNode {
    /// A leaf: a primary input or constant of the source circuit.
    Leaf(NodeId),
    /// An inverter.
    Inv(u32),
    /// A 2-input NAND.
    Nand(u32, u32),
}

/// The hash-consed NAND2/INV decomposition of a circuit.
///
/// Every original line maps to a subject node via
/// `line_root`; hash-consing shares identical structure,
/// and double inverters are collapsed on construction.
#[derive(Debug)]
pub struct SubjectGraph {
    nodes: Vec<SubjectNode>,
    table: HashMap<SubjectNode, u32>,
    /// Subject node implementing each original circuit line.
    line_root: Vec<u32>,
    /// Subject nodes that are primary outputs of the original circuit.
    outputs: Vec<u32>,
}

impl SubjectGraph {
    /// Decomposes `circuit` into NAND2/INV form.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Self {
        let mut g = SubjectGraph {
            nodes: Vec::new(),
            table: HashMap::new(),
            line_root: vec![u32::MAX; circuit.len()],
            outputs: Vec::new(),
        };
        let order = circuit.topo_order().expect("combinational circuit");
        for id in order {
            let node = circuit.node(id);
            let root = match node.kind() {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
                    g.intern(SubjectNode::Leaf(id))
                }
                GateKind::Buf => g.line_root[node.fanins()[0].index()],
                GateKind::Not => {
                    let a = g.line_root[node.fanins()[0].index()];
                    g.inv(a)
                }
                GateKind::And | GateKind::Nand => {
                    let kids: Vec<u32> =
                        node.fanins().iter().map(|f| g.line_root[f.index()]).collect();
                    let conj = g.and_tree(&kids);
                    if node.kind() == GateKind::Nand {
                        g.inv(conj)
                    } else {
                        conj
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let kids: Vec<u32> = node
                        .fanins()
                        .iter()
                        .map(|f| {
                            let a = g.line_root[f.index()];
                            g.inv(a)
                        })
                        .collect();
                    // OR = NAND of complements; build balanced NAND-of-INVs.
                    let conj = g.and_tree(&kids);
                    let or = g.inv(conj);
                    if node.kind() == GateKind::Nor {
                        g.inv(or)
                    } else {
                        or
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let kids: Vec<u32> =
                        node.fanins().iter().map(|f| g.line_root[f.index()]).collect();
                    let mut acc = kids[0];
                    for &k in &kids[1..] {
                        acc = g.xor2(acc, k);
                    }
                    if node.kind() == GateKind::Xnor {
                        g.inv(acc)
                    } else {
                        acc
                    }
                }
            };
            g.line_root[id.index()] = root;
        }
        for &o in circuit.outputs() {
            let r = g.line_root[o.index()];
            g.outputs.push(r);
        }
        g
    }

    fn intern(&mut self, node: SubjectNode) -> u32 {
        if let Some(&i) = self.table.get(&node) {
            return i;
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(node);
        self.table.insert(node, i);
        i
    }

    fn inv(&mut self, a: u32) -> u32 {
        // Collapse double inverters.
        if let SubjectNode::Inv(inner) = self.nodes[a as usize] {
            return inner;
        }
        self.intern(SubjectNode::Inv(a))
    }

    fn nand(&mut self, a: u32, b: u32) -> u32 {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(SubjectNode::Nand(a, b))
    }

    /// Balanced AND tree returning the *conjunction* (via NAND + INV pairs,
    /// with the final inversion left to the caller as a NAND when posible).
    fn and_tree(&mut self, kids: &[u32]) -> u32 {
        // Returns AND(kids). AND2 = INV(NAND2).
        match kids.len() {
            0 => panic!("empty AND"),
            1 => kids[0],
            _ => {
                let mid = kids.len() / 2;
                let l = self.and_tree(&kids[..mid]);
                let r = self.and_tree(&kids[mid..]);
                let n = self.nand(l, r);
                self.inv(n)
            }
        }
    }

    fn xor2(&mut self, a: u32, b: u32) -> u32 {
        // XOR = NAND(NAND(a, !b), NAND(!a, b)).
        let nb = self.inv(b);
        let na = self.inv(a);
        let t1 = self.nand(a, nb);
        let t2 = self.nand(na, b);
        self.nand(t1, t2)
    }

    /// All subject nodes.
    pub fn nodes(&self) -> &[SubjectNode] {
        &self.nodes
    }

    /// The subject node implementing original line `id`.
    pub fn root_of(&self, id: NodeId) -> u32 {
        self.line_root[id.index()]
    }

    /// Subject nodes implementing the primary outputs.
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Reference (consumer) counts of each subject node, counting output
    /// references, restricted to nodes reachable from the outputs.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = self.outputs.clone();
        for &o in &self.outputs {
            counts[o as usize] += 1;
        }
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut live[i as usize], true) {
                continue;
            }
            match self.nodes[i as usize] {
                SubjectNode::Leaf(_) => {}
                SubjectNode::Inv(a) => {
                    counts[a as usize] += 1;
                    stack.push(a);
                }
                SubjectNode::Nand(a, b) => {
                    counts[a as usize] += 1;
                    counts[b as usize] += 1;
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    fn eval_subject(g: &SubjectGraph, node: u32, leaf_values: &HashMap<NodeId, bool>) -> bool {
        match g.nodes()[node as usize] {
            SubjectNode::Leaf(id) => leaf_values[&id],
            SubjectNode::Inv(a) => !eval_subject(g, a, leaf_values),
            SubjectNode::Nand(a, b) => {
                !(eval_subject(g, a, leaf_values) && eval_subject(g, b, leaf_values))
            }
        }
    }

    #[test]
    fn decomposition_preserves_function() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
t1 = NAND(a, b, c)\nt2 = NOR(a, c)\nt3 = XOR(t1, t2)\ny = OR(t3, b)\nz = XNOR(t1, b)\n";
        let c = parse(src, "mix").unwrap();
        let g = SubjectGraph::new(&c);
        for m in 0..8u32 {
            let assignment: Vec<bool> = (0..3).map(|i| m >> i & 1 == 1).collect();
            let leaf_values: HashMap<NodeId, bool> =
                c.inputs().iter().copied().zip(assignment.iter().copied()).collect();
            let expect = c.eval_assignment(&assignment);
            for (slot, &o) in g.outputs().iter().enumerate() {
                assert_eq!(
                    eval_subject(&g, o, &leaf_values),
                    expect[slot],
                    "pattern {m} output {slot}"
                );
            }
        }
    }

    #[test]
    fn hash_consing_shares_structure() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = AND(b, a)\n";
        let c = parse(src, "dup").unwrap();
        let g = SubjectGraph::new(&c);
        assert_eq!(g.outputs()[0], g.outputs()[1], "identical ANDs share subject nodes");
    }

    #[test]
    fn double_inverters_collapse() {
        let src = "INPUT(a)\nOUTPUT(y)\nt = NOT(a)\ny = NOT(t)\n";
        let c = parse(src, "ii").unwrap();
        let g = SubjectGraph::new(&c);
        assert!(matches!(g.nodes()[g.outputs()[0] as usize], SubjectNode::Leaf(_)));
    }
}
