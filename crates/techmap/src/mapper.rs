//! Dynamic-programming tree covering of the subject graph.

use crate::library::{Cell, Library, Pattern};
use crate::subject::{SubjectGraph, SubjectNode};
use sft_netlist::Circuit;
use std::collections::HashMap;
use std::fmt;

/// Result of technology mapping (the two columns of Table 4, plus cell
/// count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedStats {
    /// Total literals of the chosen cells (the SIS area metric).
    pub literals: u64,
    /// Number of cells instantiated.
    pub cells: u64,
    /// Gates (cells) on the longest input-to-output path.
    pub longest_path: u32,
}

impl fmt::Display for MappedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} literals, {} cells, longest path {}",
            self.literals, self.cells, self.longest_path
        )
    }
}

/// Attempts to match `pattern` rooted at subject node `n`. Internal pattern
/// nodes may only consume single-fanout subject nodes (tree covering must
/// not duplicate shared logic); pattern pins bind consistently (needed for
/// the XOR2 cell, whose pins appear twice).
fn match_at(
    g: &SubjectGraph,
    fanout: &[u32],
    pattern: &Pattern,
    n: u32,
    root: bool,
    bindings: &mut HashMap<u8, u32>,
) -> bool {
    match pattern {
        Pattern::Input(i) => match bindings.get(i) {
            Some(&b) => b == n,
            None => {
                bindings.insert(*i, n);
                true
            }
        },
        Pattern::Inv(sub) => {
            if !root && fanout[n as usize] != 1 {
                return false;
            }
            match g.nodes()[n as usize] {
                SubjectNode::Inv(a) => match_at(g, fanout, sub, a, false, bindings),
                _ => false,
            }
        }
        Pattern::Nand(pa, pb) => {
            if !root && fanout[n as usize] != 1 {
                return false;
            }
            match g.nodes()[n as usize] {
                SubjectNode::Nand(a, b) => {
                    let save = bindings.clone();
                    if match_at(g, fanout, pa, a, false, bindings)
                        && match_at(g, fanout, pb, b, false, bindings)
                    {
                        return true;
                    }
                    *bindings = save.clone();
                    if match_at(g, fanout, pa, b, false, bindings)
                        && match_at(g, fanout, pb, a, false, bindings)
                    {
                        return true;
                    }
                    *bindings = save;
                    false
                }
                _ => false,
            }
        }
    }
}

struct Chosen {
    cell_index: usize,
    inputs: Vec<u32>,
    cost: u64,
}

/// Maps `circuit` onto `library`, minimizing total literals.
///
/// # Panics
///
/// Panics if the circuit is cyclic. A cover always exists because the
/// library is required to contain INV and NAND2.
pub fn map_circuit(circuit: &Circuit, library: &Library) -> MappedStats {
    let g = SubjectGraph::new(circuit);
    let fanout = g.fanout_counts();
    let n_nodes = g.nodes().len();
    let mut best: Vec<Option<Chosen>> = (0..n_nodes).map(|_| None).collect();

    // Topological order of subject nodes: ids are created children-first.
    for n in 0..n_nodes as u32 {
        if matches!(g.nodes()[n as usize], SubjectNode::Leaf(_)) {
            continue;
        }
        let mut node_best: Option<Chosen> = None;
        for (ci, cell) in library.cells().iter().enumerate() {
            let mut bindings = HashMap::new();
            if !match_at(&g, &fanout, &cell.pattern, n, true, &mut bindings) {
                continue;
            }
            let mut inputs: Vec<u32> = bindings.values().copied().collect();
            inputs.sort_unstable();
            inputs.dedup();
            let mut cost = cell.literals as u64;
            let mut feasible = true;
            for &b in &inputs {
                match &best[b as usize] {
                    _ if matches!(g.nodes()[b as usize], SubjectNode::Leaf(_)) => {}
                    Some(c) => cost += c.cost_at_input(&fanout, b),
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            if node_best.as_ref().is_none_or(|c| cost < c.cost) {
                node_best = Some(Chosen { cell_index: ci, inputs, cost });
            }
        }
        best[n as usize] = node_best;
    }

    // Accumulate area over chosen tree roots (boundaries): outputs and
    // multi-fanout nodes, counted once each.
    let mut boundary = vec![false; n_nodes];
    for &o in g.outputs() {
        boundary[o as usize] = true;
    }
    for n in 0..n_nodes {
        if fanout[n] >= 2 {
            boundary[n] = true;
        }
    }
    // Live nodes only.
    let live = {
        let mut live = vec![false; n_nodes];
        let mut stack: Vec<u32> = g.outputs().to_vec();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut live[i as usize], true) {
                continue;
            }
            match g.nodes()[i as usize] {
                SubjectNode::Leaf(_) => {}
                SubjectNode::Inv(a) => stack.push(a),
                SubjectNode::Nand(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        live
    };

    let mut literals = 0u64;
    let mut cells = 0u64;
    let mut arrive: Vec<u32> = vec![0; n_nodes];
    // Depth: evaluate arrival times bottom-up over chosen matches.
    for n in 0..n_nodes {
        if matches!(g.nodes()[n], SubjectNode::Leaf(_)) {
            continue;
        }
        if let Some(chosen) = &best[n] {
            let worst = chosen.inputs.iter().map(|&b| arrive[b as usize]).max().unwrap_or(0);
            arrive[n] = worst + 1;
        }
    }
    for n in 0..n_nodes {
        if !live[n] || !boundary[n] || matches!(g.nodes()[n], SubjectNode::Leaf(_)) {
            continue;
        }
        let chosen = best[n].as_ref().expect("cover exists for live logic");
        // Count the whole tree hanging off this boundary root.
        let (l, c) = tree_area(&g, &best, &boundary, library, chosen);
        literals += l;
        cells += c;
    }
    let longest_path = g.outputs().iter().map(|&o| arrive[o as usize]).max().unwrap_or(0);
    MappedStats { literals, cells, longest_path }
}

impl Chosen {
    /// Cost a consumer pays for this node as an input: 0 if the node is a
    /// boundary (it is counted as its own root), else its subtree cost.
    fn cost_at_input(&self, fanout: &[u32], n: u32) -> u64 {
        if fanout[n as usize] >= 2 {
            0
        } else {
            self.cost
        }
    }
}

/// Area of the cell tree rooted at boundary node `n`, stopping at leaves
/// and other boundaries.
fn tree_area(
    g: &SubjectGraph,
    best: &[Option<Chosen>],
    boundary: &[bool],
    library: &Library,
    chosen: &Chosen,
) -> (u64, u64) {
    let cell: &Cell = &library.cells()[chosen.cell_index];
    let mut literals = cell.literals as u64;
    let mut cells = 1u64;
    for &b in &chosen.inputs {
        if boundary[b as usize] || matches!(g.nodes()[b as usize], SubjectNode::Leaf(_)) {
            continue;
        }
        let sub = best[b as usize].as_ref().expect("internal nodes are covered");
        let (l, c) = tree_area(g, best, boundary, library, sub);
        literals += l;
        cells += c;
    }
    (literals, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    #[test]
    fn single_gates_map_to_single_cells() {
        for (src, lits) in [
            ("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", 2),
            ("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", 2),
            ("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n", 2),
            ("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", 2),
            ("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", 2),
            ("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", 1),
        ] {
            let c = parse(src, "t").unwrap();
            let m = map_circuit(&c, &Library::standard());
            assert_eq!(m.literals, lits, "{src}");
            assert_eq!(m.cells, 1, "{src}");
            assert_eq!(m.longest_path, 1, "{src}");
        }
    }

    #[test]
    fn nand3_uses_wide_cell() {
        let c = parse("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = NAND(a, b, c)\n", "t").unwrap();
        let m = map_circuit(&c, &Library::standard());
        assert_eq!(m.literals, 3);
        assert_eq!(m.cells, 1);
    }

    #[test]
    fn aoi_structure_found() {
        // y = !(ab + c): exactly one AOI21 cell.
        let src =
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\no = OR(t, c)\ny = NOT(o)\n";
        let c = parse(src, "aoi").unwrap();
        let m = map_circuit(&c, &Library::standard());
        assert_eq!(m.literals, 3, "AOI21 should cover the whole cone: {m}");
        assert_eq!(m.cells, 1);
    }

    #[test]
    fn fanout_points_break_trees() {
        // t = AND(a,b) feeds two consumers: it must be its own cell; total
        // = AND2 + NOT + OR2.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
t = AND(a, b)\ny = NOT(t)\nz = OR(t, c)\n";
        let c = parse(src, "fo").unwrap();
        let m = map_circuit(&c, &Library::standard());
        assert_eq!(m.cells, 3);
        assert_eq!(m.literals, 2 + 1 + 2);
    }

    #[test]
    fn longest_path_counts_cells() {
        // A chain of 4 NOT gates collapses (double inverters) to 0 or 1
        // cells; use ANDs instead.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(t1, c)\nt3 = AND(t2, d)\ny = AND(t3, e)\n";
        let c = parse(src, "chain").unwrap();
        let m = map_circuit(&c, &Library::standard());
        assert!(m.longest_path <= 4);
        assert!(m.longest_path >= 2);
        assert!(m.literals <= 8);
    }

    #[test]
    fn c17_maps_reasonably() {
        let src = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
        let c = parse(src, "c17").unwrap();
        let m = map_circuit(&c, &Library::standard());
        // c17 is 6 NAND2s with fanout: exactly 6 cells, 12 literals.
        assert_eq!(m.cells, 6);
        assert_eq!(m.literals, 12);
        assert_eq!(m.longest_path, 3);
    }
}
