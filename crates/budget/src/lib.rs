//! Effort governor for the `sft` workspace.
//!
//! The paper's procedures are *anytime* algorithms: every accepted
//! replacement is independently verified, so a run interrupted mid-way
//! still holds a valid, improved circuit. This crate provides the shared
//! vocabulary that lets every long-running engine in the workspace honour
//! that property:
//!
//! - [`Budget`] — a cheaply-cloneable handle bundling an optional
//!   wall-clock deadline, an optional step (work-unit) budget and an
//!   optional cooperative cancellation flag. Clones share the step
//!   counter and the flag, so a budget handed to several phases of a
//!   pipeline is consumed globally, not per phase.
//! - [`Exhausted`] — *why* a budget ran out (deadline, steps, cancelled).
//! - [`StopReason`] — the workspace-wide vocabulary for why an engine
//!   stopped, combining budget exhaustion with the engines' own
//!   fail-safe outcomes (BDD blowup, verification rollback, ...).
//! - [`CancelFlag`] — a shareable flag another thread (or a signal
//!   handler) can raise to request a graceful stop.
//!
//! Engines are expected to call [`Budget::check`] at coarse boundaries
//! (per pass, per fault, per pattern block) and [`Budget::consume`] once
//! per unit of useful work (a candidate scored, a fault targeted). Both
//! are wait-free; `check` reads a monotonic clock only when a deadline is
//! actually set.
//!
//! # Transactional-pass contract
//!
//! An engine that mutates a circuit must pair every pass with an edit
//! transaction: open a checkpoint (`Circuit::begin_edit`) before the pass,
//! and on any `Err(Exhausted)` surfacing mid-pass roll the circuit back to
//! it (`Circuit::rollback_to`) before reporting the stop. The journal makes
//! that rollback O(#edits this pass), so honouring the anytime property no
//! longer requires keeping a full pre-pass clone of the circuit — clones
//! are reserved for run boundaries (e.g. keeping the caller's original
//! while a whole run may be abandoned). Exhaustion between passes needs no
//! rollback at all: the previous pass was already committed.
//!
//! # Examples
//!
//! ```
//! use sft_budget::{Budget, Exhausted};
//!
//! let budget = Budget::unlimited().with_step_limit(2);
//! assert!(budget.check().is_ok());
//! assert!(budget.consume(1).is_ok());
//! assert!(budget.consume(1).is_ok());
//! assert_eq!(budget.consume(1), Err(Exhausted::StepBudget));
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`Budget`] ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhausted {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step (work-unit) budget was consumed.
    StepBudget,
    /// The cancellation flag was raised.
    Cancelled,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhausted::Deadline => write!(f, "deadline exceeded"),
            Exhausted::StepBudget => write!(f, "step budget exhausted"),
            Exhausted::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for Exhausted {}

/// Why an engine stopped — the workspace-wide stop vocabulary.
///
/// Budget exhaustion ([`Exhausted`]) converts into the matching variant;
/// the remaining variants are produced by the engines themselves. In all
/// cases the engine returns its best *verified* result so far: a stop
/// reason reports degraded effort, never lost work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StopReason {
    /// The engine ran to natural completion (no more improvement, all
    /// targets processed).
    #[default]
    Converged,
    /// The configured iteration cap (passes, attempts, pattern pairs)
    /// was reached.
    MaxPasses,
    /// The wall-clock deadline passed.
    Deadline,
    /// The step budget was consumed.
    StepBudget,
    /// The cancellation flag was raised.
    Cancelled,
    /// BDD construction hit its node limit during verification; the last
    /// verified result was kept.
    BddBlowup,
    /// Verification found a functional difference and the engine rolled
    /// back to the last verified result (an internal-bug containment
    /// path, not an expected outcome).
    VerificationRollback,
}

impl StopReason {
    /// Whether the engine stopped early (anything but [`Converged`]
    /// / [`MaxPasses`], which are the two "ran to completion" outcomes).
    ///
    /// [`Converged`]: StopReason::Converged
    /// [`MaxPasses`]: StopReason::MaxPasses
    pub fn is_early(self) -> bool {
        !matches!(self, StopReason::Converged | StopReason::MaxPasses)
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Converged => write!(f, "converged"),
            StopReason::MaxPasses => write!(f, "max-passes"),
            StopReason::Deadline => write!(f, "deadline"),
            StopReason::StepBudget => write!(f, "step-budget"),
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::BddBlowup => write!(f, "bdd-blowup"),
            StopReason::VerificationRollback => write!(f, "verification-rollback"),
        }
    }
}

impl From<Exhausted> for StopReason {
    fn from(e: Exhausted) -> Self {
        match e {
            Exhausted::Deadline => StopReason::Deadline,
            Exhausted::StepBudget => StopReason::StepBudget,
            Exhausted::Cancelled => StopReason::Cancelled,
        }
    }
}

/// A shareable cancellation flag.
///
/// Clones share the underlying flag; raising it from any clone (e.g. a
/// signal handler or a supervisor thread) makes every budget holding it
/// report [`Exhausted::Cancelled`] at its next check.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// Creates a new, unraised flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A composable effort budget: deadline + step budget + cancellation.
///
/// All three limits are optional; [`Budget::unlimited`] (also `Default`)
/// never exhausts. Clones share the step counter and cancellation flag,
/// so one budget can govern a whole pipeline end to end.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    /// Remaining steps, shared across clones.
    steps: Option<Arc<AtomicU64>>,
    cancel: Option<CancelFlag>,
}

impl Budget {
    /// A budget with no limits at all.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Restricts the budget to `limit` of wall-clock time from now.
    ///
    /// A zero limit produces a pre-expired budget: engines return their
    /// input unchanged with a `Deadline` stop reason.
    #[must_use]
    pub fn with_time_limit(self, limit: Duration) -> Self {
        // `checked_add` guards absurd limits (e.g. Duration::MAX).
        let deadline = Instant::now().checked_add(limit);
        Budget { deadline: deadline.or(self.deadline), ..self }
    }

    /// Restricts the budget to an absolute deadline.
    #[must_use]
    pub fn with_deadline(self, deadline: Instant) -> Self {
        Budget { deadline: Some(deadline), ..self }
    }

    /// Tightens the budget to `limit` from now **only if** that is earlier
    /// than the existing deadline (or none is set). This is the
    /// request-scoped composition a service needs: a per-request time limit
    /// can shorten the daemon's default, never extend it.
    #[must_use]
    pub fn tightened_by(self, limit: Duration) -> Self {
        let candidate = Instant::now().checked_add(limit);
        let deadline = match (self.deadline, candidate) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Budget { deadline, ..self }
    }

    /// Restricts the budget to `limit` work units (replaces any previous
    /// step limit with a fresh shared counter).
    #[must_use]
    pub fn with_step_limit(self, limit: u64) -> Self {
        Budget { steps: Some(Arc::new(AtomicU64::new(limit))), ..self }
    }

    /// Attaches a cancellation flag (shared with the caller's clone).
    #[must_use]
    pub fn with_cancel(self, flag: CancelFlag) -> Self {
        Budget { cancel: Some(flag), ..self }
    }

    /// Whether no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.steps.is_none() && self.cancel.is_none()
    }

    /// Remaining work units, if a step limit is set.
    pub fn remaining_steps(&self) -> Option<u64> {
        self.steps.as_ref().map(|s| s.load(Ordering::Relaxed))
    }

    /// Checks every configured limit without consuming anything.
    ///
    /// Order: cancellation, deadline, step depletion — so an external
    /// cancel wins over a simultaneously-expired deadline.
    ///
    /// # Errors
    ///
    /// Returns the first exhausted limit.
    pub fn check(&self) -> Result<(), Exhausted> {
        if let Some(flag) = &self.cancel {
            if flag.is_cancelled() {
                return Err(Exhausted::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Exhausted::Deadline);
            }
        }
        if let Some(steps) = &self.steps {
            if steps.load(Ordering::Relaxed) == 0 {
                return Err(Exhausted::StepBudget);
            }
        }
        Ok(())
    }

    /// Consumes `n` work units after a full [`check`](Budget::check).
    ///
    /// Consuming more units than remain drains the budget and reports
    /// exhaustion on the *next* call, so the final unit of work is never
    /// spuriously rejected.
    ///
    /// # Errors
    ///
    /// Returns the first exhausted limit.
    pub fn consume(&self, n: u64) -> Result<(), Exhausted> {
        self.check()?;
        if let Some(steps) = &self.steps {
            // Saturating decrement; lock-free and tolerant of races
            // between clones (worst case a few extra units are granted).
            let mut cur = steps.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(n);
                match steps.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check().is_ok());
        assert!(b.consume(u64::MAX).is_ok());
        assert!(b.consume(1).is_ok());
        assert_eq!(b.remaining_steps(), None);
    }

    #[test]
    fn step_budget_drains_and_reports() {
        let b = Budget::unlimited().with_step_limit(3);
        assert_eq!(b.remaining_steps(), Some(3));
        assert!(b.consume(2).is_ok());
        // The final unit is granted, not rejected.
        assert!(b.consume(5).is_ok());
        assert_eq!(b.remaining_steps(), Some(0));
        assert_eq!(b.consume(1), Err(Exhausted::StepBudget));
        assert_eq!(b.check(), Err(Exhausted::StepBudget));
    }

    #[test]
    fn clones_share_the_step_counter() {
        let a = Budget::unlimited().with_step_limit(2);
        let b = a.clone();
        assert!(a.consume(1).is_ok());
        assert!(b.consume(1).is_ok());
        assert_eq!(a.consume(1), Err(Exhausted::StepBudget));
        assert_eq!(b.check(), Err(Exhausted::StepBudget));
    }

    #[test]
    fn zero_time_limit_is_pre_expired() {
        let b = Budget::unlimited().with_time_limit(Duration::ZERO);
        assert_eq!(b.check(), Err(Exhausted::Deadline));
    }

    #[test]
    fn generous_deadline_passes() {
        let b = Budget::unlimited().with_time_limit(Duration::from_secs(3600));
        assert!(b.check().is_ok());
    }

    #[test]
    fn tightened_by_keeps_the_earlier_deadline() {
        // Tightening an unlimited budget installs the deadline.
        let b = Budget::unlimited().tightened_by(Duration::ZERO);
        assert_eq!(b.check(), Err(Exhausted::Deadline));
        // Tightening can only shorten: a generous request limit does not
        // extend an already-expired daemon deadline...
        let b = Budget::unlimited()
            .with_time_limit(Duration::ZERO)
            .tightened_by(Duration::from_secs(3600));
        assert_eq!(b.check(), Err(Exhausted::Deadline));
        // ...while a short request limit shortens a generous one.
        let b = Budget::unlimited()
            .with_time_limit(Duration::from_secs(3600))
            .tightened_by(Duration::ZERO);
        assert_eq!(b.check(), Err(Exhausted::Deadline));
        // And two generous limits stay generous.
        let b = Budget::unlimited()
            .with_time_limit(Duration::from_secs(3600))
            .tightened_by(Duration::from_secs(1800));
        assert!(b.check().is_ok());
    }

    #[test]
    fn cancellation_wins_over_everything() {
        let flag = CancelFlag::new();
        let b = Budget::unlimited().with_time_limit(Duration::ZERO).with_cancel(flag.clone());
        assert_eq!(b.check(), Err(Exhausted::Deadline));
        flag.cancel();
        assert_eq!(b.check(), Err(Exhausted::Cancelled));
        assert!(flag.is_cancelled());
    }

    #[test]
    fn cancel_reaches_clones() {
        let flag = CancelFlag::new();
        let b = Budget::unlimited().with_cancel(flag.clone());
        let c = b.clone();
        assert!(c.check().is_ok());
        flag.cancel();
        assert_eq!(b.check(), Err(Exhausted::Cancelled));
        assert_eq!(c.check(), Err(Exhausted::Cancelled));
    }

    #[test]
    fn stop_reason_round_trip() {
        assert_eq!(StopReason::from(Exhausted::Deadline), StopReason::Deadline);
        assert_eq!(StopReason::from(Exhausted::StepBudget), StopReason::StepBudget);
        assert_eq!(StopReason::from(Exhausted::Cancelled), StopReason::Cancelled);
        assert_eq!(StopReason::default(), StopReason::Converged);
        assert!(!StopReason::Converged.is_early());
        assert!(!StopReason::MaxPasses.is_early());
        assert!(StopReason::Deadline.is_early());
        assert!(StopReason::BddBlowup.is_early());
    }

    #[test]
    fn display_strings_are_stable() {
        // The CLI prints these; treat them as a (small) public contract.
        assert_eq!(StopReason::Converged.to_string(), "converged");
        assert_eq!(StopReason::Deadline.to_string(), "deadline");
        assert_eq!(StopReason::StepBudget.to_string(), "step-budget");
        assert_eq!(StopReason::VerificationRollback.to_string(), "verification-rollback");
        assert_eq!(Exhausted::Deadline.to_string(), "deadline exceeded");
    }
}
