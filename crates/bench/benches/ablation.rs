//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! - identification method: the paper's capped permutation search vs. the
//!   exact recursive decomposition, across cone widths;
//! - objective: Procedure 2 (gates) vs Procedure 3 (paths) vs the combined
//!   measure of Section 4.3, reporting the quality trade-off as bench
//!   labels (throughput measured, results printed once).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sft_circuits::random::{random_circuit, RandomCircuitConfig};
use sft_core::{
    identify, resynthesize, IdentifyMethod, IdentifyOptions, Objective, ResynthOptions,
};
use sft_truth::TruthTable;
use std::hint::black_box;

fn bench_identify_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/identify");
    for n in [4usize, 5, 6] {
        // A hit (interval function) and a miss (majority-like) per width.
        let max = (1u64 << n) - 1;
        let hit = sft_core::ComparisonSpec::new((0..n).collect(), max / 3, 2 * max / 3)
            .expect("valid interval")
            .to_table();
        let miss = TruthTable::from_fn(n, |m| m.count_ones() as usize * 2 > n);
        for (label, table) in [("hit", hit), ("miss", miss)] {
            for (mname, method) in
                [("exact", IdentifyMethod::Exact), ("perm200", IdentifyMethod::Permutations)]
            {
                let opts = IdentifyOptions { method, max_permutations: 200, try_complement: true };
                group.bench_with_input(
                    BenchmarkId::new(format!("{mname}/{label}"), n),
                    &table,
                    |b, t| b.iter(|| black_box(identify(t, &opts))),
                );
            }
        }
    }
    group.finish();
}

/// Ablation of the two search-space extensions (polarity identification
/// and multi-unit covers) against the paper's plain procedure.
fn bench_extensions(c: &mut Criterion) {
    let circuit = random_circuit(&RandomCircuitConfig {
        inputs: 16,
        outputs: 8,
        gates: 120,
        window: 8,
        seed: 0xD,
    });
    let mut group = c.benchmark_group("ablation/extensions");
    group.sample_size(10);
    for (name, negation, cover_units) in [
        ("paper", false, 1usize),
        ("polarities", true, 1),
        ("covers2", false, 2),
        ("both", true, 2),
    ] {
        let opts = ResynthOptions {
            allow_input_negation: negation,
            max_cover_units: cover_units,
            max_candidates_per_gate: 60,
            ..ResynthOptions::default()
        };
        let mut probe = circuit.clone();
        let report = resynthesize(&mut probe, &opts).expect("verified");
        println!(
            "ablation/extensions/{name}: gates {} -> {}, paths {} -> {}",
            report.gates_before, report.gates_after, report.paths_before, report.paths_after
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut work = circuit.clone();
                black_box(resynthesize(&mut work, &opts).expect("verified"));
            });
        });
    }
    group.finish();
}

fn bench_objectives(c: &mut Criterion) {
    let circuit = random_circuit(&RandomCircuitConfig {
        inputs: 16,
        outputs: 8,
        gates: 120,
        window: 8,
        seed: 0xC,
    });
    let mut group = c.benchmark_group("ablation/objective");
    group.sample_size(10);
    for (name, objective) in [
        ("gates", Objective::Gates),
        ("paths", Objective::Paths),
        ("combined_1_1", Objective::Combined { gate_weight: 1, path_weight: 1 }),
        ("combined_100_1", Objective::Combined { gate_weight: 100, path_weight: 1 }),
    ] {
        let opts =
            ResynthOptions { objective, max_candidates_per_gate: 60, ..ResynthOptions::default() };
        // Print the quality point once so the ablation is visible in the
        // bench log, then measure throughput.
        let mut probe = circuit.clone();
        let report = resynthesize(&mut probe, &opts).expect("verified");
        println!(
            "ablation/objective/{name}: gates {} -> {}, paths {} -> {}",
            report.gates_before, report.gates_after, report.paths_before, report.paths_after
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut work = circuit.clone();
                black_box(resynthesize(&mut work, &opts).expect("verified"));
            });
        });
    }
    group.finish();
}

criterion_group!(ablation, bench_identify_methods, bench_objectives, bench_extensions);
criterion_main!(ablation);
