//! Criterion benchmarks — one group per paper table's computational kernel.
//!
//! - `path_count`     — Procedure 1 labelling (Tables 2/3/5 bookkeeping)
//! - `identify`       — comparison-function identification (Sec. 3.4)
//! - `procedure2`     — Table 2 kernel
//! - `procedure3`     — Table 5 kernel
//! - `techmap`        — Table 4 kernel
//! - `fault_sim`      — Table 6 kernel (one 64-pattern block)
//! - `robust_pdf`     — Table 7 kernel (one 64-pair block)
//! - `bdd_equiv`      — the verification net under Tables 2/3/5
//! - `rar_baseline`   — Table 3 baseline optimizer

use criterion::{criterion_group, criterion_main, Criterion};
use sft_circuits::builders;
use sft_circuits::random::{random_circuit, RandomCircuitConfig};
use sft_core::{identify, procedure2, procedure3, IdentifyMethod, IdentifyOptions, ResynthOptions};
use sft_delay::{enumerate_paths, pdf_campaign_on, PdfCampaignConfig};
use sft_netlist::Circuit;
use sft_rambo::{optimize, RamboOptions};
use sft_sim::{fault_list, FaultSim};
use sft_truth::TruthTable;
use std::hint::black_box;

fn medium_circuit() -> Circuit {
    random_circuit(&RandomCircuitConfig {
        inputs: 20,
        outputs: 10,
        gates: 180,
        window: 10,
        seed: 0xA,
    })
}

fn bench_path_count(c: &mut Criterion) {
    let circuit = builders::array_multiplier(6);
    c.bench_function("path_count/mul6", |b| {
        b.iter(|| black_box(circuit.path_count()));
    });
}

fn bench_identify(c: &mut Criterion) {
    let f2 = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14]).expect("in range");
    let maj = TruthTable::from_minterms(5, &[7, 11, 13, 14, 15, 19, 21, 22, 25, 26, 28, 31])
        .expect("in range");
    let exact = IdentifyOptions { method: IdentifyMethod::Exact, ..IdentifyOptions::default() };
    let perms = IdentifyOptions::paper();
    c.bench_function("identify/exact_hit", |b| {
        b.iter(|| black_box(identify(&f2, &exact)));
    });
    c.bench_function("identify/exact_miss", |b| {
        b.iter(|| black_box(identify(&maj, &exact)));
    });
    c.bench_function("identify/permutations_hit", |b| {
        b.iter(|| black_box(identify(&f2, &perms)));
    });
}

fn bench_procedures(c: &mut Criterion) {
    let circuit = medium_circuit();
    let opts = ResynthOptions { max_candidates_per_gate: 60, ..ResynthOptions::default() };
    let mut group = c.benchmark_group("resynthesis");
    group.sample_size(10);
    group.bench_function("procedure2/irs_a", |b| {
        b.iter(|| {
            let mut work = circuit.clone();
            black_box(procedure2(&mut work, &opts).expect("verified"));
        });
    });
    group.bench_function("procedure3/irs_a", |b| {
        b.iter(|| {
            let mut work = circuit.clone();
            black_box(procedure3(&mut work, &opts).expect("verified"));
        });
    });
    group.finish();
}

fn bench_techmap(c: &mut Criterion) {
    let circuit = builders::array_multiplier(6);
    let lib = sft_techmap::Library::standard();
    c.bench_function("techmap/mul6", |b| {
        b.iter(|| black_box(sft_techmap::map_circuit(&circuit, &lib)));
    });
}

fn bench_fault_sim(c: &mut Criterion) {
    let circuit = builders::array_multiplier(6);
    let faults = fault_list(&circuit);
    let words: Vec<u64> = (0..circuit.inputs().len() as u64)
        .map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1))
        .collect();
    c.bench_function("fault_sim/mul6_block", |b| {
        let mut fsim = FaultSim::new(&circuit);
        b.iter(|| black_box(fsim.detect_block(&faults, &words)));
    });
}

fn bench_robust_pdf(c: &mut Criterion) {
    let circuit = builders::comparator(10);
    let paths = enumerate_paths(&circuit, 1 << 22).expect("enumerable");
    let cfg = PdfCampaignConfig {
        max_pairs: 64,
        plateau: 0,
        seed: 3,
        path_limit: 1 << 22,
        ..Default::default()
    };
    c.bench_function("robust_pdf/cmp10_block", |b| {
        b.iter(|| black_box(pdf_campaign_on(&circuit, &paths, &cfg)));
    });
}

fn bench_bdd_equiv(c: &mut Criterion) {
    let circuit = medium_circuit();
    c.bench_function("bdd_equiv/irs_a_self", |b| {
        b.iter(|| black_box(sft_bdd::equivalent(&circuit, &circuit).expect("fits")));
    });
}

fn bench_rar(c: &mut Criterion) {
    let circuit = builders::comparator(6);
    let opts = RamboOptions { candidate_attempts: 20, max_accepted: 2, ..RamboOptions::default() };
    let mut group = c.benchmark_group("rar");
    group.sample_size(10);
    group.bench_function("rar/cmp6", |b| {
        b.iter(|| {
            let mut work = circuit.clone();
            black_box(optimize(&mut work, &opts).expect("verified"));
        });
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_path_count,
    bench_identify,
    bench_procedures,
    bench_techmap,
    bench_fault_sim,
    bench_robust_pdf,
    bench_bdd_equiv,
    bench_rar
);
criterion_main!(kernels);
