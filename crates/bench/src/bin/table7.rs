//! Regenerates Table 7: robust path-delay-fault detection by random
//! pattern pairs, on the first suite circuit and its RAR variant, before
//! and after Procedure 2.

use sft_bench::format::{grouped, header, row};
use sft_bench::{table7_rows, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    println!(
        "Table 7: Robust PDF detection by random pairs (plateau {}, seed {})",
        grouped(cfg.pdf_plateau as u128),
        cfg.seed
    );
    println!();
    header(&[
        ("circuit", 9),
        ("pairs", 8),
        ("det/faults before P2", 22),
        ("det/faults after P2", 22),
    ]);
    for r in table7_rows(&cfg) {
        row(&[
            (r.variant.to_string(), 9),
            (r.pairs.0.to_string(), 8),
            (format!("{}/{}", grouped(r.before.0 as u128), grouped(r.before.1 as u128)), 22),
            (format!("{}/{}", grouped(r.after.0 as u128), grouped(r.after.1 as u128)), 22),
        ]);
    }
}
