//! Regenerates Table 1: the robust two-pattern test set of the comparison
//! unit with L = 11, U = 12 (Figure 6 of the paper).

use sft_core::testability::{unit_test_set, validate_test_set};
use sft_core::ComparisonSpec;

fn main() {
    let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 11, 12).expect("valid spec");
    println!("Table 1: robust test set for the comparison unit L=11, U=12");
    println!("(notation: 000/111 stable values, 0x1/1x0 transitions)");
    println!();
    let tests = unit_test_set(&spec);
    for t in &tests {
        println!("  {t}");
    }
    let (covered, total) = validate_test_set(&spec, &tests);
    println!();
    println!("independent robust checker: {covered}/{total} path delay faults covered");
    assert_eq!(covered, total, "comparison units are fully robustly testable");
}
