//! Regenerates Table 6: random-pattern stuck-at testability, before and
//! after Procedure 2 + redundancy removal, equal seeds and budgets.

use sft_bench::format::{grouped, header, row};
use sft_bench::{table6_rows, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    println!(
        "Table 6: Stuck-at random-pattern testability ({} patterns, seed {})",
        grouped(cfg.stuck_at_patterns as u128),
        cfg.seed
    );
    println!();
    header(&[
        ("circuit", 8),
        ("faults", 7),
        ("remain", 7),
        ("eff.patt", 9),
        ("m.faults", 8),
        ("m.remain", 8),
        ("m.eff.patt", 10),
    ]);
    for r in table6_rows(&cfg) {
        let eff = |e: Option<u64>| e.map_or_else(String::new, |v| grouped(v as u128));
        row(&[
            (r.name.to_string(), 8),
            (r.original.0.to_string(), 7),
            (r.original.1.to_string(), 7),
            (eff(r.original.2), 9),
            (r.modified.0.to_string(), 8),
            (r.modified.1.to_string(), 8),
            (eff(r.modified.2), 10),
        ]);
    }
}
