//! Regenerates Table 5: Procedure 3 (paths minimized).

use sft_bench::format::{grouped_paths, header, row};
use sft_bench::{table5_rows, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    println!("Table 5: Results of Procedure 3 (paths minimized; gates may rise)");
    println!();
    header(&[
        ("circuit(K)", 12),
        ("inp", 5),
        ("out", 5),
        ("2-inp orig", 10),
        ("modif", 8),
        ("paths orig", 14),
        ("modif", 14),
    ]);
    for r in table5_rows(&cfg) {
        row(&[
            (format!("{} ({})", r.name, r.k), 12),
            (r.io.0.to_string(), 5),
            (r.io.1.to_string(), 5),
            (r.gates.0.to_string(), 10),
            (r.gates.1.to_string(), 8),
            (grouped_paths(r.paths.0), 14),
            (grouped_paths(r.paths.1), 14),
        ]);
    }
}
