//! Prints the substitute benchmark suite: per-circuit statistics and the
//! preparation (redundancy-removal) record. With `--dump <dir>` also
//! writes each circuit as a `.bench` file.

use sft_bench::format::{grouped_paths, header, row};
use sft_netlist::bench_format;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dump_dir = args.iter().position(|a| a == "--dump").and_then(|i| args.get(i + 1)).cloned();
    let quick = args.iter().any(|a| a == "--quick");
    let entries = if quick { sft_circuits::suite_small() } else { sft_circuits::suite() };
    println!("substitute benchmark suite ({} circuits)", entries.len());
    println!();
    header(&[
        ("circuit", 8),
        ("inputs", 7),
        ("outputs", 7),
        ("gates", 7),
        ("eq2", 7),
        ("paths", 14),
        ("depth", 6),
        ("red.removed", 11),
    ]);
    for e in &entries {
        let s = e.circuit.stats();
        row(&[
            (e.name.to_string(), 8),
            (s.inputs.to_string(), 7),
            (s.outputs.to_string(), 7),
            (s.gates.to_string(), 7),
            (s.two_input_gates.to_string(), 7),
            (grouped_paths(s.paths), 14),
            (s.depth.to_string(), 6),
            (e.redundancies_removed.to_string(), 11),
        ]);
    }
    if let Some(dir) = dump_dir {
        std::fs::create_dir_all(&dir).expect("create dump dir");
        for e in &entries {
            let path = format!("{dir}/{}.bench", e.name);
            std::fs::write(&path, bench_format::write(&e.circuit)).expect("write bench file");
            println!("wrote {path}");
        }
    }
}
