//! Regenerates Table 4: technology mapping (literals, longest path).

use sft_bench::format::{header, row};
use sft_bench::{table4_rows, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    let rows = table4_rows(&cfg);
    println!("Table 4(a): Original circuits, before and after Procedure 2");
    println!();
    header(&[("circuit", 8), ("lits", 6), ("longest", 7), ("P2 lits", 7), ("longest", 7)]);
    for r in &rows {
        row(&[
            (r.name.to_string(), 8),
            (r.original.0.to_string(), 6),
            (r.original.1.to_string(), 7),
            (r.proc2.0.to_string(), 7),
            (r.proc2.1.to_string(), 7),
        ]);
    }
    println!();
    println!("Table 4(b): After the RAR baseline, before and after Procedure 2");
    println!();
    header(&[("circuit", 8), ("lits", 6), ("longest", 7), ("P2 lits", 7), ("longest", 7)]);
    for r in &rows {
        row(&[
            (r.name.to_string(), 8),
            (r.rambo.0.to_string(), 6),
            (r.rambo.1.to_string(), 7),
            (r.rambo_proc2.0.to_string(), 7),
            (r.rambo_proc2.1.to_string(), 7),
        ]);
    }
}
