//! Regenerates Table 3: comparison with the RAMBO_C-style RAR baseline.

use sft_bench::format::{grouped_paths, header, row};
use sft_bench::{table3_rows, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    println!("Table 3: Comparison with RAMBO_C (RAR baseline), then Procedure 2 on top");
    println!();
    header(&[
        ("circuit", 8),
        ("orig 2-inp", 10),
        ("orig paths", 13),
        ("RAR 2-inp", 10),
        ("RAR paths", 13),
        ("K", 3),
        ("+P2 2-inp", 10),
        ("+P2 paths", 13),
    ]);
    for r in table3_rows(&cfg) {
        row(&[
            (r.name.to_string(), 8),
            (r.orig.0.to_string(), 10),
            (grouped_paths(r.orig.1), 13),
            (r.rambo.0.to_string(), 10),
            (grouped_paths(r.rambo.1), 13),
            (r.k.to_string(), 3),
            (r.both.0.to_string(), 10),
            (grouped_paths(r.both.1), 13),
        ]);
    }
}
