//! Regenerates the structures of Figures 1-5: comparison blocks and units.

use sft_core::{build_standalone_unit, ComparisonSpec};
use sft_netlist::bench_format;

fn show(title: &str, spec: &ComparisonSpec) {
    let c = build_standalone_unit(spec).expect("valid spec");
    let stats = c.stats();
    println!("== {title}: {spec} ==");
    println!("{}", bench_format::write(&c).trim_end());
    println!("-- {stats}");
    println!();
}

fn main() {
    // Figure 1: the unit for f2 (Sec. 3.1): L=5, U=10 under input reversal.
    show("Figure 1 (f2 unit)", &ComparisonSpec::new(vec![3, 2, 1, 0], 5, 10).expect("valid"));
    // Figure 3(a): the >=3 block over 4 inputs.
    show("Figure 3a (>=3)", &ComparisonSpec::new(vec![0, 1, 2, 3], 3, 15).expect("valid"));
    // Figure 3(b): >=12 — trailing gates omitted.
    show("Figure 3b (>=12)", &ComparisonSpec::new(vec![0, 1, 2, 3], 12, 15).expect("valid"));
    // Figure 3(c): <=12.
    show("Figure 3c (<=12)", &ComparisonSpec::new(vec![0, 1, 2, 3], 0, 12).expect("valid"));
    // Figure 3(d): <=3 — trailing gates omitted.
    show("Figure 3d (<=3)", &ComparisonSpec::new(vec![0, 1, 2, 3], 0, 3).expect("valid"));
    // Figure 4: >=7 with the AND chain merged into a 3-input gate.
    show("Figure 4 (>=7, merged)", &ComparisonSpec::new(vec![0, 1, 2, 3], 7, 15).expect("valid"));
    // Figure 5: free variables (L=5, U=7: x1, x2 free).
    show(
        "Figure 5 (free vars, L=5 U=7)",
        &ComparisonSpec::new(vec![0, 1, 2, 3], 5, 7).expect("valid"),
    );
    // Figure 6: the L=11, U=12 unit used by Table 1.
    show("Figure 6 (L=11 U=12)", &ComparisonSpec::new(vec![0, 1, 2, 3], 11, 12).expect("valid"));
}
