//! Regenerates Table 2: Procedure 2 followed by redundancy removal.

use sft_bench::format::{grouped_paths, header, row};
use sft_bench::{table2_rows, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_args(std::env::args().skip(1));
    println!("Table 2: Results of Procedure 2 (gates minimized, then redundancy removal)");
    println!();
    header(&[
        ("circuit(K)", 12),
        ("2-inp orig", 10),
        ("modif", 8),
        ("red.rem", 8),
        ("paths orig", 14),
        ("modif", 14),
        ("red.rem", 14),
    ]);
    for r in table2_rows(&cfg) {
        row(&[
            (format!("{} ({})", r.name, r.k), 12),
            (r.gates.0.to_string(), 10),
            (r.gates.1.to_string(), 8),
            (r.gates.2.map_or_else(String::new, |g| g.to_string()), 8),
            (grouped_paths(r.paths.0), 14),
            (grouped_paths(r.paths.1), 14),
            (r.paths.2.map_or_else(String::new, grouped_paths), 14),
        ]);
    }
}
