//! Minimal fixed-width table printing for the experiment binaries.

use sft_netlist::PathCount;

/// Prints a header row followed by a separator.
pub fn header(columns: &[(&str, usize)]) {
    let mut line = String::new();
    let mut rule = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:>width$}  "));
        rule.push_str(&"-".repeat(*width));
        rule.push_str("  ");
    }
    println!("{}", line.trim_end());
    println!("{}", rule.trim_end());
}

/// Prints one row of right-aligned cells with the same widths.
pub fn row(cells: &[(String, usize)]) {
    let mut line = String::new();
    for (cell, width) in cells {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{}", line.trim_end());
}

/// Formats a `u128` with thousands separators, like the paper's tables.
pub fn grouped(n: u128) -> String {
    let digits = n.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Formats a [`PathCount`] like [`grouped`], with a trailing `+` when the
/// count saturated (the printed number is then a lower bound).
pub fn grouped_paths(n: PathCount) -> String {
    let mut out = grouped(n.value());
    if n.is_saturated() {
        out.push('+');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping() {
        assert_eq!(grouped(0), "0");
        assert_eq!(grouped(999), "999");
        assert_eq!(grouped(1000), "1,000");
        assert_eq!(grouped(23_003_369), "23,003,369");
    }

    #[test]
    fn grouping_saturated() {
        assert_eq!(grouped_paths(PathCount::exact(1000)), "1,000");
        let sat: PathCount = [PathCount::exact(u128::MAX), PathCount::exact(1)].into_iter().sum();
        assert!(grouped_paths(sat).ends_with('+'));
    }
}
