//! The table experiments (Tables 2–7 of the paper).

use sft_atpg::remove_redundancies;
use sft_circuits::{suite, suite_small, SuiteEntry};
use sft_core::{procedure2, procedure3, ResynthOptions};
use sft_delay::{pdf_campaign, PdfCampaignConfig};
use sft_netlist::{Circuit, PathCount};
use sft_par::Jobs;
use sft_rambo::{optimize, RamboOptions};
use sft_sim::{campaign, fault_list, CampaignConfig};
use sft_techmap::{map_circuit, Library};

/// Budgets and scaling knobs shared by the experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Cone input limits to try (the paper reports the best of K = 5, 6).
    pub k_values: Vec<usize>,
    /// Candidate cap per gate output.
    pub max_candidates: usize,
    /// Random-pattern budget for Table 6 (the paper used 30,000,000).
    pub stuck_at_patterns: u64,
    /// Plateau for Table 7 (the paper used 100,000 pairs).
    pub pdf_plateau: u64,
    /// Hard cap on pattern pairs for Table 7.
    pub pdf_max_pairs: u64,
    /// Path-enumeration cap for Table 7 circuits.
    pub path_limit: usize,
    /// Shared RNG seed — both sides of every before/after comparison see
    /// the identical pattern sequence.
    pub seed: u64,
    /// Use the 3-circuit quick suite instead of the full 8-circuit suite.
    pub quick: bool,
    /// Worker threads for the parallel engines (resynthesis candidate
    /// scoring, campaign pattern blocks). Results are bit-identical at any
    /// value.
    pub jobs: Jobs,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            k_values: vec![5, 6],
            max_candidates: 150,
            stuck_at_patterns: 1 << 16,
            pdf_plateau: 1 << 13,
            pdf_max_pairs: 1 << 16,
            path_limit: 1 << 21,
            seed: 0x5f7,
            quick: false,
            jobs: Jobs::serial(),
        }
    }
}

impl ExperimentConfig {
    /// Parses `--quick` and `--patterns N` style flags from CLI arguments.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut cfg = ExperimentConfig::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cfg.quick = true,
                "--jobs" => {
                    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                        cfg.jobs = v;
                    }
                }
                "--patterns" => {
                    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                        cfg.stuck_at_patterns = v;
                    }
                }
                "--pairs" => {
                    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                        cfg.pdf_max_pairs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                        cfg.seed = v;
                    }
                }
                _ => {}
            }
        }
        cfg
    }

    /// The benchmark suite selected by `quick`.
    pub fn suite(&self) -> Vec<SuiteEntry> {
        if self.quick {
            suite_small()
        } else {
            suite()
        }
    }

    fn resynth_options(&self, k: usize) -> ResynthOptions {
        ResynthOptions {
            max_inputs: k,
            max_candidates_per_gate: self.max_candidates,
            jobs: self.jobs,
            ..ResynthOptions::default()
        }
    }
}

/// Runs Procedure 2 for every configured K and returns the best result
/// (fewest gates, ties by fewest paths), with the winning K.
pub fn best_procedure2(circuit: &Circuit, cfg: &ExperimentConfig) -> (Circuit, usize) {
    let mut best: Option<(Circuit, usize)> = None;
    for &k in &cfg.k_values {
        let mut c = circuit.clone();
        procedure2(&mut c, &cfg.resynth_options(k)).expect("resynthesis must verify");
        let better = match &best {
            None => true,
            Some((b, _)) => {
                (c.two_input_gate_count(), c.path_count())
                    < (b.two_input_gate_count(), b.path_count())
            }
        };
        if better {
            best = Some((c, k));
        }
    }
    best.expect("at least one K configured")
}

/// Same selection for Procedure 3 (fewest paths wins).
pub fn best_procedure3(circuit: &Circuit, cfg: &ExperimentConfig) -> (Circuit, usize) {
    let mut best: Option<(Circuit, usize)> = None;
    for &k in &cfg.k_values {
        let mut c = circuit.clone();
        procedure3(&mut c, &cfg.resynth_options(k)).expect("resynthesis must verify");
        let better = match &best {
            None => true,
            Some((b, _)) => c.path_count() < b.path_count(),
        };
        if better {
            best = Some((c, k));
        }
    }
    best.expect("at least one K configured")
}

/// One row of Table 2 (Procedure 2 followed by redundancy removal).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Circuit name.
    pub name: &'static str,
    /// Winning K.
    pub k: usize,
    /// Equivalent 2-input gates: original / modified / after red. removal.
    pub gates: (u64, u64, Option<u64>),
    /// Paths: original / modified / after red. removal
    /// (saturation-aware; see [`PathCount`]).
    pub paths: (PathCount, PathCount, Option<PathCount>),
}

/// Computes Table 2 over the suite.
pub fn table2_rows(cfg: &ExperimentConfig) -> Vec<Table2Row> {
    cfg.suite()
        .into_iter()
        .map(|entry| {
            let (modified, k) = best_procedure2(&entry.circuit, cfg);
            let mut cleaned = modified.clone();
            let report = remove_redundancies(&mut cleaned, 20_000);
            let red = report.removed > 0;
            Table2Row {
                name: entry.name,
                k,
                gates: (
                    entry.circuit.two_input_gate_count(),
                    modified.two_input_gate_count(),
                    red.then(|| cleaned.two_input_gate_count()),
                ),
                paths: (
                    entry.circuit.path_count_exact(),
                    modified.path_count_exact(),
                    red.then(|| cleaned.path_count_exact()),
                ),
            }
        })
        .collect()
}

/// One row of Table 3 (comparison with RAMBO_C).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Circuit name.
    pub name: &'static str,
    /// Original (eq-2 gates, paths).
    pub orig: (u64, PathCount),
    /// After the RAR baseline.
    pub rambo: (u64, PathCount),
    /// Winning K of the follow-up Procedure 2.
    pub k: usize,
    /// After RAR + Procedure 2.
    pub both: (u64, PathCount),
}

/// Computes Table 3 over the four smallest suite entries.
pub fn table3_rows(cfg: &ExperimentConfig) -> Vec<Table3Row> {
    let entries = cfg.suite();
    let take = entries.len().min(4);
    entries
        .into_iter()
        .take(take)
        .map(|entry| {
            let mut rambo = entry.circuit.clone();
            optimize(&mut rambo, &RamboOptions { seed: cfg.seed, ..RamboOptions::default() })
                .expect("RAR must verify");
            let (both, k) = best_procedure2(&rambo, cfg);
            Table3Row {
                name: entry.name,
                orig: (entry.circuit.two_input_gate_count(), entry.circuit.path_count_exact()),
                rambo: (rambo.two_input_gate_count(), rambo.path_count_exact()),
                k,
                both: (both.two_input_gate_count(), both.path_count_exact()),
            }
        })
        .collect()
}

/// One row of Table 4 (technology mapping).
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Circuit name.
    pub name: &'static str,
    /// Mapped (literals, longest path) of the original circuit.
    pub original: (u64, u32),
    /// Mapped stats after Procedure 2.
    pub proc2: (u64, u32),
    /// Mapped stats after the RAR baseline.
    pub rambo: (u64, u32),
    /// Mapped stats after RAR + Procedure 2.
    pub rambo_proc2: (u64, u32),
}

/// Computes Table 4 (both sub-tables) over the Table 3 circuits.
pub fn table4_rows(cfg: &ExperimentConfig) -> Vec<Table4Row> {
    let lib = Library::standard();
    let stats = |c: &Circuit| {
        let m = map_circuit(c, &lib);
        (m.literals, m.longest_path)
    };
    let entries = cfg.suite();
    let take = entries.len().min(4);
    entries
        .into_iter()
        .take(take)
        .map(|entry| {
            let (proc2_c, _) = best_procedure2(&entry.circuit, cfg);
            let mut rambo = entry.circuit.clone();
            optimize(&mut rambo, &RamboOptions { seed: cfg.seed, ..RamboOptions::default() })
                .expect("RAR must verify");
            let (both, _) = best_procedure2(&rambo, cfg);
            Table4Row {
                name: entry.name,
                original: stats(&entry.circuit),
                proc2: stats(&proc2_c),
                rambo: stats(&rambo),
                rambo_proc2: stats(&both),
            }
        })
        .collect()
}

/// One row of Table 5 (Procedure 3).
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Circuit name.
    pub name: &'static str,
    /// Winning K.
    pub k: usize,
    /// Primary inputs / outputs.
    pub io: (usize, usize),
    /// Equivalent 2-input gates: original / modified.
    pub gates: (u64, u64),
    /// Paths: original / modified (saturation-aware).
    pub paths: (PathCount, PathCount),
}

/// Computes Table 5 over the suite.
pub fn table5_rows(cfg: &ExperimentConfig) -> Vec<Table5Row> {
    cfg.suite()
        .into_iter()
        .map(|entry| {
            let (modified, k) = best_procedure3(&entry.circuit, cfg);
            Table5Row {
                name: entry.name,
                k,
                io: (entry.circuit.inputs().len(), entry.circuit.outputs().len()),
                gates: (entry.circuit.two_input_gate_count(), modified.two_input_gate_count()),
                paths: (entry.circuit.path_count_exact(), modified.path_count_exact()),
            }
        })
        .collect()
}

/// One row of Table 6 (random-pattern stuck-at testability).
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Circuit name.
    pub name: &'static str,
    /// Original circuit: (faults, remaining, last effective pattern).
    pub original: (usize, usize, Option<u64>),
    /// Modified circuit (Procedure 2 + redundancy removal): same columns.
    pub modified: (usize, usize, Option<u64>),
}

/// Computes Table 6 over the suite: equal seeds and budgets on both sides.
pub fn table6_rows(cfg: &ExperimentConfig) -> Vec<Table6Row> {
    cfg.suite()
        .into_iter()
        .map(|entry| {
            let (mut modified, _) = best_procedure2(&entry.circuit, cfg);
            remove_redundancies(&mut modified, 20_000);
            let run = |c: &Circuit| {
                let faults = fault_list(c);
                let r = campaign(
                    c,
                    &faults,
                    &CampaignConfig {
                        max_patterns: cfg.stuck_at_patterns,
                        plateau: 0,
                        seed: cfg.seed,
                        jobs: cfg.jobs,
                        ..CampaignConfig::default()
                    },
                );
                (r.total_faults, r.remaining(), r.last_effective_pattern)
            };
            Table6Row { name: entry.name, original: run(&entry.circuit), modified: run(&modified) }
        })
        .collect()
}

/// One row of Table 7 (robust PDF detection by random pattern pairs).
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Circuit variant name (`original` or `RAMBO_C`).
    pub variant: &'static str,
    /// Pairs applied before the campaign plateaued.
    pub pairs: (u64, u64),
    /// Before Procedure 2: (detected, total PDF faults).
    pub before: (usize, usize),
    /// After Procedure 2: (detected, total PDF faults).
    pub after: (usize, usize),
}

/// Computes Table 7 on the first suite circuit whose paths are enumerable
/// under the configured limit: the original and its RAR variant, each
/// before and after Procedure 2 — the same 2×2 grid the paper shows for
/// irs13207.
pub fn table7_rows(cfg: &ExperimentConfig) -> Vec<Table7Row> {
    let entry = cfg
        .suite()
        .into_iter()
        .find(|e| e.circuit.path_count() <= cfg.path_limit as u128)
        .expect("some suite circuit must be enumerable");
    let mut rambo = entry.circuit.clone();
    optimize(&mut rambo, &RamboOptions { seed: cfg.seed, ..RamboOptions::default() })
        .expect("RAR must verify");
    let pdf_cfg = PdfCampaignConfig {
        max_pairs: cfg.pdf_max_pairs,
        plateau: cfg.pdf_plateau,
        seed: cfg.seed,
        path_limit: cfg.path_limit,
        jobs: cfg.jobs,
    };
    let run = |c: &Circuit| {
        let r = pdf_campaign(c, &pdf_cfg).expect("path count within limit");
        (r.pairs_applied, r.detected, r.total_faults)
    };
    [("original", entry.circuit), ("RAMBO_C", rambo)]
        .into_iter()
        .map(|(variant, circuit)| {
            let (modified, _) = best_procedure2(&circuit, cfg);
            let (pairs_b, det_b, tot_b) = run(&circuit);
            let (pairs_a, det_a, tot_a) = run(&modified);
            Table7Row {
                variant,
                pairs: (pairs_b, pairs_a),
                before: (det_b, tot_b),
                after: (det_a, tot_a),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig {
            quick: true,
            k_values: vec![5],
            max_candidates: 60,
            stuck_at_patterns: 1 << 10,
            pdf_plateau: 1 << 8,
            pdf_max_pairs: 1 << 10,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn config_from_args() {
        let cfg = ExperimentConfig::from_args(
            ["--quick", "--patterns", "123", "--seed", "7"].iter().map(|s| s.to_string()),
        );
        assert!(cfg.quick);
        assert_eq!(cfg.stuck_at_patterns, 123);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn table2_never_increases_gates() {
        for row in table2_rows(&quick_cfg()) {
            assert!(row.gates.1 <= row.gates.0, "{}: {:?}", row.name, row.gates);
            if let Some(after) = row.gates.2 {
                assert!(after <= row.gates.1);
            }
        }
    }

    #[test]
    fn table5_never_increases_paths() {
        for row in table5_rows(&quick_cfg()) {
            assert!(row.paths.1 <= row.paths.0, "{}: {:?}", row.name, row.paths);
        }
    }

    #[test]
    fn table6_equal_budgets() {
        let cfg = quick_cfg();
        for row in table6_rows(&cfg) {
            assert!(row.original.0 > 0 && row.modified.0 > 0, "{}", row.name);
            // The headline claim: random-pattern stuck-at testability does
            // not deteriorate (coverage ratio at equal budget).
            let cov_o = 1.0 - row.original.1 as f64 / row.original.0 as f64;
            let cov_m = 1.0 - row.modified.1 as f64 / row.modified.0 as f64;
            assert!(
                cov_m >= cov_o - 0.02,
                "{}: coverage dropped {cov_o:.4} -> {cov_m:.4}",
                row.name
            );
        }
    }
}
