//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each `tableN` binary prints the same rows the paper's Table N reports,
//! measured on the substitute benchmark suite (see `sft-circuits` and
//! DESIGN.md). The logic lives here in library form so the integration
//! tests can smoke-run scaled-down versions and the Criterion benches can
//! time the kernels.
//!
//! Budget scaling: the paper applies up to 30,000,000 random patterns; on
//! one core the defaults here are scaled down (see [`ExperimentConfig`]).
//! All before/after comparisons use **equal seeds and budgets**, which is
//! what makes the paper's claims (unchanged stuck-at testability, improved
//! robust PDF coverage) budget-independent.
//!
//! # Examples
//!
//! Experiment drivers parse their budget and parallelism knobs from CLI
//! arguments; `--jobs` feeds every parallel engine:
//!
//! ```
//! use sft_bench::ExperimentConfig;
//!
//! let args = ["--quick", "--patterns", "4096", "--jobs", "4", "--seed", "7"];
//! let cfg = ExperimentConfig::from_args(args.iter().map(|s| s.to_string()));
//! assert!(cfg.quick);
//! assert_eq!(cfg.stuck_at_patterns, 4096);
//! assert_eq!(cfg.jobs.get(), 4);
//! assert_eq!(cfg.seed, 7);
//! ```

pub mod experiments;
pub mod format;

pub use experiments::{
    table2_rows, table3_rows, table4_rows, table5_rows, table6_rows, table7_rows, ExperimentConfig,
    Table2Row, Table3Row, Table4Row, Table5Row, Table6Row, Table7Row,
};
