//! Arena invariants on the irs suite: the same journal/sweep contract the
//! random-DAG property tests pin, exercised on the irredundant benchmark
//! circuits every experiment actually runs on.

use sft_circuits::suite::suite_small;
use sft_netlist::{Circuit, GateKind, NodeId};

/// Deterministically rewires every `stride`-th gate to a NAND of two
/// strictly-smaller nodes. Returns the rewired targets.
fn rewire_some(c: &mut Circuit, stride: usize) -> Vec<NodeId> {
    let targets: Vec<NodeId> = c
        .iter()
        .filter(|(id, n)| n.kind().is_gate() && id.index() >= 2 && id.index() % stride == 0)
        .map(|(id, _)| id)
        .collect();
    for &t in &targets {
        let i = t.index();
        let fanins = vec![NodeId::from_index(i / 2), NodeId::from_index(i - 1)];
        c.rewire(t, GateKind::Nand, fanins).expect("strictly-smaller fanin ids cannot cycle");
    }
    targets
}

fn all_false(c: &Circuit) -> Vec<bool> {
    vec![false; c.inputs().len()]
}

fn alternating(c: &Circuit) -> Vec<bool> {
    (0..c.inputs().len()).map(|i| i % 2 == 0).collect()
}

#[test]
fn journaled_rewires_roll_back_physically_on_the_suite() {
    for entry in suite_small() {
        let mut c = entry.circuit;
        let before = c.clone();
        let pool_before = c.fanin_pool_len();
        let was_flat = c.fanin_spans_flat();

        let cp = c.begin_edit();
        let targets = rewire_some(&mut c, 7);
        assert!(!targets.is_empty(), "{}: no rewire targets", entry.name);
        assert!(!c.fanin_spans_flat(), "{}: rewires must fragment", entry.name);
        c.rollback_to(cp);

        assert_eq!(c.fanin_pool_len(), pool_before, "{}: pool not reclaimed", entry.name);
        assert_eq!(c.fanin_spans_flat(), was_flat, "{}: flat flag not restored", entry.name);
        assert!(c == before, "{}: rollback diverged", entry.name);
    }
}

#[test]
fn sweep_compacts_and_translates_on_the_suite() {
    for entry in suite_small() {
        let mut c = entry.circuit;
        rewire_some(&mut c, 9);
        let pre = c.clone();
        let out_lo = c.eval_assignment(&all_false(&c));
        let out_hi = c.eval_assignment(&alternating(&c));

        let map = c.sweep();

        assert!(c.fanin_spans_flat(), "{}: sweep must flatten", entry.name);
        assert_eq!(c.fanin_pool_len(), c.fanin_count(), "{}: pool garbage", entry.name);
        assert_eq!(c.eval_assignment(&all_false(&c)), out_lo, "{}", entry.name);
        assert_eq!(c.eval_assignment(&alternating(&c)), out_hi, "{}", entry.name);

        let mut survivors = 0;
        for (old_id, old_node) in pre.iter() {
            let Some(new_id) = map.get(old_id) else { continue };
            survivors += 1;
            let new_node = c.node(new_id);
            assert_eq!(old_node.kind(), new_node.kind(), "{}", entry.name);
            assert_eq!(old_node.name(), new_node.name(), "{}", entry.name);
            let translated: Vec<NodeId> = old_node
                .fanins()
                .iter()
                .map(|&f| map.get(f).expect("live fanin survives"))
                .collect();
            assert_eq!(&translated[..], new_node.fanins(), "{}", entry.name);
        }
        assert_eq!(survivors, c.len(), "{}: NodeMap must cover every node", entry.name);
    }
}
