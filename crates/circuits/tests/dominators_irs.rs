//! Dominator checks on the irs substitute suite: the CHK pass and the
//! maintained view must match the brute-force delete-a-node definition on
//! every prepared suite circuit, and the maintained view must track
//! journaled edits and rollback on real (irredundant) structures, not just
//! proptest DAGs.

use sft_circuits::suite;
use sft_netlist::{Circuit, GateKind, NodeId};

/// Brute-force immediate dominators from the definition: `d` dominates `n`
/// iff deleting `d` cuts every path from `n` to the outputs; the immediate
/// one is the dominator nearest `n` (minimum topological position).
fn brute_force_idoms(c: &Circuit) -> Vec<Option<NodeId>> {
    let n = c.len();
    let order = c.topo_order().expect("acyclic");
    let fanouts = c.fanout_table();
    let mut po = vec![false; n];
    for &o in c.outputs() {
        po[o.index()] = true;
    }
    let reaches = |banned: Option<NodeId>| -> Vec<bool> {
        let mut r = vec![false; n];
        for &id in order.iter().rev() {
            if Some(id) == banned {
                continue;
            }
            r[id.index()] =
                po[id.index()] || fanouts[id.index()].iter().any(|&(cns, _)| r[cns.index()]);
        }
        r
    };
    let base = reaches(None);
    let mut pos = vec![0usize; n];
    for (p, &id) in order.iter().enumerate() {
        pos[id.index()] = p;
    }
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    for d in (0..n).map(NodeId::from_index) {
        let r = reaches(Some(d));
        for x in (0..n).map(NodeId::from_index) {
            if x != d
                && base[x.index()]
                && !r[x.index()]
                && idom[x.index()].is_none_or(|cur| pos[d.index()] < pos[cur.index()])
            {
                idom[x.index()] = Some(d);
            }
        }
    }
    idom
}

fn assert_idoms_match_brute_force(c: &mut Circuit, ctx: &str) {
    let oracle = brute_force_idoms(c);
    assert_eq!(c.immediate_dominators(), oracle, "{ctx}: CHK diverged from brute force");
    c.refresh_views();
    let v = c.views().expect("views enabled");
    for (i, want) in oracle.iter().enumerate() {
        assert_eq!(v.idom(NodeId::from_index(i)), *want, "{ctx}: view idom diverged at n{i}");
    }
}

#[test]
fn suite_dominators_match_brute_force_and_survive_edits() {
    for entry in suite() {
        let mut c = entry.circuit;
        c.enable_views();
        assert_idoms_match_brute_force(&mut c, entry.name);
        let baseline = c.immediate_dominators();

        // Deterministic journaled edits: rewire a spread of gates to
        // fresh fanins with smaller ids (stays acyclic), check mid-edit,
        // then roll back and check the view landed exactly where it began.
        let cp = c.begin_edit();
        let gate_ids: Vec<NodeId> =
            c.iter().filter(|(_, node)| node.kind().is_gate()).map(|(id, _)| id).collect();
        for (k, &g) in gate_ids.iter().step_by(gate_ids.len() / 7 + 1).enumerate() {
            let t = g.index();
            if t == 0 {
                continue;
            }
            let a = NodeId::from_index((t * 7 + k) % t);
            let b = NodeId::from_index((t * 13 + 3 * k) % t);
            c.rewire(g, if k % 2 == 0 { GateKind::And } else { GateKind::Nor }, vec![a, b])
                .expect("smaller-id fanins cannot cycle");
        }
        assert_idoms_match_brute_force(&mut c, &format!("{} mid-edit", entry.name));
        c.rollback_to(cp);
        assert_idoms_match_brute_force(&mut c, &format!("{} post-rollback", entry.name));
        assert_eq!(
            c.immediate_dominators(),
            baseline,
            "{}: rollback changed dominators",
            entry.name
        );
    }
}
