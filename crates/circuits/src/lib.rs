//! Benchmark circuits: structural generators and the `irs*` substitute
//! suite.
//!
//! The paper evaluates on irredundant, fully-scanned ISCAS89 circuits. The
//! original benchmark files are not redistributable here, so this crate
//! provides (see DESIGN.md, "Substitutions"):
//!
//! - [`builders`] — deterministic structural workloads: ripple-carry
//!   adders, magnitude comparators, multiplexer trees, decoders, parity
//!   trees, ALU slices and array multipliers;
//! - [`random`] — a seeded random reconvergent-DAG generator with tunable
//!   size and shape;
//! - [`gen`] — the scale tier: deterministic 10K–1M gate circuits (wide
//!   arithmetic arrays, ALU datapaths, deep random DAGs and stitched
//!   multi-core compositions) behind the `sft gen` subcommand;
//! - [`mod@suite`] — the substitute benchmark suite used by every table
//!   experiment: a fixed set of seeded circuits, each made **irredundant**
//!   with the workspace's own redundancy-removal pass, mirroring the
//!   paper's preparation of its benchmarks with the procedure of \[15\].
//!
//! # Examples
//!
//! ```
//! use sft_circuits::builders::ripple_carry_adder;
//!
//! let adder = ripple_carry_adder(4);
//! // 4-bit adder: 9 inputs (a, b, carry-in), 5 outputs (sum, carry-out).
//! assert_eq!(adder.inputs().len(), 9);
//! assert_eq!(adder.outputs().len(), 5);
//! ```

pub mod builders;
pub mod gen;
pub mod random;
pub mod suite;

pub use suite::{suite, suite_small, SuiteEntry};
