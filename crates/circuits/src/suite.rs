//! The `irs*` substitute benchmark suite.
//!
//! The paper evaluates on irredundant, fully-scanned ISCAS89 circuits with
//! more than 10,000 paths. This suite substitutes deterministic, seeded
//! circuits with the same *preparation*: every entry is passed through the
//! workspace's redundancy-removal procedure (the role of \[15\] in the
//! paper) so the starting points are irredundant, and entries span
//! structural arithmetic (adders, comparators, multipliers, multiplexers)
//! and random reconvergent logic with path counts from thousands to
//! millions. See DESIGN.md ("Substitutions") for the rationale.

use crate::builders;
use crate::random::{random_circuit, RandomCircuitConfig};
use sft_atpg::remove_redundancies;
use sft_netlist::Circuit;

/// One suite circuit.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Suite name (stable across runs).
    pub name: &'static str,
    /// The irredundant circuit.
    pub circuit: Circuit,
    /// Number of redundancies removed during preparation.
    pub redundancies_removed: usize,
}

fn prepare(name: &'static str, mut circuit: Circuit) -> SuiteEntry {
    circuit.set_name(name);
    let report = remove_redundancies(&mut circuit, 20_000);
    SuiteEntry { name, circuit, redundancies_removed: report.removed }
}

/// The full substitute suite (8 circuits, mirroring Table 2's row count).
///
/// Deterministic: repeated calls build identical circuits. Preparation
/// (redundancy removal) runs on every call; expect a few seconds.
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        prepare(
            "irs_a",
            random_circuit(&RandomCircuitConfig {
                inputs: 20,
                outputs: 10,
                gates: 150,
                window: 36,
                seed: 0xA,
            }),
        ),
        prepare(
            "irs_b",
            random_circuit(&RandomCircuitConfig {
                inputs: 32,
                outputs: 16,
                gates: 260,
                window: 56,
                seed: 0xB1,
            }),
        ),
        prepare("irs_c", builders::ripple_carry_adder(16)),
        prepare("irs_d", builders::comparator(12)),
        prepare("irs_e", builders::array_multiplier(6)),
        prepare("irs_f", builders::mux_tree(6)),
        prepare(
            "irs_g",
            random_circuit(&RandomCircuitConfig {
                inputs: 14,
                outputs: 6,
                gates: 70,
                window: 28,
                seed: 0xE,
            }),
        ),
        prepare(
            "irs_h",
            random_circuit(&RandomCircuitConfig {
                inputs: 40,
                outputs: 20,
                gates: 400,
                window: 80,
                seed: 0xF,
            }),
        ),
    ]
}

/// A small subset for quick runs and CI-grade tests: the three smallest
/// suite circuits.
pub fn suite_small() -> Vec<SuiteEntry> {
    vec![
        prepare(
            "irs_a",
            random_circuit(&RandomCircuitConfig {
                inputs: 20,
                outputs: 10,
                gates: 150,
                window: 36,
                seed: 0xA,
            }),
        ),
        prepare("irs_d", builders::comparator(12)),
        prepare("irs_f", builders::mux_tree(6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_atpg::generate_test;
    use sft_sim::fault_list;

    #[test]
    fn suite_small_is_irredundant_and_valid() {
        for entry in suite_small() {
            entry.circuit.validate().unwrap();
            assert!(entry.circuit.path_count() > 100, "{} too small", entry.name);
            // Spot-check irredundancy on a sample of faults.
            let faults = fault_list(&entry.circuit);
            for fault in faults.iter().step_by(7) {
                assert!(
                    generate_test(&entry.circuit, *fault, 50_000).is_test(),
                    "{}: {fault} should be testable after preparation",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn suite_small_deterministic() {
        let a = suite_small();
        let b = suite_small();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.circuit, y.circuit, "{}", x.name);
        }
    }
}
