//! Industrial-scale circuit generation (the `sft gen` suite).
//!
//! The [`builders`](crate::builders) module produces workloads sized for
//! exhaustive functional verification (tens to hundreds of gates). This
//! module produces the **scale tier**: deterministic, seed-parameterized
//! circuits in the 10K–1M gate range, built with pre-reserved node arenas
//! and *unnamed* interior nodes (only primary inputs and outputs carry
//! names), so a million-gate netlist costs a million small structs, not a
//! million heap strings.
//!
//! Four families cover the shapes that stress different hot paths:
//!
//! - [`wide_multiplier`]/[`wide_adder`] — arithmetic arrays with deep
//!   carry/reduction structure (long sensitizable paths, huge path counts);
//! - [`alu`] — wide ALU datapaths: shared opcode fanout stems driving every
//!   bit slice (large fanout cones, many equivalent faults);
//! - [`deep_dag`] — streaming sliding-window random DAGs (reconvergent
//!   "random logic" à la the irs suite, at three orders of magnitude more
//!   gates);
//! - [`stitched`] — compositions of many independent irs-shaped cores whose
//!   outputs are XOR-checksummed together: total size grows linearly with
//!   the copy count while every fault cone stays bounded by one core plus
//!   its checksum path, the shape that separates cone-bounded fault
//!   simulation from resimulate-the-world engines.
//!
//! Every generator is a pure function of its parameters: equal parameters
//! produce byte-identical circuits on every platform, which the `.bench`
//! corpus pins in tests.

use crate::builders::full_adder;
use crate::random::{random_circuit, RandomCircuitConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_netlist::{Circuit, GateKind, NodeId};

/// Builds an `n`×`n` unsigned array multiplier into `c` from already-created
/// operand bits, returning the `2n` product bits (LSB first). Interior nodes
/// stay unnamed.
fn multiplier_into(c: &mut Circuit, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    // One spare column: the reduction may structurally generate a carry
    // out of the top column even though it is numerically always 0.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * n + 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = c.add_gate(GateKind::And, vec![ai, bj]).expect("valid gate");
            columns[i + j].push(pp);
        }
    }
    let mut outputs = Vec::with_capacity(2 * n);
    for col in 0..2 * n {
        while columns[col].len() > 1 {
            if columns[col].len() >= 3 {
                let z = columns[col].pop().expect("len >= 3");
                let y = columns[col].pop().expect("len >= 2");
                let x = columns[col].pop().expect("len >= 1");
                let (s, co) = full_adder(c, x, y, z);
                columns[col].push(s);
                columns[col + 1].push(co);
            } else {
                let y = columns[col].pop().expect("len == 2");
                let x = columns[col].pop().expect("len == 1");
                let s = c.add_gate(GateKind::Xor, vec![x, y]).expect("valid gate");
                let co = c.add_gate(GateKind::And, vec![x, y]).expect("valid gate");
                columns[col].push(s);
                columns[col + 1].push(co);
            }
        }
        outputs.push(columns[col].first().copied().unwrap_or_else(|| c.add_const(false)));
    }
    outputs
}

/// An `n`×`n` array multiplier with no width cap: inputs `a0..`, `b0..`
/// (bit 0 = LSB), outputs `p0..p{2n-1}`. Roughly `6n²` gates — `n = 96`
/// is ~55K gates, `n = 416` crosses a million.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wide_multiplier(n: usize) -> Circuit {
    assert!(n > 0, "multiplier width must be positive");
    let mut c = Circuit::with_capacity(format!("mul{n}"), 2 * n + 6 * n * n);
    let a: Vec<_> = (0..n).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..n).map(|i| c.add_input(format!("b{i}"))).collect();
    let products = multiplier_into(&mut c, &a, &b);
    for (i, o) in products.into_iter().enumerate() {
        c.add_output(o, format!("p{i}"));
    }
    c
}

/// An `n`-bit ripple-carry adder with a pre-reserved arena: inputs `a0..`,
/// `b0..`, `cin`; outputs `s0..s{n-1}`, `cout`. Five gates per bit.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wide_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut c = Circuit::with_capacity(format!("add{n}"), 2 * n + 1 + 5 * n);
    let a: Vec<_> = (0..n).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..n).map(|i| c.add_input(format!("b{i}"))).collect();
    let mut carry = c.add_input("cin");
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let (s, co) = full_adder(&mut c, a[i], b[i], carry);
        sums.push(s);
        carry = co;
    }
    for (i, s) in sums.into_iter().enumerate() {
        c.add_output(s, format!("s{i}"));
    }
    c.add_output(carry, "cout");
    c
}

/// A `width`-bit 4-operation ALU: per-bit operands `a*`/`b*`, carry input
/// `cin`, shared opcode `op0`/`op1` (00 = AND, 01 = OR, 10 = XOR,
/// 11 = ADD); outputs `r0..r{width-1}` and `cout`. About 13 gates per bit,
/// with the opcode stems fanning out to every slice — the high-fanout shape
/// arithmetic arrays don't exercise.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn alu(width: usize) -> Circuit {
    assert!(width > 0, "ALU width must be positive");
    let mut c = Circuit::with_capacity(format!("alu{width}"), 2 * width + 3 + 14 * width);
    let a: Vec<_> = (0..width).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..width).map(|i| c.add_input(format!("b{i}"))).collect();
    let cin = c.add_input("cin");
    let op0 = c.add_input("op0");
    let op1 = c.add_input("op1");
    let n0 = c.add_gate(GateKind::Not, vec![op0]).expect("valid gate");
    let n1 = c.add_gate(GateKind::Not, vec![op1]).expect("valid gate");
    let mut carry = cin;
    let mut results = Vec::with_capacity(width);
    for i in 0..width {
        let and_ab = c.add_gate(GateKind::And, vec![a[i], b[i]]).expect("valid gate");
        let or_ab = c.add_gate(GateKind::Or, vec![a[i], b[i]]).expect("valid gate");
        let xor_ab = c.add_gate(GateKind::Xor, vec![a[i], b[i]]).expect("valid gate");
        let (sum, cout) = full_adder(&mut c, a[i], b[i], carry);
        carry = cout;
        let s00 = c.add_gate(GateKind::And, vec![n1, n0, and_ab]).expect("valid gate");
        let s01 = c.add_gate(GateKind::And, vec![n1, op0, or_ab]).expect("valid gate");
        let s10 = c.add_gate(GateKind::And, vec![op1, n0, xor_ab]).expect("valid gate");
        let s11 = c.add_gate(GateKind::And, vec![op1, op0, sum]).expect("valid gate");
        results.push(c.add_gate(GateKind::Or, vec![s00, s01, s10, s11]).expect("valid gate"));
    }
    for (i, r) in results.into_iter().enumerate() {
        c.add_output(r, format!("r{i}"));
    }
    let cout_gated = c.add_gate(GateKind::And, vec![op1, op0, carry]).expect("valid gate");
    c.add_output(cout_gated, "cout");
    c
}

/// A streaming sliding-window random DAG sized for the scale tier: the
/// same reconvergent shape as [`random_circuit`], but with a pre-reserved
/// arena, unnamed interior nodes, and **no normalization pass** — at
/// hundreds of thousands of gates the generator must not pay a global
/// simplification sweep, and the raw DAG (with its buffers and
/// redundancies) is exactly the "unoptimized synthesis output" workload
/// the testability experiments want.
///
/// Deterministic in the config. Small `window` values give deep, highly
/// reconvergent circuits.
///
/// # Panics
///
/// Panics if `inputs == 0`, `outputs == 0` or `gates == 0`.
pub fn deep_dag(config: &RandomCircuitConfig) -> Circuit {
    assert!(config.inputs > 0 && config.outputs > 0 && config.gates > 0, "empty config");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut c =
        Circuit::with_capacity(format!("dag_{}", config.seed), config.inputs + config.gates);
    let mut pool: Vec<NodeId> = (0..config.inputs).map(|i| c.add_input(format!("i{i}"))).collect();
    pool.reserve(config.gates);
    let kinds =
        [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor, GateKind::And, GateKind::Or];
    for _ in 0..config.gates {
        let window = config.window.min(pool.len());
        let pick = |rng: &mut StdRng, pool: &[NodeId]| {
            let lo = pool.len() - window;
            pool[rng.gen_range(lo..pool.len())]
        };
        let kind =
            if rng.gen_ratio(1, 12) { GateKind::Not } else { kinds[rng.gen_range(0..kinds.len())] };
        let arity = if kind == GateKind::Not {
            1
        } else if rng.gen_ratio(1, 4) {
            3
        } else {
            2
        };
        let mut fanins = Vec::with_capacity(arity);
        for _ in 0..arity {
            fanins.push(pick(&mut rng, &pool));
        }
        fanins.dedup();
        if fanins.is_empty() {
            continue;
        }
        let kind = if fanins.len() == 1 && kind != GateKind::Not { GateKind::Buf } else { kind };
        let g = c.add_gate(kind, fanins).expect("valid fanins");
        pool.push(g);
    }
    // Outputs: the most recent distinct signals (they dominate the DAG).
    let take = config.outputs.min(pool.len());
    for (i, &o) in pool.iter().rev().take(take).enumerate() {
        c.add_output(o, format!("o{i}"));
    }
    c
}

/// Reduces `nodes` with a balanced XOR2 tree, returning the root (or the
/// single node unchanged).
fn xor_tree(c: &mut Circuit, mut layer: Vec<NodeId>) -> NodeId {
    debug_assert!(!layer.is_empty());
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(c.add_gate(GateKind::Xor, vec![pair[0], pair[1]]).expect("valid gate"));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// A stitched composition of `copies` independent irs-shaped cores.
///
/// Each core is [`random_circuit`] with `config`'s shape and seed
/// `config.seed + k` (the same generator family behind the irs suite,
/// without the redundancy-removal preparation); core `k`'s inputs are
/// renamed `c{k}_*`. The cores' primary outputs are combined position by
/// position with balanced XOR checksum trees into `config.outputs` outputs
/// named `chk*`.
///
/// Total size scales linearly with `copies` while every fault cone stays
/// bounded by one core plus its checksum path — ~500 copies of the default
/// shape cross 100K gates and still fault-simulate in bounded cones.
///
/// # Panics
///
/// Panics if `copies == 0` or the config is empty.
pub fn stitched(copies: usize, config: &RandomCircuitConfig) -> Circuit {
    assert!(copies > 0, "need at least one core");
    let per_core = config.inputs + config.gates;
    let mut c = Circuit::with_capacity(
        format!("stitch{copies}x{}_{}", config.gates, config.seed),
        copies * per_core + copies * config.outputs,
    );
    let mut checksum_columns: Vec<Vec<NodeId>> = vec![Vec::new(); config.outputs];
    for k in 0..copies {
        let core = random_circuit(&RandomCircuitConfig {
            seed: config.seed.wrapping_add(k as u64),
            ..config.clone()
        });
        // Append the core in topological order, mapping its ids into the
        // composite arena. Interior nodes stay unnamed.
        let mut map: Vec<NodeId> = vec![NodeId::from_index(0); core.len()];
        for &id in &core.topo_order().expect("generated cores are acyclic") {
            let node = core.node(id);
            map[id.index()] = match node.kind() {
                GateKind::Input => c.add_input(format!("c{k}_{}", node.name().unwrap_or("i"))),
                kind => {
                    let fanins = node.fanins().iter().map(|f| map[f.index()]).collect();
                    c.add_gate(kind, fanins).expect("valid gate")
                }
            };
        }
        for (j, &o) in core.outputs().iter().enumerate() {
            checksum_columns[j % config.outputs].push(map[o.index()]);
        }
    }
    for (j, column) in checksum_columns.into_iter().enumerate() {
        if column.is_empty() {
            continue;
        }
        let root = xor_tree(&mut c, column);
        c.add_output(root, format!("chk{j}"));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_multiplier_matches_capped_builder_function() {
        // Same function as builders::array_multiplier on overlapping widths.
        let wide = wide_multiplier(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let assignment: Vec<bool> = (0..4)
                    .map(|i| a >> i & 1 == 1)
                    .chain((0..4).map(|i| b >> i & 1 == 1))
                    .collect();
                let out = wide.eval_assignment(&assignment);
                let num =
                    out.iter().enumerate().fold(0u64, |acc, (i, &v)| acc | (u64::from(v) << i));
                assert_eq!(num, a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn wide_adder_adds() {
        let c = wide_adder(6);
        for (a, b, cin) in [(0u64, 0u64, 0u64), (63, 63, 1), (21, 42, 0), (17, 48, 1)] {
            let assignment: Vec<bool> = (0..6)
                .map(|i| a >> i & 1 == 1)
                .chain((0..6).map(|i| b >> i & 1 == 1))
                .chain([cin == 1])
                .collect();
            let out = c.eval_assignment(&assignment);
            let num = out.iter().enumerate().fold(0u64, |acc, (i, &v)| acc | (u64::from(v) << i));
            assert_eq!(num, a + b + cin, "{a}+{b}+{cin}");
        }
    }

    #[test]
    fn alu_computes_all_ops() {
        let c = alu(5);
        for (a, b, cin) in [(0u64, 0u64, 0u64), (31, 31, 1), (0b10110, 0b01101, 0)] {
            for op in 0..4u64 {
                let assignment: Vec<bool> = (0..5)
                    .map(|i| a >> i & 1 == 1)
                    .chain((0..5).map(|i| b >> i & 1 == 1))
                    .chain([cin == 1, op & 1 == 1, op >> 1 & 1 == 1])
                    .collect();
                let out = c.eval_assignment(&assignment);
                let r = (0..5).fold(0u64, |acc, i| acc | (u64::from(out[i]) << i));
                let cout = u64::from(out[5]);
                let (er, ec) = match op {
                    0 => (a & b, 0),
                    1 => (a | b, 0),
                    2 => (a ^ b, 0),
                    _ => ((a + b + cin) & 31, (a + b + cin) >> 5),
                };
                assert_eq!((r, cout), (er, ec), "a={a} b={b} cin={cin} op={op}");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let cfg = RandomCircuitConfig { gates: 400, ..Default::default() };
        assert_eq!(deep_dag(&cfg), deep_dag(&cfg));
        assert_eq!(stitched(4, &cfg), stitched(4, &cfg));
        assert_eq!(wide_multiplier(12), wide_multiplier(12));
        assert_ne!(
            deep_dag(&cfg),
            deep_dag(&RandomCircuitConfig { seed: cfg.seed + 1, ..cfg.clone() })
        );
    }

    #[test]
    fn interior_nodes_stay_unnamed() {
        // Only PIs carry node names (outputs are labeled via output slots):
        // no per-gate String allocations at scale.
        let cfg = RandomCircuitConfig::default();
        for c in [deep_dag(&cfg), stitched(3, &cfg), wide_multiplier(8), alu(8), wide_adder(8)] {
            for (_, node) in c.iter() {
                assert_eq!(
                    node.name().is_some(),
                    node.kind() == GateKind::Input,
                    "unexpected name on {:?}",
                    node.kind()
                );
            }
        }
    }

    #[test]
    fn scale_sizes_are_reached() {
        let mul = wide_multiplier(48);
        assert!(mul.len() > 10_000, "mul48 has {} nodes", mul.len());
        let dag = deep_dag(&RandomCircuitConfig {
            inputs: 64,
            outputs: 32,
            gates: 20_000,
            window: 48,
            seed: 3,
        });
        assert!(dag.len() > 15_000, "dag has {} nodes", dag.len());
        mul.validate().unwrap();
        dag.validate().unwrap();
    }

    #[test]
    fn stitched_cones_are_core_bounded() {
        let cfg = RandomCircuitConfig::default();
        let copies = 6;
        let c = stitched(copies, &cfg);
        c.validate().unwrap();
        assert_eq!(c.outputs().len(), cfg.outputs);
        assert_eq!(c.inputs().len(), copies * cfg.inputs);
        // Every copy must structurally reach the checksum outputs: walk the
        // transitive fanin of all outputs and collect which copies' inputs
        // appear in the support.
        let mut reached = vec![false; c.len()];
        let mut stack: Vec<NodeId> = c.outputs().to_vec();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reached[id.index()], true) {
                continue;
            }
            stack.extend_from_slice(c.node(id).fanins());
        }
        for k in 0..copies {
            let prefix = format!("c{k}_");
            assert!(
                c.inputs().iter().any(|&i| reached[i.index()]
                    && c.node(i).name().is_some_and(|n| n.starts_with(&prefix))),
                "copy {k} does not reach any checksum output"
            );
        }
    }
}
