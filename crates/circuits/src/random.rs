//! Seeded random reconvergent-DAG circuit generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sft_netlist::{simplify, Circuit, GateKind, NodeId};

/// Shape parameters for [`random_circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomCircuitConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates to generate (before simplification).
    pub gates: usize,
    /// Locality window: fanins are drawn from the most recent `window`
    /// signals, which controls reconvergence and depth (small window =
    /// deep, highly reconvergent circuits with large path counts).
    pub window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig { inputs: 16, outputs: 8, gates: 150, window: 24, seed: 1 }
    }
}

/// Generates a seeded random combinational circuit.
///
/// Gates are 2–3 input AND/OR/NAND/NOR (with occasional inverters), drawn
/// over a sliding window of recent signals to create the reconvergent
/// fanout structure that gives multi-level benchmarks their path counts.
/// The result is normalized (constants folded, duplicates shared) and every
/// primary output is a distinct recent signal.
///
/// The generator is deterministic in the config: equal configs produce
/// identical circuits.
///
/// # Panics
///
/// Panics if `inputs == 0`, `outputs == 0` or `gates == 0`.
pub fn random_circuit(config: &RandomCircuitConfig) -> Circuit {
    assert!(config.inputs > 0 && config.outputs > 0 && config.gates > 0, "empty config");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut c = Circuit::new(format!("rand_{}", config.seed));
    let mut pool: Vec<NodeId> = (0..config.inputs).map(|i| c.add_input(format!("i{i}"))).collect();
    let kinds =
        [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor, GateKind::And, GateKind::Or];
    for gi in 0..config.gates {
        let window = config.window.min(pool.len());
        let pick = |rng: &mut StdRng, pool: &[NodeId]| {
            let lo = pool.len() - window;
            pool[rng.gen_range(lo..pool.len())]
        };
        let kind =
            if rng.gen_ratio(1, 12) { GateKind::Not } else { kinds[rng.gen_range(0..kinds.len())] };
        let arity = if kind == GateKind::Not {
            1
        } else if rng.gen_ratio(1, 4) {
            3
        } else {
            2
        };
        let mut fanins = Vec::with_capacity(arity);
        for _ in 0..arity {
            fanins.push(pick(&mut rng, &pool));
        }
        fanins.dedup();
        if fanins.is_empty() {
            continue;
        }
        let kind = if fanins.len() == 1 && kind != GateKind::Not { GateKind::Buf } else { kind };
        let g = c.add_gate(kind, fanins).expect("valid fanins");
        pool.push(g);
        let _ = gi;
    }
    // Outputs: the most recent distinct signals (they dominate the DAG).
    let take = config.outputs.min(pool.len());
    for (i, &o) in pool.iter().rev().take(take).enumerate() {
        c.add_output(o, format!("o{i}"));
    }
    simplify::normalize(&mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = RandomCircuitConfig::default();
        let a = random_circuit(&cfg);
        let b = random_circuit(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_circuit(&RandomCircuitConfig { seed: 1, ..Default::default() });
        let b = random_circuit(&RandomCircuitConfig { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn valid_and_nonempty() {
        for seed in 0..10 {
            let c = random_circuit(&RandomCircuitConfig { seed, ..Default::default() });
            c.validate().unwrap();
            assert!(c.two_input_gate_count() > 0, "seed {seed}");
            assert!(c.path_count() > 0, "seed {seed}");
            assert_eq!(c.outputs().len(), 8);
        }
    }

    #[test]
    fn small_window_gives_more_paths() {
        let wide =
            random_circuit(&RandomCircuitConfig { window: 64, gates: 300, ..Default::default() });
        let narrow =
            random_circuit(&RandomCircuitConfig { window: 6, gates: 300, ..Default::default() });
        assert!(
            narrow.path_count() > wide.path_count(),
            "narrow {} vs wide {}",
            narrow.path_count(),
            wide.path_count()
        );
    }
}
