//! Deterministic structural circuit generators.
//!
//! These are classical combinational workloads with known input/output
//! semantics; every builder's function is validated in the test suite
//! against an arithmetic reference.

use sft_netlist::{Circuit, GateKind, NodeId};

pub(crate) fn full_adder(c: &mut Circuit, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = c.add_gate(GateKind::Xor, vec![a, b]).expect("valid gate");
    let sum = c.add_gate(GateKind::Xor, vec![axb, cin]).expect("valid gate");
    let t1 = c.add_gate(GateKind::And, vec![a, b]).expect("valid gate");
    let t2 = c.add_gate(GateKind::And, vec![axb, cin]).expect("valid gate");
    let cout = c.add_gate(GateKind::Or, vec![t1, t2]).expect("valid gate");
    (sum, cout)
}

/// An `n`-bit ripple-carry adder: inputs `a0..a{n-1}`, `b0..`, `cin`
/// (bit 0 = LSB); outputs `s0..s{n-1}`, `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut c = Circuit::new(format!("rca{n}"));
    let a: Vec<_> = (0..n).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..n).map(|i| c.add_input(format!("b{i}"))).collect();
    let mut carry = c.add_input("cin");
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let (s, co) = full_adder(&mut c, a[i], b[i], carry);
        sums.push(s);
        carry = co;
    }
    for (i, s) in sums.into_iter().enumerate() {
        c.add_output(s, format!("s{i}"));
    }
    c.add_output(carry, "cout");
    c
}

/// An `n`-bit magnitude comparator: outputs `lt`, `eq`, `gt` for operands
/// `a` and `b` (bit 0 = LSB).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator(n: usize) -> Circuit {
    assert!(n > 0, "comparator width must be positive");
    let mut c = Circuit::new(format!("cmp{n}"));
    let a: Vec<_> = (0..n).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..n).map(|i| c.add_input(format!("b{i}"))).collect();
    // Bitwise equality, then prefix chains from the MSB.
    let eqs: Vec<NodeId> =
        (0..n).map(|i| c.add_gate(GateKind::Xnor, vec![a[i], b[i]]).expect("valid gate")).collect();
    let mut eq_prefix: Option<NodeId> = None; // MSB-down running equality
    let mut lt_terms = Vec::new();
    let mut gt_terms = Vec::new();
    for i in (0..n).rev() {
        let nb = c.add_gate(GateKind::Not, vec![b[i]]).expect("valid gate");
        let na = c.add_gate(GateKind::Not, vec![a[i]]).expect("valid gate");
        let a_gt = c.add_gate(GateKind::And, vec![a[i], nb]).expect("valid gate");
        let a_lt = c.add_gate(GateKind::And, vec![na, b[i]]).expect("valid gate");
        let (gt_t, lt_t) = match eq_prefix {
            None => (a_gt, a_lt),
            Some(p) => (
                c.add_gate(GateKind::And, vec![p, a_gt]).expect("valid gate"),
                c.add_gate(GateKind::And, vec![p, a_lt]).expect("valid gate"),
            ),
        };
        gt_terms.push(gt_t);
        lt_terms.push(lt_t);
        eq_prefix = Some(match eq_prefix {
            None => eqs[i],
            Some(p) => c.add_gate(GateKind::And, vec![p, eqs[i]]).expect("valid gate"),
        });
    }
    let gt = if gt_terms.len() == 1 {
        gt_terms[0]
    } else {
        c.add_gate(GateKind::Or, gt_terms).expect("valid gate")
    };
    let lt = if lt_terms.len() == 1 {
        lt_terms[0]
    } else {
        c.add_gate(GateKind::Or, lt_terms).expect("valid gate")
    };
    let eq = eq_prefix.expect("n > 0");
    c.add_output(lt, "lt");
    c.add_output(eq, "eq");
    c.add_output(gt, "gt");
    c
}

/// A `2^k`-to-1 multiplexer tree: `2^k` data inputs `d*`, `k` select
/// inputs `s*` (s0 = LSB), one output.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 6`.
pub fn mux_tree(k: usize) -> Circuit {
    assert!(k > 0 && k <= 6, "select width out of range");
    let mut c = Circuit::new(format!("mux{}", 1 << k));
    let d: Vec<_> = (0..1usize << k).map(|i| c.add_input(format!("d{i}"))).collect();
    let s: Vec<_> = (0..k).map(|i| c.add_input(format!("s{i}"))).collect();
    let mut layer = d;
    for (bit, &sel) in s.iter().enumerate() {
        let nsel = c.add_gate(GateKind::Not, vec![sel]).expect("valid gate");
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            let t0 = c.add_gate(GateKind::And, vec![nsel, pair[0]]).expect("valid gate");
            let t1 = c.add_gate(GateKind::And, vec![sel, pair[1]]).expect("valid gate");
            next.push(c.add_gate(GateKind::Or, vec![t0, t1]).expect("valid gate"));
        }
        debug_assert!(!next.is_empty(), "layer {bit} empty");
        layer = next;
    }
    c.add_output(layer[0], "y");
    c
}

/// A `k`-to-`2^k` decoder with enable: inputs `x0..x{k-1}` (LSB first) and
/// `en`; outputs `o0..`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 6`.
pub fn decoder(k: usize) -> Circuit {
    assert!(k > 0 && k <= 6, "decoder width out of range");
    let mut c = Circuit::new(format!("dec{k}"));
    let x: Vec<_> = (0..k).map(|i| c.add_input(format!("x{i}"))).collect();
    let en = c.add_input("en");
    let nx: Vec<_> =
        x.iter().map(|&xi| c.add_gate(GateKind::Not, vec![xi]).expect("valid gate")).collect();
    for m in 0..1usize << k {
        let mut fanins = vec![en];
        for i in 0..k {
            fanins.push(if m >> i & 1 == 1 { x[i] } else { nx[i] });
        }
        let o = c.add_gate(GateKind::And, fanins).expect("valid gate");
        c.add_output(o, format!("o{m}"));
    }
    c
}

/// An `n`-input parity tree (XOR2 tree), output `p`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn parity_tree(n: usize) -> Circuit {
    assert!(n >= 2, "parity needs at least two inputs");
    let mut c = Circuit::new(format!("par{n}"));
    let mut layer: Vec<_> = (0..n).map(|i| c.add_input(format!("x{i}"))).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(c.add_gate(GateKind::Xor, vec![pair[0], pair[1]]).expect("valid gate"));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    c.add_output(layer[0], "p");
    c
}

/// A 1-bit ALU slice with 2 opcode bits: computes AND, OR, XOR or full-add
/// of `a`, `b` with carry `cin`; outputs `r` and `cout`.
pub fn alu_slice() -> Circuit {
    let mut c = Circuit::new("alu1");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let cin = c.add_input("cin");
    let op0 = c.add_input("op0");
    let op1 = c.add_input("op1");
    let and_ab = c.add_gate(GateKind::And, vec![a, b]).expect("valid gate");
    let or_ab = c.add_gate(GateKind::Or, vec![a, b]).expect("valid gate");
    let xor_ab = c.add_gate(GateKind::Xor, vec![a, b]).expect("valid gate");
    let (sum, cout) = full_adder(&mut c, a, b, cin);
    // 4-to-1 select by (op1, op0): 00=AND, 01=OR, 10=XOR, 11=ADD.
    let n0 = c.add_gate(GateKind::Not, vec![op0]).expect("valid gate");
    let n1 = c.add_gate(GateKind::Not, vec![op1]).expect("valid gate");
    let s00 = c.add_gate(GateKind::And, vec![n1, n0, and_ab]).expect("valid gate");
    let s01 = c.add_gate(GateKind::And, vec![n1, op0, or_ab]).expect("valid gate");
    let s10 = c.add_gate(GateKind::And, vec![op1, n0, xor_ab]).expect("valid gate");
    let s11 = c.add_gate(GateKind::And, vec![op1, op0, sum]).expect("valid gate");
    let r = c.add_gate(GateKind::Or, vec![s00, s01, s10, s11]).expect("valid gate");
    let cout_gated = c.add_gate(GateKind::And, vec![op1, op0, cout]).expect("valid gate");
    c.add_output(r, "r");
    c.add_output(cout_gated, "cout");
    c
}

/// An `n`×`n` array multiplier (bit 0 = LSB); outputs `p0..p{2n-1}`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 8`.
pub fn array_multiplier(n: usize) -> Circuit {
    assert!(n > 0 && n <= 8, "multiplier width out of range");
    let mut c = Circuit::new(format!("mul{n}"));
    let a: Vec<_> = (0..n).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..n).map(|i| c.add_input(format!("b{i}"))).collect();
    // Partial products.
    // One spare column: the reduction may structurally generate a carry
    // out of the top column even though it is numerically always 0.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * n + 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = c.add_gate(GateKind::And, vec![ai, bj]).expect("valid gate");
            columns[i + j].push(pp);
        }
    }
    // Carry-save reduction with full/half adders.
    let mut outputs = Vec::with_capacity(2 * n);
    for col in 0..2 * n {
        while columns[col].len() > 1 {
            if columns[col].len() >= 3 {
                let z = columns[col].pop().expect("len >= 3");
                let y = columns[col].pop().expect("len >= 2");
                let x = columns[col].pop().expect("len >= 1");
                let (s, co) = full_adder(&mut c, x, y, z);
                columns[col].push(s);
                columns[col + 1].push(co);
            } else {
                let y = columns[col].pop().expect("len == 2");
                let x = columns[col].pop().expect("len == 1");
                let s = c.add_gate(GateKind::Xor, vec![x, y]).expect("valid gate");
                let co = c.add_gate(GateKind::And, vec![x, y]).expect("valid gate");
                columns[col].push(s);
                columns[col + 1].push(co);
            }
        }
        let bit = columns[col].first().copied().unwrap_or_else(|| c.add_const(false));
        outputs.push(bit);
    }
    // The spare column is numerically constant 0 and intentionally dropped.
    for (i, o) in outputs.into_iter().enumerate() {
        c.add_output(o, format!("p{i}"));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_num(c: &Circuit, inputs: &[(usize, u64)]) -> u64 {
        // inputs: (width, value) groups in input order; returns outputs as
        // a number (output 0 = LSB).
        let mut assignment = Vec::new();
        for &(width, value) in inputs {
            for i in 0..width {
                assignment.push(value >> i & 1 == 1);
            }
        }
        let out = c.eval_assignment(&assignment);
        out.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_adds() {
        let c = ripple_carry_adder(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in 0..2u64 {
                    let r = eval_num(&c, &[(4, a), (4, b), (1, cin)]);
                    assert_eq!(r, a + b + cin, "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn comparator_compares() {
        let c = comparator(3);
        for a in 0..8u64 {
            for b in 0..8u64 {
                let out = eval_num(&c, &[(3, a), (3, b)]);
                let lt = out & 1 == 1;
                let eq = out >> 1 & 1 == 1;
                let gt = out >> 2 & 1 == 1;
                assert_eq!(lt, a < b, "{a} < {b}");
                assert_eq!(eq, a == b, "{a} == {b}");
                assert_eq!(gt, a > b, "{a} > {b}");
            }
        }
    }

    #[test]
    fn mux_selects() {
        let c = mux_tree(3);
        for data in [0u64, 0b10110100, 0xff, 0x55] {
            for sel in 0..8u64 {
                let out = eval_num(&c, &[(8, data), (3, sel)]);
                assert_eq!(out, data >> sel & 1, "data {data:#x} sel {sel}");
            }
        }
    }

    #[test]
    fn decoder_decodes() {
        let c = decoder(3);
        for x in 0..8u64 {
            for en in 0..2u64 {
                let out = eval_num(&c, &[(3, x), (1, en)]);
                assert_eq!(out, if en == 1 { 1 << x } else { 0 });
            }
        }
    }

    #[test]
    fn parity_is_parity() {
        let c = parity_tree(7);
        for x in 0..128u64 {
            let out = eval_num(&c, &[(7, x)]);
            assert_eq!(out, u64::from(x.count_ones() % 2 == 1));
        }
    }

    #[test]
    fn alu_slice_ops() {
        let c = alu_slice();
        for bits in 0..32u64 {
            let a = bits & 1;
            let b = bits >> 1 & 1;
            let cin = bits >> 2 & 1;
            let op0 = bits >> 3 & 1;
            let op1 = bits >> 4 & 1;
            let out = eval_num(&c, &[(1, a), (1, b), (1, cin), (1, op0), (1, op1)]);
            let r = out & 1;
            let cout = out >> 1 & 1;
            let (er, ec) = match (op1, op0) {
                (0, 0) => (a & b, 0),
                (0, 1) => (a | b, 0),
                (1, 0) => (a ^ b, 0),
                _ => ((a + b + cin) & 1, (a + b + cin) >> 1),
            };
            assert_eq!((r, cout), (er, ec), "a={a} b={b} cin={cin} op={op1}{op0}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let c = array_multiplier(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let out = eval_num(&c, &[(4, a), (4, b)]);
                assert_eq!(out, a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn builders_validate() {
        for c in [
            ripple_carry_adder(8),
            comparator(8),
            mux_tree(4),
            decoder(4),
            parity_tree(16),
            alu_slice(),
            array_multiplier(5),
        ] {
            c.validate().unwrap();
            assert!(c.path_count() > 0);
        }
    }
}
