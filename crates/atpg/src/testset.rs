//! Deterministic test-set generation with static compaction.
//!
//! The classical two-phase flow: a random-pattern phase knocks out the
//! easy faults (keeping only *effective* patterns — those that detected a
//! previously-undetected fault), then PODEM targets every surviving fault
//! with fault dropping after each generated vector. A final reverse-order
//! static compaction pass removes vectors whose detections are covered by
//! the rest of the set.

use crate::podem::{generate_test_with, PodemContext, TestResult};
use sft_budget::{Budget, StopReason};
use sft_netlist::Circuit;
use sft_par::{parallel_map, Jobs};
use sft_sim::{fault_list, pattern_block, Fault, FaultSim, FaultSimTables, SimEngine};
use std::sync::Arc;

/// Options for [`generate_test_set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSetOptions {
    /// PODEM backtrack limit per fault.
    pub backtrack_limit: u64,
    /// Number of 64-pattern random blocks in phase 1 (0 skips the phase).
    pub random_blocks: usize,
    /// Run reverse-order static compaction at the end.
    pub compact: bool,
    /// Seed for the random phase.
    pub seed: u64,
    /// Worker threads simulating phase-1 pattern blocks concurrently. The
    /// generated test set is bit-identical at any value (blocks derive
    /// their patterns from `(seed, block)` and merge in block order); the
    /// deterministic PODEM phase always runs on the calling thread. The
    /// budget is checked once per chunk of up to `jobs` blocks instead of
    /// once per block.
    pub jobs: Jobs,
    /// Fault-simulation engine for the random phase, fault dropping, and
    /// compaction. Both engines are bit-identical, so the generated set
    /// does not depend on this — only wall time does.
    pub engine: SimEngine,
}

impl Default for TestSetOptions {
    fn default() -> Self {
        TestSetOptions {
            backtrack_limit: 50_000,
            random_blocks: 8,
            compact: true,
            seed: 0x7e57,
            jobs: Jobs::serial(),
            engine: SimEngine::default(),
        }
    }
}

/// A generated stuck-at test set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSet {
    /// The test vectors (one `bool` per primary input, in input order).
    pub vectors: Vec<Vec<bool>>,
    /// Faults proven redundant (they need no test).
    pub redundant: usize,
    /// Faults whose PODEM search aborted (no test found, not proven
    /// redundant).
    pub aborted: usize,
    /// Faults never targeted because the effort budget ran out. Always 0
    /// when [`stop_reason`](Self::stop_reason) is [`StopReason::Converged`].
    pub untargeted: usize,
    /// Total faults targeted.
    pub total_faults: usize,
    /// Why generation stopped. [`StopReason::Converged`] means every fault
    /// was processed; budget exhaustion keeps the vectors generated so far.
    pub stop_reason: StopReason,
}

impl TestSet {
    /// Fault coverage over the testable faults: detected / (total −
    /// redundant). Aborted and budget-skipped faults count as undetected.
    pub fn coverage(&self) -> f64 {
        let testable = self.total_faults - self.redundant;
        if testable == 0 {
            1.0
        } else {
            (testable - self.aborted - self.untargeted) as f64 / testable as f64
        }
    }
}

fn vector_to_words(vector: &[bool]) -> Vec<u64> {
    vector.iter().map(|&b| if b { u64::MAX } else { 0 }).collect()
}

/// Which of `faults` the single `vector` detects.
fn detects(fsim: &mut FaultSim<'_>, faults: &[Fault], vector: &[bool]) -> Vec<bool> {
    let words = vector_to_words(vector);
    fsim.detect_block(faults, &words).into_iter().map(|d| d.is_some()).collect()
}

/// Generates a compact stuck-at test set for every fault of `circuit`.
///
/// # Panics
///
/// Panics if the circuit is cyclic or has no inputs.
pub fn generate_test_set(circuit: &Circuit, options: &TestSetOptions) -> TestSet {
    generate_test_set_with_budget(circuit, options, &Budget::unlimited())
}

/// Generates a stuck-at test set under an effort [`Budget`].
///
/// The budget is checked once per random-pattern block and consumed one
/// step per deterministically targeted fault. On exhaustion the vectors
/// generated so far are returned as-is (final compaction is also skipped
/// — it only shrinks the set, never completes it), the remaining faults
/// are counted in [`TestSet::untargeted`], and
/// [`TestSet::stop_reason`] records which limit cut in.
///
/// # Panics
///
/// Panics if the circuit is cyclic or has no inputs.
pub fn generate_test_set_with_budget(
    circuit: &Circuit,
    options: &TestSetOptions,
    budget: &Budget,
) -> TestSet {
    assert!(!circuit.inputs().is_empty(), "circuit must have inputs");
    let faults = fault_list(circuit);
    let tables = FaultSimTables::snapshot(circuit);
    let mut fsim = FaultSim::with_tables(circuit, Arc::clone(&tables)).with_engine(options.engine);
    let mut alive: Vec<usize> = (0..faults.len()).collect();
    let mut vectors: Vec<Vec<bool>> = Vec::new();
    let n_inputs = circuit.inputs().len();
    let mut stop = StopReason::Converged;

    // Phase 1: random patterns, keeping only effective ones. Blocks are
    // simulated in chunks of up to `jobs` concurrent workers against the
    // chunk-start alive set and merged strictly in block order, so the
    // harvested vectors are bit-identical at any thread count.
    let mut block: u64 = 0;
    let total_blocks = options.random_blocks as u64;
    while block < total_blocks && !alive.is_empty() {
        if let Err(e) = budget.check() {
            stop = e.into();
            break;
        }
        let chunk: Vec<u64> =
            (block..block.saturating_add(options.jobs.get() as u64).min(total_blocks)).collect();
        let alive_faults: Vec<Fault> = alive.iter().map(|&i| faults[i]).collect();
        let per_block: Vec<(Vec<u64>, Vec<Option<u32>>)> = match options.jobs.is_serial() {
            true => chunk
                .iter()
                .map(|&b| {
                    let words = pattern_block(options.seed, b, n_inputs);
                    let det = fsim.detect_block(&alive_faults, &words);
                    (words, det)
                })
                .collect(),
            false => parallel_map(options.jobs, &chunk, |_, &b| {
                let mut worker =
                    FaultSim::with_tables(circuit, Arc::clone(&tables)).with_engine(options.engine);
                let words = pattern_block(options.seed, b, n_inputs);
                let det = worker.detect_block(&alive_faults, &words);
                (words, det)
            }),
        };
        // `still[slot]` tracks the chunk-start alive set as merged blocks
        // kill faults; a fault detected by two concurrent blocks is
        // credited to the earlier block, exactly as the serial loop would.
        let mut still = vec![true; alive.len()];
        for (words, det) in &per_block {
            let mut effective_bits: Vec<u32> = Vec::new();
            for (slot, d) in det.iter().enumerate() {
                if let Some(bit) = d {
                    if still[slot] {
                        still[slot] = false;
                        effective_bits.push(*bit);
                    }
                }
            }
            effective_bits.sort_unstable();
            effective_bits.dedup();
            for bit in effective_bits {
                let vector: Vec<bool> = (0..n_inputs).map(|i| words[i] >> bit & 1 == 1).collect();
                vectors.push(vector);
            }
        }
        alive = alive.iter().zip(&still).filter(|&(_, &s)| s).map(|(&i, _)| i).collect();
        block += chunk.len() as u64;
    }

    // Phase 2: deterministic PODEM with fault dropping. The circuit is
    // immutable here, so one structural context serves every target.
    let ctx = PodemContext::new(circuit);
    let mut redundant = 0;
    let mut aborted = 0;
    while let Some(&target) = alive.first() {
        if let Err(e) = budget.consume(1) {
            stop = e.into();
            break;
        }
        match generate_test_with(&ctx, circuit, faults[target], options.backtrack_limit) {
            TestResult::Test(vector) => {
                let alive_faults: Vec<Fault> = alive.iter().map(|&i| faults[i]).collect();
                let hit = detects(&mut fsim, &alive_faults, &vector);
                alive = alive.iter().zip(&hit).filter(|&(_, &h)| !h).map(|(&i, _)| i).collect();
                vectors.push(vector);
            }
            TestResult::Untestable => {
                redundant += 1;
                alive.remove(0);
            }
            TestResult::Aborted => {
                aborted += 1;
                alive.remove(0);
            }
        }
    }

    let untargeted = if stop.is_early() { alive.len() } else { 0 };

    // Phase 3: reverse-order static compaction. Skipped when the budget
    // ran out: compaction only shrinks the set, and the remaining effort
    // is better reported back to the caller immediately.
    if options.compact && !vectors.is_empty() && !stop.is_early() {
        let targeted: Vec<Fault> = faults.clone();
        // Detection matrix and per-fault cover counts.
        let matrix: Vec<Vec<bool>> =
            vectors.iter().map(|v| detects(&mut fsim, &targeted, v)).collect();
        let mut cover_count: Vec<u32> = vec![0; targeted.len()];
        for row in &matrix {
            for (f, &hit) in row.iter().enumerate() {
                if hit {
                    cover_count[f] += 1;
                }
            }
        }
        let mut keep = vec![true; vectors.len()];
        for v in (0..vectors.len()).rev() {
            let droppable =
                matrix[v].iter().enumerate().all(|(f, &hit)| !hit || cover_count[f] >= 2);
            if droppable {
                keep[v] = false;
                for (f, &hit) in matrix[v].iter().enumerate() {
                    if hit {
                        cover_count[f] -= 1;
                    }
                }
            }
        }
        vectors = vectors.into_iter().zip(keep).filter(|&(_, k)| k).map(|(v, _)| v).collect();
    }

    TestSet {
        vectors,
        redundant,
        aborted,
        untargeted,
        total_faults: faults.len(),
        stop_reason: stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    fn verify_complete(circuit: &Circuit, set: &TestSet) {
        // Every non-redundant, non-aborted fault must be detected by some
        // vector of the set.
        let faults = fault_list(circuit);
        let mut fsim = FaultSim::new(circuit);
        let mut covered = vec![false; faults.len()];
        for v in &set.vectors {
            for (f, hit) in detects(&mut fsim, &faults, v).into_iter().enumerate() {
                covered[f] = covered[f] || hit;
            }
        }
        let undetected = covered.iter().filter(|&&c| !c).count();
        assert_eq!(
            undetected,
            set.redundant + set.aborted,
            "test set must cover all detectable faults"
        );
    }

    #[test]
    fn c17_full_coverage_compact() {
        let c = parse(C17, "c17").unwrap();
        let set = generate_test_set(&c, &TestSetOptions::default());
        assert_eq!(set.redundant, 0);
        assert_eq!(set.aborted, 0);
        assert!((set.coverage() - 1.0).abs() < 1e-9);
        verify_complete(&c, &set);
        // c17 needs very few vectors; compaction should keep it small.
        assert!(set.vectors.len() <= 10, "{} vectors", set.vectors.len());
    }

    #[test]
    fn thread_count_does_not_change_test_set() {
        let c = parse(C17, "c17").unwrap();
        let serial = generate_test_set(&c, &TestSetOptions::default());
        for jobs in [2, 3, 8] {
            let par = generate_test_set(
                &c,
                &TestSetOptions { jobs: Jobs::new(jobs), ..TestSetOptions::default() },
            );
            assert_eq!(serial, par, "jobs={jobs}");
        }
    }

    #[test]
    fn engine_does_not_change_test_set() {
        let c = parse(C17, "c17").unwrap();
        let ctrace = generate_test_set(
            &c,
            &TestSetOptions { engine: SimEngine::Ctrace, ..TestSetOptions::default() },
        );
        let wide = generate_test_set(
            &c,
            &TestSetOptions { engine: SimEngine::Wide, ..TestSetOptions::default() },
        );
        assert_eq!(ctrace, wide);
        verify_complete(&c, &ctrace);
    }

    #[test]
    fn compaction_never_loses_coverage() {
        let c = parse(C17, "c17").unwrap();
        let loose =
            generate_test_set(&c, &TestSetOptions { compact: false, ..TestSetOptions::default() });
        let tight = generate_test_set(&c, &TestSetOptions::default());
        verify_complete(&c, &loose);
        verify_complete(&c, &tight);
        assert!(tight.vectors.len() <= loose.vectors.len());
    }

    #[test]
    fn redundant_faults_counted() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        let set = generate_test_set(&c, &TestSetOptions::default());
        assert!(set.redundant >= 1);
        verify_complete(&c, &set);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = parse(C17, "c17").unwrap();
        let a = generate_test_set(&c, &TestSetOptions::default());
        let b = generate_test_set(&c, &TestSetOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn pure_deterministic_phase_works() {
        let c = parse(C17, "c17").unwrap();
        let set = generate_test_set(
            &c,
            &TestSetOptions { random_blocks: 0, ..TestSetOptions::default() },
        );
        verify_complete(&c, &set);
    }

    #[test]
    fn pre_expired_deadline_yields_empty_set() {
        let c = parse(C17, "c17").unwrap();
        let budget = Budget::unlimited().with_time_limit(std::time::Duration::ZERO);
        let set = generate_test_set_with_budget(&c, &TestSetOptions::default(), &budget);
        assert_eq!(set.stop_reason, StopReason::Deadline);
        assert!(set.vectors.is_empty());
        assert_eq!(set.untargeted, set.total_faults);
        assert!(set.coverage() < 1e-9);
    }

    #[test]
    fn step_budget_limits_targeted_faults() {
        let c = parse(C17, "c17").unwrap();
        // Skip the random phase so every vector comes from a budgeted
        // PODEM target.
        let opts = TestSetOptions { random_blocks: 0, ..TestSetOptions::default() };
        let budget = Budget::unlimited().with_step_limit(2);
        let set = generate_test_set_with_budget(&c, &opts, &budget);
        assert_eq!(set.stop_reason, StopReason::StepBudget);
        assert!(set.vectors.len() <= 2, "{} vectors", set.vectors.len());
        assert!(set.untargeted > 0);
        assert!(set.coverage() < 1.0);
        // The partial set is still a valid (incomplete) test set.
        let full = generate_test_set(&c, &opts);
        assert_eq!(full.stop_reason, StopReason::Converged);
        assert_eq!(full.untargeted, 0);
        assert!(set.vectors.len() <= full.vectors.len());
    }
}
