//! PODEM test generation over the 5-valued D-algebra.
//!
//! Lines carry a pair of 3-valued signals (good machine, faulty machine);
//! the composite values are the classical `0, 1, X, D, D̄`. Decisions are
//! made only at primary inputs (the defining property of PODEM), objectives
//! are chosen to first activate the fault and then advance the D-frontier,
//! and an X-path check prunes assignments that can no longer propagate the
//! fault to an output.

use sft_netlist::{Circuit, GateKind, NodeId};
use sft_sim::{Fault, FaultSite};

/// Three-valued signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V3 {
    Zero,
    One,
    X,
}

impl V3 {
    fn from_bool(b: bool) -> V3 {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    fn invert(self) -> V3 {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }
}

fn eval3(kind: GateKind, fanins: &[V3]) -> V3 {
    match kind {
        GateKind::Input => unreachable!("inputs are assigned, not evaluated"),
        GateKind::Const0 => V3::Zero,
        GateKind::Const1 => V3::One,
        GateKind::Buf => fanins[0],
        GateKind::Not => fanins[0].invert(),
        GateKind::And | GateKind::Nand => {
            let mut out = V3::One;
            for &f in fanins {
                out = match (out, f) {
                    (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
                    (V3::X, _) | (_, V3::X) => V3::X,
                    _ => V3::One,
                };
                if out == V3::Zero {
                    break;
                }
            }
            if kind == GateKind::Nand {
                out.invert()
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut out = V3::Zero;
            for &f in fanins {
                out = match (out, f) {
                    (V3::One, _) | (_, V3::One) => V3::One,
                    (V3::X, _) | (_, V3::X) => V3::X,
                    _ => V3::Zero,
                };
                if out == V3::One {
                    break;
                }
            }
            if kind == GateKind::Nor {
                out.invert()
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut out = V3::Zero;
            for &f in fanins {
                out = match (out, f) {
                    (V3::X, _) | (_, V3::X) => return V3::X,
                    (a, b) => V3::from_bool((a == V3::One) != (b == V3::One)),
                };
            }
            if kind == GateKind::Xnor {
                out.invert()
            } else {
                out
            }
        }
    }
}

/// Outcome of PODEM on one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestResult {
    /// A test was found; one value per primary input (unassigned inputs are
    /// filled with `false`).
    Test(Vec<bool>),
    /// The complete search space was exhausted: the fault is untestable
    /// (redundant).
    Untestable,
    /// The backtrack limit was hit before the search completed.
    Aborted,
}

impl TestResult {
    /// Whether a test was found.
    pub fn is_test(&self) -> bool {
        matches!(self, TestResult::Test(_))
    }
}

/// Per-circuit structural context PODEM needs for every fault: topological
/// order, deduped gate fanouts, and input positions.
///
/// Building it is O(circuit). Callers that prove many faults against the
/// same structure — redundancy removal, test-set generation, the RAR loop —
/// build it once per structural change via [`PodemContext::new`] and pass
/// it to [`generate_test_with`], instead of paying the rebuild on every
/// fault. When the circuit has maintained views enabled, the fanout lists
/// are read straight from the view (no fanout-table rebuild); both sources
/// list consumers in the same `(consumer, pin)` order, so the derived
/// structures are identical either way.
pub struct PodemContext {
    order: Vec<NodeId>,
    input_pos: Vec<usize>,
    fanouts: Vec<Vec<NodeId>>,
}

impl PodemContext {
    /// Builds the context for `circuit`. Must be rebuilt after any
    /// structural change.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Self {
        let order = circuit.topo_order().expect("combinational circuit");
        let mut input_pos = vec![usize::MAX; circuit.len()];
        for (i, &id) in circuit.inputs().iter().enumerate() {
            input_pos[id.index()] = i;
        }
        let dedup_consumers = |pairs: &[(NodeId, usize)]| {
            let mut g: Vec<NodeId> = pairs.iter().map(|&(g, _)| g).collect();
            g.dedup();
            g
        };
        let fanouts = match circuit.views() {
            Some(v) => (0..circuit.len())
                .map(|i| dedup_consumers(v.fanout(NodeId::from_index(i))))
                .collect(),
            None => circuit.fanout_table().iter().map(|v| dedup_consumers(v)).collect(),
        };
        PodemContext { order, input_pos, fanouts }
    }
}

struct Podem<'c> {
    circuit: &'c Circuit,
    ctx: &'c PodemContext,
    fault: Fault,
    /// The line whose good value must be the complement of the stuck value.
    activation_line: NodeId,
    /// PI assignment (by input position).
    pi_values: Vec<V3>,
    good: Vec<V3>,
    bad: Vec<V3>,
    backtracks: u64,
    limit: u64,
}

impl<'c> Podem<'c> {
    fn new(circuit: &'c Circuit, ctx: &'c PodemContext, fault: Fault) -> Self {
        let activation_line = match fault.site {
            FaultSite::Stem(n) => n,
            FaultSite::Branch { gate, pin } => circuit.node(gate).fanins()[pin as usize],
        };
        Podem {
            circuit,
            ctx,
            fault,
            activation_line,
            pi_values: vec![V3::X; circuit.inputs().len()],
            good: vec![V3::X; circuit.len()],
            bad: vec![V3::X; circuit.len()],
            backtracks: 0,
            limit: 0,
        }
    }

    /// Full 3-valued resimulation of both machines under the current PI
    /// assignment.
    fn imply(&mut self) {
        let mut gbuf: Vec<V3> = Vec::with_capacity(8);
        let mut bbuf: Vec<V3> = Vec::with_capacity(8);
        for &id in &self.ctx.order {
            let node = self.circuit.node(id);
            let (g, mut b) = match node.kind() {
                GateKind::Input => {
                    let v = self.pi_values[self.ctx.input_pos[id.index()]];
                    (v, v)
                }
                kind => {
                    gbuf.clear();
                    bbuf.clear();
                    for (pin, f) in node.fanins().iter().enumerate() {
                        gbuf.push(self.good[f.index()]);
                        let bv = if self.fault.site
                            == (FaultSite::Branch { gate: id, pin: pin as u8 })
                        {
                            V3::from_bool(self.fault.stuck)
                        } else {
                            self.bad[f.index()]
                        };
                        bbuf.push(bv);
                    }
                    (eval3(kind, &gbuf), eval3(kind, &bbuf))
                }
            };
            if self.fault.site == FaultSite::Stem(id) {
                b = V3::from_bool(self.fault.stuck);
            }
            self.good[id.index()] = g;
            self.bad[id.index()] = b;
        }
    }

    fn composite_is_x(&self, id: NodeId) -> bool {
        self.good[id.index()] == V3::X || self.bad[id.index()] == V3::X
    }

    fn has_d(&self, id: NodeId) -> bool {
        let g = self.good[id.index()];
        let b = self.bad[id.index()];
        g != V3::X && b != V3::X && g != b
    }

    fn fault_at_output(&self) -> bool {
        self.circuit.outputs().iter().any(|&o| self.has_d(o))
    }

    /// D-frontier: gates whose output is X in either machine and which have
    /// at least one D/D̄ input. For a branch fault, the faulty branch itself
    /// carries a D once activated (its stem value is not faulty, so the
    /// deviation is visible only at the consuming gate's pin).
    fn d_frontier(&self) -> Vec<NodeId> {
        let mut v = Vec::new();
        for (id, node) in self.circuit.iter() {
            if !node.kind().is_gate() || !self.composite_is_x(id) {
                continue;
            }
            let mut has_d_input = node.fanins().iter().any(|&f| self.has_d(f));
            if !has_d_input {
                if let FaultSite::Branch { gate, pin } = self.fault.site {
                    if gate == id {
                        let driver = self.circuit.node(gate).fanins()[pin as usize];
                        let g = self.good[driver.index()];
                        has_d_input = g != V3::X && g != V3::from_bool(self.fault.stuck);
                    }
                }
            }
            if has_d_input {
                v.push(id);
            }
        }
        v
    }

    /// X-path check: can a D on some frontier line still reach an output
    /// through composite-X lines?
    fn x_path_exists(&self, frontier: &[NodeId]) -> bool {
        let mut seen = vec![false; self.circuit.len()];
        let mut stack: Vec<NodeId> = frontier.to_vec();
        let output_mask = {
            let mut m = vec![false; self.circuit.len()];
            for &o in self.circuit.outputs() {
                m[o.index()] = true;
            }
            m
        };
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            if !self.composite_is_x(n) {
                continue;
            }
            if output_mask[n.index()] {
                return true;
            }
            stack.extend_from_slice(&self.ctx.fanouts[n.index()]);
        }
        false
    }

    /// The next objective `(line, value)`, or `None` when no useful
    /// objective exists under the current assignment (a dead end).
    fn objective(&self) -> Option<(NodeId, bool)> {
        // 1. Activate the fault.
        let act = self.activation_line;
        match self.good[act.index()] {
            V3::X => return Some((act, !self.fault.stuck)),
            v if v == V3::from_bool(self.fault.stuck) => return None, // can't activate
            _ => {}
        }
        // For a stem fault the activation line *is* the fault site; for a
        // branch fault activation is already reflected through imply().
        if self.fault_at_output() {
            return None; // already done; caller checks first
        }
        // 2. Advance the D-frontier.
        let frontier = self.d_frontier();
        if frontier.is_empty() || !self.x_path_exists(&frontier) {
            return None;
        }
        let gate = frontier[0];
        let node = self.circuit.node(gate);
        let x_input = node.fanins().iter().copied().find(|&f| self.composite_is_x(f))?;
        let value = match node.kind().controlling_value() {
            Some(c) => !c,
            None => false, // parity gates: either value advances the frontier
        };
        Some((x_input, value))
    }

    /// Backtrace an objective to an unassigned primary input.
    fn backtrace(&self, mut line: NodeId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            let node = self.circuit.node(line);
            match node.kind() {
                GateKind::Input => {
                    let pos = self.ctx.input_pos[line.index()];
                    return if self.pi_values[pos] == V3::X { Some((pos, value)) } else { None };
                }
                GateKind::Const0 | GateKind::Const1 => return None,
                kind => {
                    if kind.inverts() {
                        value = !value;
                    }
                    // Choose an X input to pursue. For parity gates the
                    // value handed down is heuristic only.
                    let next =
                        node.fanins().iter().copied().find(|&f| self.good[f.index()] == V3::X)?;
                    line = next;
                }
            }
        }
    }

    fn run(&mut self, limit: u64) -> TestResult {
        self.limit = limit;
        self.imply();
        // Decision stack: (pi position, value currently tried, flipped yet?).
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        loop {
            if self.fault_at_output() {
                let test = self.pi_values.iter().map(|v| matches!(v, V3::One)).collect();
                return TestResult::Test(test);
            }
            match self.objective() {
                Some((line, value)) => {
                    match self.backtrace(line, value) {
                        Some((pos, v)) => {
                            stack.push((pos, v, false));
                            self.pi_values[pos] = V3::from_bool(v);
                            self.imply();
                        }
                        None => {
                            // No X input reachable: dead end, backtrack.
                            if !self.backtrack(&mut stack) {
                                return TestResult::Untestable;
                            }
                        }
                    }
                }
                None => {
                    if !self.backtrack(&mut stack) {
                        return TestResult::Untestable;
                    }
                }
            }
            if self.backtracks > self.limit {
                return TestResult::Aborted;
            }
        }
    }

    fn backtrack(&mut self, stack: &mut Vec<(usize, bool, bool)>) -> bool {
        self.backtracks += 1;
        loop {
            match stack.pop() {
                None => return false,
                Some((pos, v, flipped)) => {
                    if flipped {
                        self.pi_values[pos] = V3::X;
                    } else {
                        stack.push((pos, !v, true));
                        self.pi_values[pos] = V3::from_bool(!v);
                        self.imply();
                        return true;
                    }
                }
            }
        }
    }
}

/// Runs PODEM for `fault` on `circuit` with the given backtrack limit.
///
/// Returns [`TestResult::Test`] with a detecting input vector,
/// [`TestResult::Untestable`] when the search space is provably exhausted
/// (the fault is redundant), or [`TestResult::Aborted`] when the backtrack
/// limit is reached first.
///
/// # Panics
///
/// Panics if the circuit is cyclic or the fault references nodes outside it.
pub fn generate_test(circuit: &Circuit, fault: Fault, backtrack_limit: u64) -> TestResult {
    let ctx = PodemContext::new(circuit);
    generate_test_with(&ctx, circuit, fault, backtrack_limit)
}

/// Like [`generate_test`], with a caller-provided [`PodemContext`] so the
/// O(circuit) structural setup is shared across many faults on the same
/// circuit. The context must have been built from the current structure of
/// `circuit`; results are identical to [`generate_test`].
///
/// # Panics
///
/// Panics if the circuit is cyclic or the fault references nodes outside it.
pub fn generate_test_with(
    ctx: &PodemContext,
    circuit: &Circuit,
    fault: Fault,
    backtrack_limit: u64,
) -> TestResult {
    let mut engine = Podem::new(circuit, ctx, fault);
    let result = engine.run(backtrack_limit);
    if let TestResult::Test(test) = &result {
        debug_assert!(
            test_detects(circuit, fault, test),
            "PODEM returned a non-detecting test for {fault}"
        );
    }
    result
}

/// Checks (by explicit two-machine simulation) whether `test` detects
/// `fault`.
pub(crate) fn test_detects(circuit: &Circuit, fault: Fault, test: &[bool]) -> bool {
    let order = circuit.topo_order().expect("combinational circuit");
    let mut input_pos = vec![usize::MAX; circuit.len()];
    for (i, &id) in circuit.inputs().iter().enumerate() {
        input_pos[id.index()] = i;
    }
    let mut good = vec![false; circuit.len()];
    let mut bad = vec![false; circuit.len()];
    for &id in &order {
        let node = circuit.node(id);
        let (g, mut b) = match node.kind() {
            GateKind::Input => {
                let v = test[input_pos[id.index()]];
                (v, v)
            }
            kind => {
                let gv: Vec<bool> = node.fanins().iter().map(|f| good[f.index()]).collect();
                let bv: Vec<bool> = node
                    .fanins()
                    .iter()
                    .enumerate()
                    .map(|(pin, f)| {
                        if fault.site == (FaultSite::Branch { gate: id, pin: pin as u8 }) {
                            fault.stuck
                        } else {
                            bad[f.index()]
                        }
                    })
                    .collect();
                (kind.eval(&gv), kind.eval(&bv))
            }
        };
        if fault.site == FaultSite::Stem(id) {
            b = fault.stuck;
        }
        good[id.index()] = g;
        bad[id.index()] = b;
    }
    circuit.outputs().iter().any(|&o| good[o.index()] != bad[o.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;
    use sft_sim::fault_list;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn c17_all_faults_testable_with_valid_tests() {
        let c = parse(C17, "c17").unwrap();
        for fault in fault_list(&c) {
            match generate_test(&c, fault, 10_000) {
                TestResult::Test(t) => {
                    assert!(test_detects(&c, fault, &t), "bad test for {fault}")
                }
                other => panic!("fault {fault} should be testable, got {other:?}"),
            }
        }
    }

    #[test]
    fn absorption_redundancy_proven() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let c = parse(src, "abs").unwrap();
        let t = c.iter().find(|(_, n)| n.name() == Some("t")).map(|(id, _)| id).unwrap();
        assert_eq!(generate_test(&c, Fault::stem(t, false), 10_000), TestResult::Untestable);
        // t s-a-1 is testable: a=0, b arbitrary -> y flips 0 -> 1.
        assert!(generate_test(&c, Fault::stem(t, true), 10_000).is_test());
    }

    #[test]
    fn branch_fault_tests() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n";
        let c = parse(src, "t").unwrap();
        let y = c.iter().find(|(_, n)| n.name() == Some("y")).map(|(id, _)| id).unwrap();
        let f = Fault::branch(y, 0, true);
        match generate_test(&c, f, 10_000) {
            TestResult::Test(t) => assert!(test_detects(&c, f, &t)),
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn xor_propagation() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = XOR(t, c)\n";
        let c = parse(src, "x").unwrap();
        for fault in fault_list(&c) {
            match generate_test(&c, fault, 10_000) {
                TestResult::Test(t) => assert!(test_detects(&c, fault, &t)),
                other => panic!("fault {fault}: {other:?}"),
            }
        }
    }

    #[test]
    fn agrees_with_exhaustive_search_on_random_circuits() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use sft_netlist::{Circuit, GateKind};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let mut c = Circuit::new(format!("r{trial}"));
            let ins: Vec<_> = (0..5).map(|i| c.add_input(format!("i{i}"))).collect();
            let mut pool = ins.clone();
            for _ in 0..12 {
                let kinds =
                    [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor, GateKind::Xor];
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let x = pool[rng.gen_range(0..pool.len())];
                let y = pool[rng.gen_range(0..pool.len())];
                if x == y {
                    continue;
                }
                let g = c.add_gate(kind, vec![x, y]).unwrap();
                pool.push(g);
            }
            let out = *pool.last().unwrap();
            c.add_output(out, "y");
            for fault in fault_list(&c) {
                let exhaustive = (0..32u32).any(|m| {
                    let t: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
                    test_detects(&c, fault, &t)
                });
                let podem = generate_test(&c, fault, 100_000);
                match (&podem, exhaustive) {
                    (TestResult::Test(t), true) => assert!(test_detects(&c, fault, t)),
                    (TestResult::Untestable, false) => {}
                    other => {
                        panic!("trial {trial} fault {fault}: podem={other:?} vs exhaustive={exhaustive}")
                    }
                }
            }
        }
    }
}
