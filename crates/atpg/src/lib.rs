//! Stuck-at test generation (PODEM) and redundancy removal.
//!
//! The paper's flow needs deterministic ATPG in two places:
//!
//! 1. the benchmark circuits are **irredundant** to begin with (obtained in
//!    the paper with the redundancy-removal procedure of Kajihara et al.
//!    \[15\]), and
//! 2. Procedure 2 can introduce redundant stuck-at faults, which the paper
//!    removes by running \[15\] again after resynthesis.
//!
//! This crate provides both: [`generate_test`] is a PODEM implementation
//! over the 5-valued D-algebra with an explicit backtrack limit, and
//! [`remove_redundancies`] iteratively replaces proven-untestable fault
//! sites by constants and re-simplifies, which is exactly the classical
//! redundancy-removal loop.
//!
//! # Examples
//!
//! ```
//! use sft_atpg::{generate_test, TestResult};
//! use sft_netlist::bench_format::parse;
//! use sft_sim::Fault;
//!
//! // The absorbed AND gate in y = a OR (a AND b) is redundant.
//! let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n", "abs")?;
//! let t = c.iter().find(|(_, n)| n.name() == Some("t")).map(|(id, _)| id).unwrap();
//! assert_eq!(generate_test(&c, Fault::stem(t, false), 10_000), TestResult::Untestable);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod podem;
mod redundancy;
mod testset;

pub use podem::{generate_test, generate_test_with, PodemContext, TestResult};
pub use redundancy::{remove_redundancies, RedundancyReport};
pub use testset::{generate_test_set, generate_test_set_with_budget, TestSet, TestSetOptions};
