//! Redundancy identification and removal (the role of \[15\] in the paper).
//!
//! A stuck-at fault proven untestable means the faulty and fault-free
//! circuits are equivalent, so the faulty value can be wired in
//! permanently: a redundant `line s-a-v` stem fault lets the line be
//! replaced by the constant `v`; a redundant branch fault lets that single
//! gate input be replaced by the constant. Constant propagation and
//! dead-logic sweeping then shrink the circuit. Because one removal can
//! change the status of other faults, the procedure iterates to a fixpoint.

use crate::podem::{generate_test_with, PodemContext, TestResult};
use sft_netlist::{simplify, Circuit, GateKind, NodeId};
use sft_sim::{fault_list, Fault, FaultSite};

/// Summary of a [`remove_redundancies`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RedundancyReport {
    /// Number of redundant faults removed (one constant insertion each).
    pub removed: usize,
    /// Number of faults whose PODEM search aborted (left untouched).
    pub aborted: usize,
    /// Number of full passes over the fault list.
    pub passes: usize,
    /// Equivalent 2-input gate count before and after.
    pub gates_before: u64,
    /// Equivalent 2-input gate count after removal.
    pub gates_after: u64,
}

impl RedundancyReport {
    /// Whether the circuit was already irredundant (nothing removed, nothing
    /// aborted).
    pub fn is_irredundant(&self) -> bool {
        self.removed == 0 && self.aborted == 0
    }
}

fn apply_removal(circuit: &mut Circuit, fault: Fault) {
    match fault.site {
        FaultSite::Stem(n) => {
            if circuit.node(n).kind() == GateKind::Input {
                // A redundant PI stem fault means no output depends on the
                // input; nothing to rewire (the input stays as a port).
                return;
            }
            let kind = if fault.stuck { GateKind::Const1 } else { GateKind::Const0 };
            circuit.rewire(n, kind, Vec::new()).expect("constant rewire cannot cycle");
        }
        FaultSite::Branch { gate, pin } => {
            let konst = circuit.add_const(fault.stuck);
            let mut fanins: Vec<NodeId> = circuit.node(gate).fanins().to_vec();
            fanins[pin as usize] = konst;
            let kind = circuit.node(gate).kind();
            circuit.rewire(gate, kind, fanins).expect("constant fanin cannot cycle");
        }
    }
}

/// Repeatedly proves faults redundant with PODEM and wires in the implied
/// constants until the circuit is irredundant (or only aborted faults
/// remain). The circuit function is preserved exactly.
///
/// `backtrack_limit` bounds each individual PODEM search; faults whose
/// search aborts are counted in the report and left in place.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn remove_redundancies(circuit: &mut Circuit, backtrack_limit: u64) -> RedundancyReport {
    let mut report = RedundancyReport {
        gates_before: circuit.two_input_gate_count(),
        ..RedundancyReport::default()
    };
    // Maintained views keep the fanout adjacency patched through every
    // constant insertion, so the PODEM context rebuilds after a removal
    // read it instead of re-deriving the fanout table.
    circuit.enable_views();
    loop {
        report.passes += 1;
        let faults = fault_list(circuit);
        // One structural context serves every fault until a removal edits
        // the circuit.
        let mut ctx = PodemContext::new(circuit);
        let mut removed_this_pass = 0;
        let mut aborted_this_pass = 0;
        for fault in faults {
            // Fault sites can disappear under earlier removals this pass:
            // guard against dangling references by re-deriving liveness.
            let site_node = match fault.site {
                FaultSite::Stem(n) => n,
                FaultSite::Branch { gate, .. } => gate,
            };
            if site_node.index() >= circuit.len() {
                continue;
            }
            if let FaultSite::Branch { gate, pin } = fault.site {
                if pin as usize >= circuit.node(gate).fanins().len() {
                    continue;
                }
            }
            match generate_test_with(&ctx, circuit, fault, backtrack_limit) {
                TestResult::Untestable => {
                    apply_removal(circuit, fault);
                    simplify::propagate_constants(circuit);
                    removed_this_pass += 1;
                    ctx = PodemContext::new(circuit);
                }
                TestResult::Aborted => aborted_this_pass += 1,
                TestResult::Test(_) => {}
            }
        }
        report.removed += removed_this_pass;
        if removed_this_pass == 0 {
            report.aborted = aborted_this_pass;
            break;
        }
        simplify::normalize(circuit);
    }
    simplify::normalize(circuit);
    circuit.disable_views();
    report.gates_after = circuit.two_input_gate_count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::podem::generate_test;
    use sft_bdd::equivalent;
    use sft_netlist::bench_format::parse;

    #[test]
    fn absorption_removed_and_equivalent() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(a, t)\n";
        let original = parse(src, "abs").unwrap();
        let mut c = original.clone();
        let report = remove_redundancies(&mut c, 10_000);
        assert!(report.removed >= 1);
        assert_eq!(report.aborted, 0);
        assert!(report.gates_after < report.gates_before);
        assert!(equivalent(&original, &c).unwrap().is_equivalent());
        // y should reduce to BUF(a) (0 equivalent 2-input gates).
        assert_eq!(c.two_input_gate_count(), 0);
    }

    #[test]
    fn irredundant_circuit_untouched() {
        let src = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
        let mut c = parse(src, "c17").unwrap();
        let before = c.two_input_gate_count();
        let report = remove_redundancies(&mut c, 10_000);
        assert!(report.is_irredundant());
        assert_eq!(report.passes, 1);
        assert_eq!(c.two_input_gate_count(), before);
    }

    #[test]
    fn consensus_redundancy_removed() {
        // y = ab + !a c + bc : the consensus term bc is redundant.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nna = NOT(a)\n\
t1 = AND(a, b)\nt2 = AND(na, c)\nt3 = AND(b, c)\ny = OR(t1, t2, t3)\n";
        let original = parse(src, "cons").unwrap();
        let mut c = original.clone();
        let report = remove_redundancies(&mut c, 100_000);
        assert!(report.removed >= 1);
        assert!(equivalent(&original, &c).unwrap().is_equivalent());
        assert!(c.two_input_gate_count() < original.two_input_gate_count());
    }

    #[test]
    fn result_is_fully_testable() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nna = NOT(a)\n\
t1 = AND(a, b)\nt2 = AND(na, c)\nt3 = AND(b, c)\ny = OR(t1, t2, t3)\n";
        let mut c = parse(src, "cons").unwrap();
        remove_redundancies(&mut c, 100_000);
        for fault in fault_list(&c) {
            assert!(
                generate_test(&c, fault, 100_000).is_test(),
                "{fault} should be testable after redundancy removal"
            );
        }
    }
}
