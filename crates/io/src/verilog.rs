//! Gate-level structural Verilog import/export.
//!
//! The accepted dialect is the flat netlist subset every logic-synthesis
//! tool emits: one `module` with scalar ports, `wire` declarations, the
//! eight gate primitives (`and`, `or`, `nand`, `nor`, `xor`, `xnor`,
//! `not`, `buf` — any arity, first terminal(s) output), and `assign`
//! statements whose right-hand side is a net or a `1'b0`/`1'b1` constant.
//! Comments (`//`, `/* */`) and attributes (`(* … *)`) are skipped. Both
//! ANSI (`module m (input wire a, output wire y);`) and non-ANSI
//! (`module m (a, y); input a; output y;`) port styles parse. Everything
//! else — vectors, `reg`/`always` blocks, escaped identifiers, module
//! hierarchy — is rejected with a typed, line-numbered error: this
//! workspace models the combinational core of fully-scanned circuits.
//!
//! **Export** mirrors the `.bench` writer's canonical contract: nets are
//! sanitized and deterministically uniquified, gate instances are emitted
//! in (logic level, net name) order, and an output port is driven directly
//! by its gate when the names agree or via a trailing `assign` alias
//! otherwise — so parse → write reaches a textual fixpoint by the second
//! write, and every gate of the circuit (dead logic included) appears in
//! the output. The gate-for-gate mapping preserves the complete stuck-at
//! fault universe (see `docs/formats.md`).
//!
//! # Examples
//!
//! ```
//! use sft_io::verilog;
//!
//! let src = "\
//! module votes (input wire a, input wire b, input wire c, output wire y);
//!     wire t1;
//!     and g0 (t1, a, b);
//!     or  g1 (y, t1, c);
//! endmodule
//! ";
//! let c = verilog::parse(src)?;
//! assert_eq!(c.name(), "votes");
//! assert_eq!(c.eval_assignment(&[false, false, true]), vec![true]);
//! let text = verilog::write(&c)?;
//! assert!(text.contains("or g1 (y, t1, c);"));
//! # Ok::<(), sft_io::IoError>(())
//! ```

use crate::{sanitize, unique_name, IoError};
use sft_netlist::bench_format::MAX_PARSE_FANINS;
use sft_netlist::{Circuit, GateKind, NetlistError, NodeId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Verilog words that can never be used as net names in emitted text; the
/// writer appends `_` to any sanitized name that collides.
const KEYWORDS: [&str; 16] = [
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "assign",
    "reg",
    "and",
    "or",
    "nand",
    "nor",
    "xor",
    "xnor",
    "not",
    "buf",
];

fn perr(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse { line, message: message.into() }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Const(bool),
    LParen,
    RParen,
    Comma,
    Semi,
    Eq,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s:?}"),
            Tok::Const(b) => write!(f, "1'b{}", u8::from(*b)),
            Tok::LParen => f.write_str("'('"),
            Tok::RParen => f.write_str("')'"),
            Tok::Comma => f.write_str("','"),
            Tok::Semi => f.write_str("';'"),
            Tok::Eq => f.write_str("'='"),
        }
    }
}

fn lex(text: &str) -> Result<Vec<(usize, Tok)>, IoError> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(perr(start, "unterminated /* comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            b'(' if bytes.get(i + 1) == Some(&b'*') => {
                // Synthesis attribute `(* … *)`: skip.
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(perr(start, "unterminated (* attribute"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b')' {
                        i += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            b'(' => {
                toks.push((line, Tok::LParen));
                i += 1;
            }
            b')' => {
                toks.push((line, Tok::RParen));
                i += 1;
            }
            b',' => {
                toks.push((line, Tok::Comma));
                i += 1;
            }
            b';' => {
                toks.push((line, Tok::Semi));
                i += 1;
            }
            b'=' => {
                toks.push((line, Tok::Eq));
                i += 1;
            }
            b'\\' => {
                return Err(perr(line, "escaped identifiers are not supported"));
            }
            b'[' | b']' => {
                return Err(perr(line, "vector nets are not supported (flatten to scalars)"));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                toks.push((line, Tok::Ident(text[start..i].to_string())));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'\'' || bytes[i] == b'_')
                {
                    i += 1;
                }
                let lit = &text[start..i];
                match lit {
                    "1'b0" => toks.push((line, Tok::Const(false))),
                    "1'b1" => toks.push((line, Tok::Const(true))),
                    other => {
                        return Err(perr(
                            line,
                            format!("unsupported literal {other:?} (only 1'b0/1'b1)"),
                        ));
                    }
                }
            }
            other => {
                return Err(perr(line, format!("unexpected character {:?}", other as char)));
            }
        }
    }
    Ok(toks)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Input,
    Output,
}

struct GateItem {
    line: usize,
    kind: GateKind,
    target: String,
    fanins: Vec<String>,
}

enum Rhs {
    Net(String),
    Const(bool),
}

struct AssignItem {
    line: usize,
    lhs: String,
    rhs: Rhs,
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    last_line: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn next(&mut self) -> Result<(usize, Tok), IoError> {
        let tok = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| perr(self.last_line, "unexpected end of file"))?;
        self.pos += 1;
        self.last_line = tok.0;
        Ok(tok)
    }

    fn expect_sym(&mut self, want: Tok) -> Result<usize, IoError> {
        let (line, tok) = self.next()?;
        if tok == want {
            Ok(line)
        } else {
            Err(perr(line, format!("expected {want}, found {tok}")))
        }
    }

    fn expect_ident(&mut self) -> Result<(usize, String), IoError> {
        let (line, tok) = self.next()?;
        match tok {
            Tok::Ident(s) => Ok((line, s)),
            other => Err(perr(line, format!("expected identifier, found {other}"))),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<usize, IoError> {
        let (line, name) = self.expect_ident()?;
        if name == kw {
            Ok(line)
        } else {
            Err(perr(line, format!("expected {kw:?}, found {name:?}")))
        }
    }
}

fn gate_kind(prim: &str) -> Option<GateKind> {
    match prim {
        "and" => Some(GateKind::And),
        "or" => Some(GateKind::Or),
        "nand" => Some(GateKind::Nand),
        "nor" => Some(GateKind::Nor),
        "xor" => Some(GateKind::Xor),
        "xnor" => Some(GateKind::Xnor),
        "not" => Some(GateKind::Not),
        "buf" => Some(GateKind::Buf),
        _ => None,
    }
}

/// Parses structural Verilog text into a [`Circuit`] named after its
/// `module`.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with a 1-based line number for syntax
/// errors, undeclared or multiply-driven nets, undriven outputs, fanin
/// lists beyond `MAX_PARSE_FANINS`, combinational loops, and unsupported
/// constructs (vectors, `reg`/`always`, hierarchy).
///
/// ```
/// use sft_io::{verilog, IoError};
///
/// let bad = "module m (input a, output y);\n  reg y;\nendmodule\n";
/// match verilog::parse(bad) {
///     Err(IoError::Parse { line: 2, message }) => assert!(message.contains("sequential")),
///     other => panic!("expected typed error, got {other:?}"),
/// }
/// ```
pub fn parse(text: &str) -> Result<Circuit, IoError> {
    let toks = lex(text)?;
    let mut p = Parser { toks, pos: 0, last_line: 1 };
    p.expect_kw("module")?;
    let (_, module_name) = p.expect_ident()?;
    p.expect_sym(Tok::LParen)?;

    // Port list: ANSI (directions inline) or plain names.
    let mut ports: Vec<(usize, String)> = Vec::new();
    let mut dirs: HashMap<String, Dir> = HashMap::new();
    let ansi = p.peek_kw("input") || p.peek_kw("output") || p.peek_kw("inout");
    if !matches!(p.peek(), Some(Tok::RParen)) {
        let mut current_dir: Option<Dir> = None;
        loop {
            if ansi && (p.peek_kw("input") || p.peek_kw("output") || p.peek_kw("inout")) {
                let (line, kw) = p.expect_ident()?;
                current_dir = Some(match kw.as_str() {
                    "input" => Dir::Input,
                    "output" => Dir::Output,
                    _ => return Err(perr(line, "inout ports are not supported")),
                });
                if p.peek_kw("wire") {
                    p.expect_ident()?;
                }
            }
            let (line, name) = p.expect_ident()?;
            if dirs.contains_key(&name) || ports.iter().any(|(_, n)| n == &name) {
                return Err(perr(line, format!("duplicate port {name:?}")));
            }
            if let Some(d) = current_dir {
                dirs.insert(name.clone(), d);
            }
            ports.push((line, name));
            match p.next()? {
                (_, Tok::Comma) => continue,
                (_, Tok::RParen) => break,
                (l, other) => return Err(perr(l, format!("expected ',' or ')', found {other}"))),
            }
        }
    } else {
        p.expect_sym(Tok::RParen)?;
    }
    p.expect_sym(Tok::Semi)?;

    // Body statements.
    let mut wires: HashSet<String> = HashSet::new();
    let mut gates: Vec<GateItem> = Vec::new();
    let mut assigns: Vec<AssignItem> = Vec::new();
    loop {
        let (line, tok) = p.next()?;
        let head = match tok {
            Tok::Ident(s) => s,
            other => return Err(perr(line, format!("expected statement, found {other}"))),
        };
        match head.as_str() {
            "endmodule" => break,
            "wire" => loop {
                let (wline, name) = p.expect_ident()?;
                // A redundant `wire` declaration of a port is legal
                // Verilog; a second declaration of the same plain wire is
                // not.
                if !wires.insert(name.clone()) && !ports.iter().any(|(_, n)| n == &name) {
                    return Err(perr(wline, format!("duplicate wire {name:?}")));
                }
                match p.next()? {
                    (_, Tok::Comma) => continue,
                    (_, Tok::Semi) => break,
                    (l, other) => {
                        return Err(perr(l, format!("expected ',' or ';', found {other}")))
                    }
                }
            },
            "input" | "output" => {
                let dir = if head == "input" { Dir::Input } else { Dir::Output };
                if p.peek_kw("wire") {
                    p.expect_ident()?;
                }
                loop {
                    let (dline, name) = p.expect_ident()?;
                    if !ports.iter().any(|(_, n)| n == &name) {
                        return Err(perr(
                            dline,
                            format!("direction declared for non-port net {name:?}"),
                        ));
                    }
                    if dirs.insert(name.clone(), dir).is_some() {
                        return Err(perr(dline, format!("duplicate direction for port {name:?}")));
                    }
                    match p.next()? {
                        (_, Tok::Comma) => continue,
                        (_, Tok::Semi) => break,
                        (l, other) => {
                            return Err(perr(l, format!("expected ',' or ';', found {other}")))
                        }
                    }
                }
            }
            "assign" => {
                let (_, lhs) = p.expect_ident()?;
                p.expect_sym(Tok::Eq)?;
                let rhs = match p.next()? {
                    (_, Tok::Ident(s)) => Rhs::Net(s),
                    (_, Tok::Const(b)) => Rhs::Const(b),
                    (l, other) => {
                        return Err(perr(
                            l,
                            format!("assign right-hand side must be a net or 1'bX, found {other}"),
                        ))
                    }
                };
                p.expect_sym(Tok::Semi)?;
                assigns.push(AssignItem { line, lhs, rhs });
            }
            "reg" | "always" | "initial" | "posedge" | "negedge" => {
                return Err(perr(
                    line,
                    format!(
                        "sequential construct {head:?} not supported; extract the \
                         combinational core"
                    ),
                ));
            }
            prim => {
                let kind = gate_kind(prim).ok_or_else(|| {
                    perr(line, format!("unsupported statement or module instance {prim:?}"))
                })?;
                // Optional instance name.
                if matches!(p.peek(), Some(Tok::Ident(_))) {
                    p.expect_ident()?;
                }
                p.expect_sym(Tok::LParen)?;
                let mut conns: Vec<String> = Vec::new();
                loop {
                    let (_, name) = p.expect_ident()?;
                    if conns.len() > MAX_PARSE_FANINS {
                        return Err(perr(
                            line,
                            format!("gate has more than {MAX_PARSE_FANINS} connections"),
                        ));
                    }
                    conns.push(name);
                    match p.next()? {
                        (_, Tok::Comma) => continue,
                        (_, Tok::RParen) => break,
                        (l, other) => {
                            return Err(perr(l, format!("expected ',' or ')', found {other}")))
                        }
                    }
                }
                p.expect_sym(Tok::Semi)?;
                if matches!(kind, GateKind::Not | GateKind::Buf) && conns.len() > 1 {
                    // Verilog not/buf: the LAST terminal is the input, all
                    // preceding terminals are outputs.
                    let input = conns.pop().expect("nonempty");
                    for target in conns {
                        gates.push(GateItem { line, kind, target, fanins: vec![input.clone()] });
                    }
                } else {
                    let target = conns.remove(0);
                    gates.push(GateItem { line, kind, target, fanins: conns });
                }
            }
        }
    }
    if p.pos < p.toks.len() {
        let (line, tok) = p.next()?;
        return Err(perr(line, format!("unexpected {tok} after endmodule")));
    }

    // Semantic checks and two-pass construction.
    for (line, name) in &ports {
        if !dirs.contains_key(name) {
            return Err(perr(*line, format!("port {name:?} has no direction declaration")));
        }
    }
    let declared: HashSet<&str> =
        ports.iter().map(|(_, n)| n.as_str()).chain(wires.iter().map(String::as_str)).collect();
    let mut fanin_use: HashSet<&str> = HashSet::new();
    for g in &gates {
        for f in &g.fanins {
            fanin_use.insert(f);
        }
    }
    for a in &assigns {
        if let Rhs::Net(n) = &a.rhs {
            fanin_use.insert(n);
        }
    }

    let mut c = Circuit::with_capacity(module_name, ports.len() + gates.len() + assigns.len());
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    for (_, name) in &ports {
        if dirs[name.as_str()] == Dir::Input {
            by_name.insert(name.clone(), c.add_input(name.clone()));
        }
    }
    // An `assign` to an output port that nothing reads back is a pure
    // output alias: it labels an output slot instead of materializing a
    // BUF node (mirroring how the writer emits aliases).
    let mut aliases: HashMap<&str, (&str, usize)> = HashMap::new();
    let mut driven: HashSet<&str> = HashSet::new();
    let declare_driver = |target: &str, line: usize| {
        if !declared.contains(target) {
            return Err(perr(line, format!("undeclared net {target:?}")));
        }
        if dirs.get(target) == Some(&Dir::Input) {
            return Err(perr(line, format!("input port {target:?} cannot be driven")));
        }
        Ok(())
    };
    for g in &gates {
        declare_driver(&g.target, g.line)?;
        if !driven.insert(&g.target) {
            return Err(perr(g.line, format!("multiple drivers for net {:?}", g.target)));
        }
        let id = c.add_const(false);
        c.set_node_name(id, g.target.clone());
        by_name.insert(g.target.clone(), id);
    }
    for a in &assigns {
        declare_driver(&a.lhs, a.line)?;
        if !driven.insert(&a.lhs) {
            return Err(perr(a.line, format!("multiple drivers for net {:?}", a.lhs)));
        }
        let pure_alias = dirs.get(a.lhs.as_str()) == Some(&Dir::Output)
            && matches!(a.rhs, Rhs::Net(_))
            && !fanin_use.contains(a.lhs.as_str());
        if pure_alias {
            if let Rhs::Net(rhs) = &a.rhs {
                aliases.insert(&a.lhs, (rhs, a.line));
            }
        } else {
            let id = c.add_const(false);
            c.set_node_name(id, a.lhs.clone());
            by_name.insert(a.lhs.clone(), id);
        }
    }
    let resolve = |by_name: &HashMap<String, NodeId>, net: &str, line: usize| {
        by_name.get(net).copied().ok_or_else(|| {
            if declared.contains(net) {
                perr(line, format!("net {net:?} is never driven"))
            } else {
                perr(line, format!("undeclared net {net:?}"))
            }
        })
    };
    let map_rewire_err = |line: usize, target: &str, e: NetlistError| match e {
        NetlistError::Cycle(_) => perr(line, format!("combinational cycle through {target:?}")),
        NetlistError::Arity { kind, got } => {
            perr(line, format!("gate {kind} cannot take {got} inputs"))
        }
        other => IoError::from(other),
    };
    for g in &gates {
        let target_id = by_name[g.target.as_str()];
        let mut fanins = Vec::with_capacity(g.fanins.len());
        for f in &g.fanins {
            fanins.push(resolve(&by_name, f, g.line)?);
        }
        c.rewire(target_id, g.kind, fanins).map_err(|e| map_rewire_err(g.line, &g.target, e))?;
    }
    for a in &assigns {
        if aliases.contains_key(a.lhs.as_str()) {
            continue;
        }
        let target_id = by_name[a.lhs.as_str()];
        match &a.rhs {
            Rhs::Const(b) => {
                let kind = if *b { GateKind::Const1 } else { GateKind::Const0 };
                c.rewire(target_id, kind, Vec::new())
                    .map_err(|e| map_rewire_err(a.line, &a.lhs, e))?;
            }
            Rhs::Net(rhs) => {
                let src = resolve(&by_name, rhs, a.line)?;
                c.rewire(target_id, GateKind::Buf, vec![src])
                    .map_err(|e| map_rewire_err(a.line, &a.lhs, e))?;
            }
        }
    }
    for (line, name) in &ports {
        if dirs[name.as_str()] != Dir::Output {
            continue;
        }
        let driver = if let Some(&(rhs, aline)) = aliases.get(name.as_str()) {
            resolve(&by_name, rhs, aline)?
        } else if let Some(&id) = by_name.get(name.as_str()) {
            id
        } else {
            return Err(perr(*line, format!("output port {name:?} is never driven")));
        };
        c.add_output(driver, name.clone());
    }
    Ok(c)
}

/// Serializes a circuit as canonical structural Verilog.
///
/// Net names are sanitized ([`sanitize`]), keyword collisions get a `_`
/// suffix, and remaining duplicates are uniquified deterministically in
/// node-id order. Gate instances are emitted in (logic level, net name)
/// order with sequential instance names, so the text depends only on the
/// named structure — re-parsing and re-writing reproduces it byte for
/// byte once names are collision-free (by the second write at the
/// latest). Every node of the circuit is emitted, including logic not
/// reachable from the outputs.
///
/// # Errors
///
/// Returns [`IoError::Netlist`] if the circuit is cyclic.
pub fn write(c: &Circuit) -> Result<String, IoError> {
    let level = c.levels().map_err(IoError::from)?;
    let mut used: HashSet<String> = HashSet::new();
    let names: Vec<String> = c
        .iter()
        .map(|(id, node)| {
            let mut base = match node.name() {
                Some(n) => sanitize(n),
                None => format!("n{}", id.index()),
            };
            if KEYWORDS.contains(&base.as_str()) {
                base.push('_');
            }
            unique_name(&mut used, base)
        })
        .collect();
    let name_of = |id: NodeId| -> &str { &names[id.index()] };

    // Output ports: direct-drive when the label matches the driver net
    // (and the driver is not an input), alias via `assign` otherwise.
    let mut labels: Vec<String> = Vec::with_capacity(c.outputs().len());
    let mut direct: Vec<bool> = Vec::with_capacity(c.outputs().len());
    let mut direct_nets: HashSet<NodeId> = HashSet::new();
    for (slot, &o) in c.outputs().iter().enumerate() {
        let desired = c.output_name(slot).map(|n| {
            let mut s = sanitize(n);
            if KEYWORDS.contains(&s.as_str()) {
                s.push('_');
            }
            s
        });
        let driver_is_input = c.node(o).kind() == GateKind::Input;
        let can_direct = !driver_is_input && !direct_nets.contains(&o);
        match desired {
            Some(d) if can_direct && d == name_of(o) => {
                direct_nets.insert(o);
                direct.push(true);
                labels.push(d);
            }
            None if can_direct => {
                direct_nets.insert(o);
                direct.push(true);
                labels.push(name_of(o).to_string());
            }
            Some(d) => {
                direct.push(false);
                labels.push(unique_name(&mut used, d));
            }
            None => {
                direct.push(false);
                labels.push(unique_name(&mut used, name_of(o).to_string()));
            }
        }
    }

    let mut module = sanitize(c.name());
    if KEYWORDS.contains(&module.as_str()) {
        module.push('_');
    }
    let mut out = String::new();
    let mut ports: Vec<String> =
        c.inputs().iter().map(|&i| format!("    input  wire {}", name_of(i))).collect();
    ports.extend(labels.iter().map(|l| format!("    output wire {l}")));
    if ports.is_empty() {
        let _ = writeln!(out, "module {module} ();");
    } else {
        let _ = writeln!(out, "module {module} (");
        let _ = writeln!(out, "{}", ports.join(",\n"));
        let _ = writeln!(out, ");");
    }

    // Canonical gate order, exactly as the .bench writer: by logic level,
    // ties broken by net name.
    let mut order: Vec<NodeId> = (0..c.len()).map(NodeId::from_index).collect();
    order.sort_by(|&a, &b| (level[a.index()], name_of(a)).cmp(&(level[b.index()], name_of(b))));
    for &id in &order {
        let node = c.node(id);
        if node.kind() != GateKind::Input && !direct_nets.contains(&id) {
            let _ = writeln!(out, "    wire {};", name_of(id));
        }
    }
    let mut seq = 0usize;
    for &id in &order {
        let node = c.node(id);
        match node.kind() {
            GateKind::Input => {}
            GateKind::Const0 => {
                let _ = writeln!(out, "    assign {} = 1'b0;", name_of(id));
            }
            GateKind::Const1 => {
                let _ = writeln!(out, "    assign {} = 1'b1;", name_of(id));
            }
            kind => {
                let prim = match kind {
                    GateKind::And => "and",
                    GateKind::Or => "or",
                    GateKind::Nand => "nand",
                    GateKind::Nor => "nor",
                    GateKind::Xor => "xor",
                    GateKind::Xnor => "xnor",
                    GateKind::Not => "not",
                    GateKind::Buf => "buf",
                    _ => unreachable!("inputs/constants handled above"),
                };
                let _ = write!(out, "    {prim} g{seq} ({}", name_of(id));
                seq += 1;
                for &f in node.fanins() {
                    let _ = write!(out, ", {}", name_of(f));
                }
                out.push_str(");\n");
            }
        }
    }
    for (slot, &o) in c.outputs().iter().enumerate() {
        if !direct[slot] {
            let _ = writeln!(out, "    assign {} = {};", labels[slot], name_of(o));
        }
    }
    let _ = writeln!(out, "endmodule");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format;

    fn same_function(a: &Circuit, b: &Circuit) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let n = a.inputs().len();
        assert!(n <= 12);
        for m in 0..1u64 << n {
            let v: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(a.eval_assignment(&v), b.eval_assignment(&v), "minterm {m}");
        }
    }

    const SRC: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
        t1 = NAND(a, b)\nt2 = NOR(t1, c)\ny = XOR(t1, t2)\nk = CONST1\nz = XNOR(c, k)\n";

    #[test]
    fn round_trip_preserves_function_and_gates() {
        let c = bench_format::parse(SRC, "demo").unwrap();
        let text = write(&c).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back.name(), "demo");
        same_function(&c, &back);
        // Gate-for-gate: same number of nodes of every kind.
        for kind in [GateKind::Nand, GateKind::Nor, GateKind::Xor, GateKind::Xnor] {
            let a = c.iter().filter(|(_, n)| n.kind() == kind).count();
            let b = back.iter().filter(|(_, n)| n.kind() == kind).count();
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn write_is_textual_fixpoint_from_second_write() {
        let c = bench_format::parse(SRC, "demo").unwrap();
        let w1 = write(&c).unwrap();
        let c1 = parse(&w1).unwrap();
        let w2 = write(&c1).unwrap();
        assert_eq!(w1, w2, "clean names: fixpoint from the first write");
        let c2 = parse(&w2).unwrap();
        assert_eq!(w2, write(&c2).unwrap());
    }

    #[test]
    fn dead_logic_is_preserved() {
        let c =
            bench_format::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)\n", "d").unwrap();
        let text = write(&c).unwrap();
        assert!(text.contains("buf"));
        let back = parse(&text).unwrap();
        assert!(back.iter().any(|(_, n)| n.name() == Some("dead")));
    }

    #[test]
    fn non_ansi_ports_and_plain_styles() {
        let src = "\
            module m (a, b, y);\n\
            input a, b;\n\
            output y;\n\
            wire t;\n\
            and g0 (t, a, b);\n\
            buf g1 (y, t);\n\
            endmodule\n";
        let c = parse(src).unwrap();
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.eval_assignment(&[true, true]), vec![true]);
    }

    #[test]
    fn ansi_direction_inheritance() {
        let src = "module m (input a, b, output y);\n  nand g (y, a, b);\nendmodule\n";
        let c = parse(src).unwrap();
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.eval_assignment(&[true, true]), vec![false]);
    }

    #[test]
    fn comments_and_attributes_skipped() {
        let src = "// top\nmodule m (input a, /* inline */ output y);\n\
            (* keep = 1 *) not g (y, a);\nendmodule // done\n";
        let c = parse(src).unwrap();
        assert_eq!(c.eval_assignment(&[false]), vec![true]);
    }

    #[test]
    fn multi_output_buf_expands() {
        let src = "module m (input a, output y, output z);\n  not g (y, z, a);\nendmodule\n";
        let c = parse(src).unwrap();
        assert_eq!(c.eval_assignment(&[true]), vec![false, false]);
    }

    #[test]
    fn assign_aliases_and_constants() {
        let src = "module m (input a, output y, output k);\n  wire t;\n\
            and g (t, a, a);\n  assign y = t;\n  assign k = 1'b1;\nendmodule\n";
        let c = parse(src).unwrap();
        assert_eq!(c.output_name(0), Some("y"));
        assert_eq!(c.eval_assignment(&[true]), vec![true, true]);
        assert_eq!(c.eval_assignment(&[false]), vec![false, true]);
    }

    #[test]
    fn input_driven_output_round_trips() {
        let c = bench_format::parse("INPUT(a)\nOUTPUT(a)\n", "t").unwrap();
        let text = write(&c).unwrap();
        assert!(text.contains("assign a_2 = a;"), "{text}");
        let back = parse(&text).unwrap();
        assert_eq!(back.eval_assignment(&[true]), vec![true]);
        assert_eq!(write(&back).unwrap(), text);
    }

    #[test]
    fn keyword_and_collision_names_are_rewritten() {
        let c = bench_format::parse(
            "INPUT(wire)\nINPUT(a_b)\nINPUT(a.b)\nOUTPUT(y)\ny = AND(wire, a_b, a.b)\n",
            "module",
        )
        .unwrap();
        let text = write(&c).unwrap();
        assert!(text.contains("module module_ ("));
        assert!(text.contains("wire_"));
        assert!(text.contains("a_b_2"));
        let back = parse(&text).unwrap();
        same_function(&c, &back);
        assert_eq!(write(&back).unwrap(), text);
    }

    // --- Adversarial fixtures.

    #[test]
    fn undeclared_nets_rejected() {
        let bad = "module m (input a, output y);\n  and g (y, a, ghost);\nendmodule\n";
        match parse(bad) {
            Err(IoError::Parse { line: 2, message }) => assert!(message.contains("ghost")),
            other => panic!("expected undeclared-net error, got {other:?}"),
        }
        let bad = "module m (input a, output y);\n  wire t;\n  and g (y, a, t);\nendmodule\n";
        match parse(bad) {
            Err(IoError::Parse { line: 3, message }) => assert!(message.contains("driven")),
            other => panic!("expected undriven-net error, got {other:?}"),
        }
    }

    #[test]
    fn fanin_bomb_rejected() {
        let args = vec!["a"; MAX_PARSE_FANINS + 2].join(", ");
        let src = format!("module m (input a, output y);\n  and g (y, {args});\nendmodule\n");
        match parse(&src) {
            Err(IoError::Parse { line: 2, message }) => assert!(message.contains("connections")),
            other => panic!("expected fanin-bomb error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        for bad in [
            "module m (input a, output y);\n  and g (y, a,",
            "module m (input a, output y);",
            "module m (input a output y);\nendmodule",
            "module m;\nendmodule",
            "\u{0}\u{1}\u{2}",
            "module m (input a, output y);\n  and g (y, a);\nendmodule\nmodule n ();\nendmodule",
            "module m (input a, output y[3]);\nendmodule",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn multiple_drivers_rejected() {
        let bad = "module m (input a, output y);\n  not g0 (y, a);\n  buf g1 (y, a);\nendmodule\n";
        match parse(bad) {
            Err(IoError::Parse { line: 3, message }) => {
                assert!(message.contains("multiple drivers"))
            }
            other => panic!("expected multiple-driver error, got {other:?}"),
        }
    }

    #[test]
    fn undriven_output_rejected() {
        let bad = "module m (input a, output y);\nendmodule\n";
        assert!(matches!(parse(bad), Err(IoError::Parse { line: 1, .. })));
    }

    #[test]
    fn combinational_loop_rejected() {
        let bad = "module m (input a, output y);\n  wire t;\n  and g0 (t, y, a);\n\
            and g1 (y, t, a);\nendmodule\n";
        match parse(bad) {
            Err(IoError::Parse { message, .. }) => assert!(message.contains("cycle")),
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn sequential_constructs_rejected() {
        for bad in [
            "module m (input a, output y);\n  reg y;\nendmodule\n",
            "module m (input clk, output y);\n  always (posedge clk) y = clk;\nendmodule\n",
        ] {
            match parse(bad) {
                Err(IoError::Parse { message, .. }) => assert!(message.contains("sequential")),
                other => panic!("expected sequential rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn unsupported_literals_and_vectors_rejected() {
        let bad = "module m (input a, output y);\n  assign y = 8'hff;\nendmodule\n";
        assert!(matches!(parse(bad), Err(IoError::Parse { line: 2, .. })));
        let bad = "module m (input a, output y);\n  wire [3:0] t;\nendmodule\n";
        assert!(matches!(parse(bad), Err(IoError::Parse { line: 2, .. })));
    }

    #[test]
    fn input_port_cannot_be_driven() {
        let bad = "module m (input a, output y);\n  not g (a, y);\nendmodule\n";
        match parse(bad) {
            Err(IoError::Parse { line: 2, message }) => assert!(message.contains("input port")),
            other => panic!("expected input-drive error, got {other:?}"),
        }
    }
}
