//! LUT-*k* covering interchange format (`.lut`).
//!
//! A `.lut` file is the textual form of an FPGA-style covering produced by
//! `sft_techmap::cover_luts`: every row is one *k*-input lookup table,
//! written as a hex truth table over named leaf nets:
//!
//! ```text
//! # adder (lut-4 covering)
//! K 4
//! INPUT(a)
//! INPUT(b)
//! INPUT(cin)
//! OUTPUT(sum)
//! OUTPUT(cout)
//! sum = LUT(0x96, a, b, cin)
//! cout = LUT(0xe8, a, b, cin)
//! ```
//!
//! The hex literal holds `2^n` table bits for an `n`-input row: bit *m*
//! (of the integer value) is the output for minterm *m*, with the **first
//! listed leaf as the most significant minterm bit** — exactly
//! `sft_truth::TruthTable::bits()`. Zero-input rows (`x = LUT(0x1)`)
//! denote constants.
//!
//! **Export** covers the circuit with `cover_luts` and emits rows in
//! topological order; **import** re-synthesizes every row as shared-
//! inverter sum-of-products logic (`Circuit::synthesize_sop`), so the
//! format round-trips through `sft-truth` tables by construction. Emission
//! is byte-deterministic, but unlike `.bench`/`.v`/AIGER a parse → write
//! cycle is *not* a textual fixpoint: re-covering the expanded network may
//! legally merge logic across row boundaries. Only the primary-input /
//! primary-output boundary fault sites are preserved (see
//! `docs/formats.md`).
//!
//! # Examples
//!
//! ```
//! use sft_io::lut;
//! use sft_netlist::bench_format;
//!
//! let c = bench_format::parse(
//!     "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(t, c)\n",
//!     "demo",
//! )?;
//! let text = lut::write(&c, 4)?;
//! assert!(text.contains("K 4"));
//! let back = lut::parse(&text, "demo")?;
//! assert_eq!(back.eval_assignment(&[false, false, true]), vec![true]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::IoError;
use sft_netlist::{Circuit, GateKind, NetlistError, NodeId};
use sft_techmap::{cover_luts, MAX_LUT_INPUTS, MIN_LUT_INPUTS};
use sft_truth::TruthTable;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

fn perr(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse { line, message: message.into() }
}

fn table_mask(inputs: usize) -> u128 {
    let bits = 1usize << inputs;
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

/// Parses `.lut` text into a [`Circuit`] named `name`, re-synthesizing
/// every row as shared-inverter sum-of-products logic.
///
/// Rows may reference later rows (two-pass resolution, like the `.bench`
/// parser). Rows not reachable from any output are swept away — a `.lut`
/// file describes a covering, and only covered logic survives expansion.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with a 1-based line number for syntax
/// errors, a missing or out-of-range `K` header, rows with more than 7
/// inputs, truth tables wider than `2^n` bits, undefined or duplicate
/// signals, and combinational cycles.
///
/// ```
/// use sft_io::{lut, IoError};
///
/// let bad = "K 4\nINPUT(a)\nOUTPUT(y)\ny = LUT(0x10, a)\n"; // 2 inputs' worth of bits
/// match lut::parse(bad, "t") {
///     Err(IoError::Parse { line: 4, message }) => assert!(message.contains("table")),
///     other => panic!("expected table-width error, got {other:?}"),
/// }
/// ```
pub fn parse(text: &str, name: impl Into<String>) -> Result<Circuit, IoError> {
    enum Item {
        Input(String),
        Output(String),
        Row { target: String, table: TruthTable, args: Vec<String> },
    }
    let mut items: Vec<(usize, Item)> = Vec::new();
    let mut k: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("K ") {
            if k.is_some() {
                return Err(perr(lineno, "duplicate K header"));
            }
            let val: usize = rest
                .trim()
                .parse()
                .map_err(|_| perr(lineno, format!("K header {rest:?} is not a number")))?;
            if !(MIN_LUT_INPUTS..=MAX_LUT_INPUTS).contains(&val) {
                return Err(perr(
                    lineno,
                    format!("K = {val} outside {MIN_LUT_INPUTS}..={MAX_LUT_INPUTS}"),
                ));
            }
            k = Some(val);
        } else if let Some(rest) = line.strip_prefix("INPUT(") {
            let sig =
                rest.strip_suffix(')').ok_or_else(|| perr(lineno, "missing ')' after INPUT"))?;
            items.push((lineno, Item::Input(sig.trim().to_string())));
        } else if let Some(rest) = line.strip_prefix("OUTPUT(") {
            let sig =
                rest.strip_suffix(')').ok_or_else(|| perr(lineno, "missing ')' after OUTPUT"))?;
            items.push((lineno, Item::Output(sig.trim().to_string())));
        } else if let Some((target, expr)) = line.split_once('=') {
            let k = k.ok_or_else(|| perr(lineno, "row before the K header"))?;
            let target = target.trim().to_string();
            let inner = expr
                .trim()
                .strip_prefix("LUT(")
                .and_then(|r| r.strip_suffix(')'))
                .ok_or_else(|| perr(lineno, "expected `target = LUT(0x…, leaves…)`"))?;
            let mut parts = inner.split(',').map(str::trim);
            let hex = parts.next().unwrap_or("");
            let bits = hex
                .strip_prefix("0x")
                .and_then(|h| u128::from_str_radix(h, 16).ok())
                .ok_or_else(|| perr(lineno, format!("malformed hex table {hex:?}")))?;
            let args: Vec<String> = parts.filter(|s| !s.is_empty()).map(str::to_string).collect();
            if args.len() > k {
                return Err(perr(lineno, format!("LUT row has {} inputs (K = {k})", args.len())));
            }
            if bits & !table_mask(args.len()) != 0 {
                return Err(perr(
                    lineno,
                    format!("table {hex} is wider than 2^{} bits", args.len()),
                ));
            }
            let table = TruthTable::from_bits(args.len(), bits);
            items.push((lineno, Item::Row { target, table, args }));
        } else {
            return Err(perr(lineno, format!("unrecognized line {line:?}")));
        }
    }
    if k.is_none() {
        return Err(perr(1, "missing K header"));
    }

    let node_items = items.iter().filter(|(_, i)| !matches!(i, Item::Output(_))).count();
    let mut c = Circuit::with_capacity(name, node_items);
    let mut by_name: HashMap<String, NodeId> = HashMap::with_capacity(node_items);
    // Pass 1: declare inputs and one placeholder per row target.
    for (lineno, item) in &items {
        match item {
            Item::Input(sig) => {
                if by_name.contains_key(sig) {
                    return Err(perr(*lineno, format!("duplicate definition of {sig:?}")));
                }
                let id = c.add_input(sig.clone());
                by_name.insert(sig.clone(), id);
            }
            Item::Row { target, .. } => {
                if by_name.contains_key(target) {
                    return Err(perr(*lineno, format!("duplicate definition of {target:?}")));
                }
                let id = c.add_const(false);
                c.set_node_name(id, target.clone());
                by_name.insert(target.clone(), id);
            }
            Item::Output(_) => {}
        }
    }
    // Pass 2: synthesize every row over its leaves, then steal the SOP
    // root's definition into the named placeholder so consumers (and
    // forward references) resolve to the named node.
    for (lineno, item) in &items {
        match item {
            Item::Row { target, table, args } => {
                let target_id = by_name[target.as_str()];
                let mut leaves = Vec::with_capacity(args.len());
                for a in args {
                    let &id = by_name
                        .get(a)
                        .ok_or_else(|| perr(*lineno, format!("undefined signal {a:?}")))?;
                    leaves.push(id);
                }
                let before = c.len();
                let root = c.synthesize_sop(&leaves, table)?;
                let (kind, fanins) = if root.index() >= before {
                    // Fresh SOP root (gate or constant): copy its definition.
                    let node = c.node(root);
                    (node.kind(), node.fanins().to_vec())
                } else {
                    // Identity row: the root IS the single leaf.
                    (GateKind::Buf, vec![root])
                };
                c.rewire(target_id, kind, fanins).map_err(|e| match e {
                    NetlistError::Cycle(_) => {
                        perr(*lineno, format!("combinational cycle through {target:?}"))
                    }
                    other => IoError::from(other),
                })?;
            }
            Item::Output(sig) => {
                let &id = by_name
                    .get(sig)
                    .ok_or_else(|| perr(*lineno, format!("undefined output signal {sig:?}")))?;
                c.add_output(id, sig.clone());
            }
            Item::Input(_) => {}
        }
    }
    // Drop the duplicated SOP tops (and any rows unreachable from the
    // outputs).
    c.sweep();
    Ok(c)
}

/// Serializes a circuit as a `.lut` file by covering it with *k*-input
/// LUTs (`sft_techmap::cover_luts`) and emitting the rows in topological
/// order. Emission is byte-deterministic.
///
/// # Errors
///
/// Returns [`IoError::Netlist`] if the circuit is cyclic or `k` is
/// outside the supported `2..=7` range.
pub fn write(c: &Circuit, k: usize) -> Result<String, IoError> {
    let net = cover_luts(c, k).map_err(IoError::Netlist)?;
    let cc = &net.circuit;
    let names: Vec<String> = cc
        .iter()
        .map(|(id, node)| match node.name() {
            Some(n) => n.to_string(),
            None => format!("n{}", id.index()),
        })
        .collect();
    let name_of = |id: NodeId| -> &str { &names[id.index()] };
    let mut out = String::new();
    let _ = writeln!(out, "# {} (lut-{k} covering)", cc.name());
    let _ = writeln!(out, "K {k}");
    for &i in cc.inputs() {
        let _ = writeln!(out, "INPUT({})", name_of(i));
    }
    for (slot, &o) in cc.outputs().iter().enumerate() {
        let label = cc.output_name(slot).unwrap_or_else(|| name_of(o));
        let _ = writeln!(out, "OUTPUT({label})");
    }
    // Constants referenced as cut leaves or output drivers become
    // zero-input rows, in id order.
    let mut const_leaves: HashSet<NodeId> = HashSet::new();
    for lut in &net.luts {
        for &l in &lut.inputs {
            if matches!(cc.node(l).kind(), GateKind::Const0 | GateKind::Const1) {
                const_leaves.insert(l);
            }
        }
    }
    for &o in cc.outputs() {
        if matches!(cc.node(o).kind(), GateKind::Const0 | GateKind::Const1) {
            const_leaves.insert(o);
        }
    }
    let mut const_rows: Vec<NodeId> = const_leaves.into_iter().collect();
    const_rows.sort();
    for id in const_rows {
        let bit = u8::from(cc.node(id).kind() == GateKind::Const1);
        let _ = writeln!(out, "{} = LUT(0x{bit:x})", name_of(id));
    }
    for lut in &net.luts {
        let width = (1usize << lut.inputs.len()).div_ceil(4).max(1);
        let _ = write!(out, "{} = LUT(0x{:0width$x}", name_of(lut.root), lut.table.bits());
        for &l in &lut.inputs {
            let _ = write!(out, ", {}", name_of(l));
        }
        out.push_str(")\n");
    }
    // Output aliases, exactly like the `.bench` writer's trailing BUFs,
    // as identity LUTs.
    for (slot, &o) in cc.outputs().iter().enumerate() {
        if let Some(label) = cc.output_name(slot) {
            if label != name_of(o) {
                let _ = writeln!(out, "{label} = LUT(0x2, {})", name_of(o));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format;

    fn same_function(a: &Circuit, b: &Circuit) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let n = a.inputs().len();
        assert!(n <= 12);
        for m in 0..1u64 << n {
            let v: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(a.eval_assignment(&v), b.eval_assignment(&v), "minterm {m}");
        }
    }

    const SRC: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n\
        OUTPUT(y)\nOUTPUT(z)\nt1 = AND(a, b, c)\nt2 = OR(d, e, f)\ny = XOR(t1, t2)\n\
        z = NAND(t1, d)\n";

    #[test]
    fn round_trip_preserves_function() {
        let c = bench_format::parse(SRC, "t").unwrap();
        for k in [2, 4, 7] {
            let text = write(&c, k).unwrap();
            let back = parse(&text, "t").unwrap();
            same_function(&c, &back);
        }
    }

    #[test]
    fn write_is_deterministic() {
        let c = bench_format::parse(SRC, "t").unwrap();
        assert_eq!(write(&c, 4).unwrap(), write(&c, 4).unwrap());
        let reparsed = parse(&write(&c, 4).unwrap(), "t").unwrap();
        // Deterministic (not necessarily a textual fixpoint): two
        // write → parse → write cycles agree from the same start.
        assert_eq!(write(&reparsed, 4).unwrap(), write(&reparsed, 4).unwrap());
    }

    #[test]
    fn forward_references_and_aliases() {
        let text = "K 3\nINPUT(a)\nOUTPUT(y)\ny = LUT(0x2, m)\nm = LUT(0x1, a)\n";
        let c = parse(text, "t").unwrap();
        // y = buf(m), m = not(a).
        assert_eq!(c.eval_assignment(&[true]), vec![false]);
        assert_eq!(c.eval_assignment(&[false]), vec![true]);
    }

    #[test]
    fn constants_round_trip() {
        let c =
            bench_format::parse("INPUT(a)\nOUTPUT(y)\nk = CONST1\ny = XOR(a, k)\n", "t").unwrap();
        let text = write(&c, 3).unwrap();
        let back = parse(&text, "t").unwrap();
        same_function(&c, &back);
    }

    #[test]
    fn zero_input_const_rows() {
        let text = "K 2\nINPUT(a)\nOUTPUT(y)\nOUTPUT(k)\nk = LUT(0x1)\ny = LUT(0x8, a, k)\n";
        let c = parse(text, "t").unwrap();
        assert_eq!(c.eval_assignment(&[true]), vec![true, true]);
        assert_eq!(c.eval_assignment(&[false]), vec![false, true]);
    }

    // --- Adversarial fixtures.

    #[test]
    fn missing_k_header_rejected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = LUT(0x2, a)\n";
        assert!(matches!(parse(text, "t"), Err(IoError::Parse { line: 3, .. })));
        assert!(matches!(parse("INPUT(a)\nOUTPUT(a)\n", "t"), Err(IoError::Parse { line: 1, .. })));
    }

    #[test]
    fn out_of_range_k_rejected() {
        for bad in ["K 1", "K 8", "K -3", "K x"] {
            assert!(matches!(parse(bad, "t"), Err(IoError::Parse { line: 1, .. })), "{bad}");
        }
    }

    #[test]
    fn fanin_bomb_rejected() {
        let args: Vec<String> = (0..9).map(|i| format!("x{i}")).collect();
        let mut text = String::from("K 7\n");
        for a in &args {
            text.push_str(&format!("INPUT({a})\n"));
        }
        text.push_str("OUTPUT(y)\n");
        text.push_str(&format!("y = LUT(0x0, {})\n", args.join(", ")));
        match parse(&text, "t") {
            Err(IoError::Parse { message, .. }) => assert!(message.contains("inputs")),
            other => panic!("expected row-width error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_table_rejected() {
        let text = "K 4\nINPUT(a)\nOUTPUT(y)\ny = LUT(0x4, a)\n";
        assert!(matches!(parse(text, "t"), Err(IoError::Parse { line: 4, .. })));
    }

    #[test]
    fn malformed_rows_rejected() {
        for bad in [
            "K 4\nINPUT(a)\nOUTPUT(y)\ny = AND(a)\n",
            "K 4\nINPUT(a)\nOUTPUT(y)\ny = LUT(cafe, a)\n",
            "K 4\nINPUT(a)\nOUTPUT(y)\ny = LUT(0x2, a\n",
            "K 4\nINPUT(a\n",
            "K 4\nwhat is this\n",
        ] {
            assert!(parse(bad, "t").is_err(), "{bad:?}");
        }
    }

    #[test]
    fn undefined_and_duplicate_signals_rejected() {
        let text = "K 4\nINPUT(a)\nOUTPUT(y)\ny = LUT(0x2, ghost)\n";
        assert!(matches!(parse(text, "t"), Err(IoError::Parse { line: 4, .. })));
        let text = "K 4\nINPUT(a)\nINPUT(a)\n";
        assert!(matches!(parse(text, "t"), Err(IoError::Parse { line: 3, .. })));
        let text = "K 4\nINPUT(a)\nOUTPUT(y)\ny = LUT(0x2, a)\ny = LUT(0x1, a)\n";
        assert!(matches!(parse(text, "t"), Err(IoError::Parse { line: 5, .. })));
    }

    #[test]
    fn cycles_rejected() {
        let text = "K 4\nINPUT(a)\nOUTPUT(y)\ny = LUT(0x2, z)\nz = LUT(0x2, y)\n";
        match parse(text, "t") {
            Err(IoError::Parse { message, .. }) => assert!(message.contains("cycle")),
            other => panic!("expected cycle error, got {other:?}"),
        }
        let text = "K 4\nINPUT(a)\nOUTPUT(y)\ny = LUT(0x2, y)\n";
        assert!(parse(text, "t").is_err());
    }
}
