//! Multi-format circuit I/O.
//!
//! The rest of the workspace speaks one dialect — ISCAS `.bench` — which is
//! perfect for the paper reproduction but cuts the pipeline off from the
//! open logic-synthesis ecosystem (ABC, Yosys, the AIGER benchmark sets).
//! This crate adds the missing frontends and backends behind one
//! [`Format`]-dispatched API:
//!
//! | format | extension | import | export | fault sites preserved |
//! |---|---|---|---|---|
//! | ISCAS bench | `.bench` | ✓ | ✓ | all (gate-for-gate) |
//! | structural Verilog | `.v` | ✓ | ✓ | all (gate-for-gate) |
//! | ASCII AIGER | `.aag` | ✓ | ✓ | PI/PO boundary |
//! | binary AIGER | `.aig` | ✓ | ✓ | PI/PO boundary |
//! | LUT-*k* covering | `.lut` | ✓ | ✓ | PI/PO boundary |
//!
//! Every importer is hardened to the same standard as the `.bench` parser
//! (size caps, typed errors, no panics on untrusted bytes) and every
//! exporter is byte-deterministic with a canonical emission order, so a
//! parse → write cycle reaches a textual fixpoint by the second write. The
//! full written contract — grammar, canonical-emission rules, inverter and
//! LUT mapping semantics, fault-site guarantees — lives in
//! `docs/formats.md`.
//!
//! # Examples
//!
//! ```
//! use sft_io::{parse_bytes, write_bytes, Format, WriteOptions};
//!
//! let bench = b"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
//! let c = parse_bytes(bench, Format::Bench, "nand2")?;
//! // Convert to binary AIGER and back: the function survives.
//! let aig = write_bytes(&c, Format::AigerBinary, &WriteOptions::default())?;
//! assert!(aig.starts_with(b"aig "));
//! let back = parse_bytes(&aig, Format::AigerBinary, "nand2")?;
//! assert_eq!(back.eval_assignment(&[true, true]), vec![false]);
//! # Ok::<(), sft_io::IoError>(())
//! ```
#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sft_netlist::{bench_format, Circuit, NetlistError};
use std::fmt;
use std::path::Path;

pub mod aiger;
pub mod lut;
pub mod verilog;

/// Default LUT input limit for [`Format::Lut`] export when the caller does
/// not specify one (the classical FPGA sweet spot).
pub const DEFAULT_LUT_K: usize = 4;

/// A circuit interchange format understood by [`parse_bytes`] and
/// [`write_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// ISCAS-85/89 `.bench` (handled by `sft_netlist::bench_format`).
    Bench,
    /// Gate-level structural Verilog (`.v`): primitive instances over
    /// named nets. See [`verilog`].
    Verilog,
    /// ASCII AIGER 1.9 combinational AND-inverter graphs (`.aag`).
    /// See [`aiger`].
    AigerAscii,
    /// Binary AIGER 1.9 combinational AND-inverter graphs (`.aig`).
    /// See [`aiger`].
    AigerBinary,
    /// LUT-*k* covering interchange (`.lut`): `k`-input truth-table rows
    /// produced by `sft_techmap::cover_luts`. See [`lut`].
    Lut,
}

impl Format {
    /// Every supported format, in canonical order.
    pub const ALL: [Format; 5] =
        [Format::Bench, Format::Verilog, Format::AigerAscii, Format::AigerBinary, Format::Lut];

    /// Detects a format from a file path's extension (`.bench`, `.v`,
    /// `.aag`, `.aig`, `.lut`; case-insensitive). Returns `None` for
    /// unknown or missing extensions.
    ///
    /// ```
    /// use sft_io::Format;
    /// assert_eq!(Format::from_path("jobs/c432.AIG"), Some(Format::AigerBinary));
    /// assert_eq!(Format::from_path("notes.txt"), None);
    /// ```
    pub fn from_path(path: impl AsRef<Path>) -> Option<Format> {
        let ext = path.as_ref().extension()?.to_str()?;
        Format::from_name(ext)
    }

    /// Parses a format name as used by the CLI's `--from`/`--to` flags.
    /// Accepts both the canonical names and the file extensions:
    /// `bench`, `verilog`/`v`, `aag`/`aiger-ascii`, `aig`/`aiger`, `lut`.
    ///
    /// ```
    /// use sft_io::Format;
    /// assert_eq!(Format::from_name("verilog"), Some(Format::Verilog));
    /// assert_eq!(Format::from_name("AAG"), Some(Format::AigerAscii));
    /// assert_eq!(Format::from_name("blif"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Format> {
        Some(match name.to_ascii_lowercase().as_str() {
            "bench" => Format::Bench,
            "v" | "verilog" => Format::Verilog,
            "aag" | "aiger-ascii" => Format::AigerAscii,
            "aig" | "aiger" | "aiger-binary" => Format::AigerBinary,
            "lut" => Format::Lut,
            _ => return None,
        })
    }

    /// The canonical file extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            Format::Bench => "bench",
            Format::Verilog => "v",
            Format::AigerAscii => "aag",
            Format::AigerBinary => "aig",
            Format::Lut => "lut",
        }
    }

    /// The canonical human-readable name (accepted by [`Format::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            Format::Bench => "bench",
            Format::Verilog => "verilog",
            Format::AigerAscii => "aag",
            Format::AigerBinary => "aig",
            Format::Lut => "lut",
        }
    }

    /// Whether files in this format are binary (not valid UTF-8 text).
    pub fn is_binary(self) -> bool {
        matches!(self, Format::AigerBinary)
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Options controlling [`write_bytes`].
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// LUT input limit for [`Format::Lut`] export, in
    /// `sft_techmap::MIN_LUT_INPUTS ..= sft_techmap::MAX_LUT_INPUTS`.
    /// Ignored by all other formats.
    pub lut_k: usize,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions { lut_k: DEFAULT_LUT_K }
    }
}

/// Error type for every importer and exporter in this crate.
///
/// Text-format syntax errors carry a 1-based line number; binary AIGER
/// errors carry a byte offset. Structural errors surfaced by the netlist
/// layer (cycles, arity violations) are wrapped as
/// [`IoError::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Syntax or semantic error in a text format, with a 1-based line.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Malformed binary AIGER data, with the byte offset where decoding
    /// failed.
    Binary {
        /// Byte offset into the input where decoding failed.
        offset: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A structural netlist error (cycle, arity, unsupported covering
    /// parameter) propagated from `sft-netlist`/`sft-techmap`.
    Netlist(NetlistError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Binary { offset, message } => write!(f, "byte {offset}: {message}"),
            IoError::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<NetlistError> for IoError {
    fn from(e: NetlistError) -> Self {
        match e {
            NetlistError::Parse { line, message } => IoError::Parse { line, message },
            other => IoError::Netlist(other),
        }
    }
}

/// Decodes `bytes` as `format` into a [`Circuit`].
///
/// `name` seeds the circuit name for formats that do not embed one
/// (`.bench`, `.lut`); structural Verilog uses its `module` name and AIGER
/// files use the first comment line when present.
///
/// Both AIGER variants are accepted interchangeably — the `aag`/`aig`
/// header decides, so a mislabeled file still parses.
///
/// # Errors
///
/// Returns a typed [`IoError`] (never panics) on malformed input: syntax
/// errors with line numbers, truncated binary data with byte offsets,
/// fanin bombs beyond `sft_netlist::bench_format::MAX_PARSE_FANINS`,
/// undeclared nets, combinational cycles, and sequential elements
/// (latches/`DFF`), which this combinational-core workspace rejects.
///
/// ```
/// use sft_io::{parse_bytes, Format, IoError};
///
/// let bad = b"module m (input wire a, output wire y);\n  not g (y, ghost);\nendmodule\n";
/// match parse_bytes(bad, Format::Verilog, "m") {
///     Err(IoError::Parse { line: 2, message }) => assert!(message.contains("ghost")),
///     other => panic!("expected typed parse error, got {other:?}"),
/// }
/// ```
pub fn parse_bytes(bytes: &[u8], format: Format, name: &str) -> Result<Circuit, IoError> {
    match format {
        Format::AigerAscii | Format::AigerBinary => aiger::parse(bytes, name),
        text_format => {
            let text = std::str::from_utf8(bytes).map_err(|e| IoError::Parse {
                line: 1 + bytes[..e.valid_up_to()].iter().filter(|&&b| b == b'\n').count(),
                message: format!("{format} input is not valid UTF-8"),
            })?;
            match text_format {
                Format::Bench => Ok(bench_format::parse(text, name)?),
                Format::Verilog => verilog::parse(text),
                Format::Lut => lut::parse(text, name),
                Format::AigerAscii | Format::AigerBinary => unreachable!("handled above"),
            }
        }
    }
}

/// Serializes a circuit as `format`.
///
/// Every exporter is byte-deterministic: the same circuit always produces
/// the same bytes, and emission follows a canonical order that depends
/// only on the named structure (see `docs/formats.md`), so parse → write
/// reaches a textual fixpoint by the second write for `.bench`, `.v`,
/// `.aag` and `.aig`.
///
/// # Errors
///
/// Returns [`IoError::Netlist`] if the circuit is cyclic, or (for
/// [`Format::Lut`]) if `opts.lut_k` is outside the supported
/// `2..=7` range.
///
/// ```
/// use sft_io::{parse_bytes, write_bytes, Format, WriteOptions};
///
/// let c = parse_bytes(b"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", Format::Bench, "inv")?;
/// let v = write_bytes(&c, Format::Verilog, &WriteOptions::default())?;
/// assert!(std::str::from_utf8(&v).unwrap().contains("module inv"));
/// # Ok::<(), sft_io::IoError>(())
/// ```
pub fn write_bytes(c: &Circuit, format: Format, opts: &WriteOptions) -> Result<Vec<u8>, IoError> {
    Ok(match format {
        Format::Bench => bench_format::write(c).into_bytes(),
        Format::Verilog => verilog::write(c)?.into_bytes(),
        Format::AigerAscii => aiger::write_ascii(c)?,
        Format::AigerBinary => aiger::write_binary(c)?,
        Format::Lut => lut::write(c, opts.lut_k)?.into_bytes(),
    })
}

/// Makes a name safe for every text format in this crate: ASCII letters,
/// digits and `_` only, with a leading `n` prepended when the first
/// character is a digit, and `n` for an empty name. Matches the
/// sanitization the DOT exporter applies.
///
/// ```
/// assert_eq!(sft_io::sanitize("22"), "n22");
/// assert_eq!(sft_io::sanitize("a.b[3]"), "a_b_3_");
/// ```
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_';
        if i == 0 && ch.is_ascii_digit() {
            out.push('n');
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('n');
    }
    out
}

/// Deterministic name uniquifier shared by the importers/exporters:
/// returns `base` if unused, else `base_2`, `base_3`, … The chosen name is
/// recorded in `used`.
pub(crate) fn unique_name(used: &mut std::collections::HashSet<String>, base: String) -> String {
    if used.insert(base.clone()) {
        return base;
    }
    let mut k = 2usize;
    loop {
        let candidate = format!("{base}_{k}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_detection() {
        assert_eq!(Format::from_path("a/b/c17.bench"), Some(Format::Bench));
        assert_eq!(Format::from_path("c17.v"), Some(Format::Verilog));
        assert_eq!(Format::from_path("c17.aag"), Some(Format::AigerAscii));
        assert_eq!(Format::from_path("c17.aig"), Some(Format::AigerBinary));
        assert_eq!(Format::from_path("c17.lut"), Some(Format::Lut));
        assert_eq!(Format::from_path("c17"), None);
        for f in Format::ALL {
            assert_eq!(Format::from_name(f.name()), Some(f));
            assert_eq!(Format::from_name(f.extension()), Some(f));
            assert_eq!(Format::from_path(format!("x.{}", f.extension())), Some(f));
        }
    }

    #[test]
    fn invalid_utf8_is_typed_error() {
        let bytes = b"INPUT(a)\n\xff\xfe\n";
        match parse_bytes(bytes, Format::Bench, "bin") {
            Err(IoError::Parse { line: 2, message }) => assert!(message.contains("UTF-8")),
            other => panic!("expected UTF-8 parse error, got {other:?}"),
        }
    }

    #[test]
    fn sanitize_rules() {
        assert_eq!(sanitize("ok_name3"), "ok_name3");
        assert_eq!(sanitize("3x"), "n3x");
        assert_eq!(sanitize(""), "n");
        assert_eq!(sanitize("a b.c"), "a_b_c");
    }

    #[test]
    fn unique_name_appends_counters() {
        let mut used = std::collections::HashSet::new();
        assert_eq!(unique_name(&mut used, "x".into()), "x");
        assert_eq!(unique_name(&mut used, "x".into()), "x_2");
        assert_eq!(unique_name(&mut used, "x".into()), "x_3");
        assert_eq!(unique_name(&mut used, "y".into()), "y");
    }
}
