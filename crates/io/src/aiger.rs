//! ASCII and binary AIGER (And-Inverter Graph) import/export.
//!
//! AIGER is the interchange format of the hardware model-checking and
//! SAT-sweeping world (ABC, the HWMCC benchmark sets). A file describes a
//! graph of two-input AND nodes over possibly-complemented edges: literal
//! `2v` is variable `v`, literal `2v+1` is its complement, and literals `0`
//! and `1` are constant false/true. This module handles the combinational
//! subset (latch count must be zero, mirroring the `.bench` parser's `DFF`
//! rejection) in both encodings:
//!
//! * **ASCII** (`aag` header): inputs, outputs and AND triples as decimal
//!   lines — order-independent, forward references allowed;
//! * **binary** (`aig` header): inputs implicit, AND operands
//!   delta-compressed as 7-bit variable-length integers — compact and
//!   strictly topologically ordered.
//!
//! **Import** absorbs inverters instead of materializing one `NOT` gate per
//! complemented edge: an AND variable referenced *only* complemented
//! becomes a single `NAND` gate, one referenced both ways becomes an `AND`
//! plus one shared `NOT`. **Export** decomposes every gate kind into AND
//! legs with complement bits (De Morgan for `OR`/`NOR`, the four-AND
//! expansion for `XOR`/`XNOR`) under structural hashing, walking the output
//! cones in a canonical depth-first order so emission is byte-deterministic
//! and parse → write reaches a byte fixpoint by the second write. Dead
//! logic is not representable in AIGER, so only the primary-input /
//! primary-output boundary fault sites are preserved (see
//! `docs/formats.md`).
//!
//! # Examples
//!
//! ```
//! use sft_io::aiger;
//! use sft_netlist::bench_format;
//!
//! let c = bench_format::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "x")?;
//! let aag = aiger::write_ascii(&c)?;
//! let text = std::str::from_utf8(&aag).unwrap();
//! assert!(text.starts_with("aag ")); // header: M I L O A
//! let back = aiger::parse(&aag, "x")?;
//! assert_eq!(back.eval_assignment(&[true, false]), vec![true]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{sanitize, unique_name, IoError};
use sft_netlist::{Circuit, GateKind, NetlistError, NodeId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Upper bound on the variable count (`M` in the header) an imported file
/// may declare. Like `bench_format::MAX_PARSE_FANINS` this is a bomb
/// guard, not a functional limit: a header claiming more variables than
/// any real benchmark is a corrupt file or an allocation bomb, and must be
/// rejected with a typed error before the parser sizes anything by it.
pub const MAX_VARS: u64 = 1 << 23;

/// Upper bound on the primary-input count of an imported file. Binary
/// AIGER declares inputs implicitly (no file bytes back them), so a size
/// cap is the only defense against a tiny file demanding millions of
/// input nodes.
pub const MAX_IMPORT_INPUTS: u64 = 1 << 20;

fn perr(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse { line, message: message.into() }
}

fn berr(offset: usize, message: impl Into<String>) -> IoError {
    IoError::Binary { offset, message: message.into() }
}

/// One parsed AND definition: `lhs = rhs0 & rhs1` as literals, plus the
/// source line (ASCII) or 0 (binary) for error reporting.
struct AndDef {
    lhs: u32,
    rhs0: u32,
    rhs1: u32,
    line: usize,
}

/// Format-independent contents of an AIGER file, produced by the two
/// front-ends and consumed by [`build`].
struct AigFile {
    /// Input literals in declaration order (always `2, 4, …` for binary).
    inputs: Vec<u32>,
    /// Output literals in slot order, with source lines.
    outputs: Vec<(u32, usize)>,
    ands: Vec<AndDef>,
    input_syms: HashMap<usize, String>,
    output_syms: HashMap<usize, String>,
    comment_name: Option<String>,
}

struct Header {
    binary: bool,
    max_var: u64,
    num_inputs: u64,
    num_outputs: u64,
    num_ands: u64,
}

fn parse_header(line: &str) -> Result<Header, IoError> {
    let mut it = line.split_ascii_whitespace();
    let magic = it.next().ok_or_else(|| perr(1, "empty AIGER header"))?;
    let binary = match magic {
        "aag" => false,
        "aig" => true,
        other => return Err(perr(1, format!("not an AIGER file (header {other:?})"))),
    };
    let mut field = |name: &str| -> Result<u64, IoError> {
        it.next()
            .ok_or_else(|| perr(1, format!("AIGER header missing {name}")))?
            .parse::<u64>()
            .map_err(|_| perr(1, format!("AIGER header field {name} is not a number")))
    };
    let max_var = field("M")?;
    let num_inputs = field("I")?;
    let num_latches = field("L")?;
    let num_outputs = field("O")?;
    let num_ands = field("A")?;
    if it.next().is_some() {
        return Err(perr(1, "trailing tokens in AIGER header"));
    }
    if num_latches != 0 {
        return Err(perr(
            1,
            format!(
                "{num_latches} latches not supported; extract the combinational core \
                 (this workspace models fully-scanned circuits)"
            ),
        ));
    }
    if max_var > MAX_VARS {
        return Err(perr(1, format!("{max_var} variables exceeds the import limit {MAX_VARS}")));
    }
    if num_inputs > MAX_IMPORT_INPUTS {
        return Err(perr(
            1,
            format!("{num_inputs} inputs exceeds the import limit {MAX_IMPORT_INPUTS}"),
        ));
    }
    if num_inputs + num_ands > max_var {
        return Err(perr(
            1,
            format!("header claims I + A = {} variables but M = {max_var}", num_inputs + num_ands),
        ));
    }
    Ok(Header { binary, max_var, num_inputs, num_outputs, num_ands })
}

/// Parses the symbol table and comment section shared by both encodings.
/// `lines` yields `(lineno, text)` for everything after the AND section.
fn parse_symbols<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
    file: &mut AigFile,
) -> Result<(), IoError> {
    let mut in_comment = false;
    for (lineno, line) in lines {
        if in_comment {
            if file.comment_name.is_none() && !line.trim().is_empty() {
                file.comment_name = Some(line.trim().to_string());
            }
            continue;
        }
        if line == "c" {
            in_comment = true;
            continue;
        }
        let (tag, name) = line
            .split_once(' ')
            .ok_or_else(|| perr(lineno, format!("malformed symbol line {line:?}")))?;
        let (kind, pos) = tag.split_at(1);
        let pos: usize =
            pos.parse().map_err(|_| perr(lineno, format!("malformed symbol position {tag:?}")))?;
        let (table, count) = match kind {
            "i" => (&mut file.input_syms, file.inputs.len()),
            "o" => (&mut file.output_syms, file.outputs.len()),
            other => {
                return Err(perr(lineno, format!("unsupported symbol kind {other:?}")));
            }
        };
        if pos >= count {
            return Err(perr(lineno, format!("symbol {tag} out of range (count {count})")));
        }
        if table.insert(pos, name.to_string()).is_some() {
            return Err(perr(lineno, format!("duplicate symbol {tag}")));
        }
    }
    Ok(())
}

fn parse_ascii(text: &str) -> Result<AigFile, IoError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, header_line) = lines.next().ok_or_else(|| perr(1, "empty AIGER file"))?;
    let header = parse_header(header_line)?;
    let lit_limit = 2 * header.max_var + 1;
    let mut file = AigFile {
        inputs: Vec::new(),
        outputs: Vec::new(),
        ands: Vec::new(),
        input_syms: HashMap::new(),
        output_syms: HashMap::new(),
        comment_name: None,
    };
    let mut next = |what: &str| -> Result<(usize, &str), IoError> {
        lines.next().ok_or_else(|| perr(text.lines().count() + 1, format!("missing {what} line")))
    };
    let parse_lit = |lineno: usize, tok: &str| -> Result<u32, IoError> {
        let v: u64 =
            tok.parse().map_err(|_| perr(lineno, format!("literal {tok:?} is not a number")))?;
        if v > lit_limit {
            return Err(perr(lineno, format!("literal {v} exceeds 2M+1 = {lit_limit}")));
        }
        Ok(v as u32)
    };
    for _ in 0..header.num_inputs {
        let (lineno, line) = next("input")?;
        let lit = parse_lit(lineno, line.trim())?;
        if lit < 2 || lit % 2 != 0 {
            return Err(perr(lineno, format!("input literal {lit} must be even and non-constant")));
        }
        file.inputs.push(lit);
    }
    for _ in 0..header.num_outputs {
        let (lineno, line) = next("output")?;
        let lit = parse_lit(lineno, line.trim())?;
        file.outputs.push((lit, lineno));
    }
    for _ in 0..header.num_ands {
        let (lineno, line) = next("AND")?;
        let mut toks = line.split_ascii_whitespace();
        let mut tok = |name: &str| -> Result<u32, IoError> {
            parse_lit(lineno, toks.next().ok_or_else(|| perr(lineno, format!("missing {name}")))?)
        };
        let lhs = tok("AND lhs")?;
        let rhs0 = tok("AND rhs0")?;
        let rhs1 = tok("AND rhs1")?;
        if toks.next().is_some() {
            return Err(perr(lineno, "trailing tokens after AND triple"));
        }
        if lhs < 2 || lhs % 2 != 0 {
            return Err(perr(lineno, format!("AND lhs {lhs} must be even and non-constant")));
        }
        file.ands.push(AndDef { lhs, rhs0, rhs1, line: lineno });
    }
    parse_symbols(lines, &mut file)?;
    Ok(file)
}

fn parse_binary(bytes: &[u8], header: Header) -> Result<AigFile, IoError> {
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("caller located header") + 1;
    let lit_limit = 2 * header.max_var + 1;
    let mut pos = header_end;
    let read_line = |pos: &mut usize, what: &str| -> Result<String, IoError> {
        let start = *pos;
        let end = bytes[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| start + i)
            .ok_or_else(|| berr(start, format!("truncated file: missing {what} line")))?;
        let line = std::str::from_utf8(&bytes[start..end])
            .map_err(|_| berr(start, format!("{what} line is not valid text")))?;
        *pos = end + 1;
        Ok(line.to_string())
    };
    let mut file = AigFile {
        inputs: (1..=header.num_inputs as u32).map(|v| 2 * v).collect(),
        outputs: Vec::new(),
        ands: Vec::new(),
        input_syms: HashMap::new(),
        output_syms: HashMap::new(),
        comment_name: None,
    };
    for _ in 0..header.num_outputs {
        let at = pos;
        let line = read_line(&mut pos, "output")?;
        let v: u64 = line
            .trim()
            .parse()
            .map_err(|_| berr(at, format!("output literal {:?} is not a number", line.trim())))?;
        if v > lit_limit {
            return Err(berr(at, format!("output literal {v} exceeds 2M+1 = {lit_limit}")));
        }
        file.outputs.push((v as u32, 0));
    }
    // Delta-compressed ANDs: lhs is implicit (2(I+i+1)); each operand pair
    // is stored as (lhs - rhs0, rhs0 - rhs1) in 7-bit little-endian
    // variable-length chunks with a continuation bit.
    let decode = |pos: &mut usize, what: &str| -> Result<u64, IoError> {
        let start = *pos;
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let &byte = bytes
                .get(*pos)
                .ok_or_else(|| berr(start, format!("truncated file inside {what} delta")))?;
            *pos += 1;
            if shift >= 35 {
                return Err(berr(start, format!("{what} delta overflows 5 bytes")));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    };
    for i in 0..header.num_ands {
        let lhs = 2 * (header.num_inputs + i + 1);
        let at = pos;
        let delta0 = decode(&mut pos, "rhs0")?;
        let delta1 = decode(&mut pos, "rhs1")?;
        if delta0 == 0 || delta0 > lhs {
            return Err(berr(at, format!("AND {lhs}: rhs0 delta {delta0} out of range")));
        }
        let rhs0 = lhs - delta0;
        if delta1 > rhs0 {
            return Err(berr(at, format!("AND {lhs}: rhs1 delta {delta1} out of range")));
        }
        let rhs1 = rhs0 - delta1;
        file.ands.push(AndDef { lhs: lhs as u32, rhs0: rhs0 as u32, rhs1: rhs1 as u32, line: 0 });
    }
    if pos < bytes.len() {
        let tail = std::str::from_utf8(&bytes[pos..])
            .map_err(|_| berr(pos, "symbol section is not valid text"))?;
        parse_symbols(tail.lines().map(|l| (0, l)), &mut file)?;
    }
    Ok(file)
}

/// Where a defined AIGER variable lives.
#[derive(Clone, Copy)]
enum Def {
    Input(usize),
    And(usize),
}

fn build(file: AigFile, fallback_name: &str) -> Result<Circuit, IoError> {
    // Pass 1: map variables to their definitions; detect redefinitions.
    let mut defs: HashMap<u32, Def> = HashMap::with_capacity(file.inputs.len() + file.ands.len());
    for (k, &lit) in file.inputs.iter().enumerate() {
        if defs.insert(lit / 2, Def::Input(k)).is_some() {
            return Err(perr(1, format!("variable {} defined twice", lit / 2)));
        }
    }
    for (k, a) in file.ands.iter().enumerate() {
        if defs.insert(a.lhs / 2, Def::And(k)).is_some() {
            return Err(perr(a.line.max(1), format!("variable {} defined twice", a.lhs / 2)));
        }
    }
    // Pass 2: polarity usage, reference validation, constant usage.
    let mut pos_used: HashSet<u32> = HashSet::new();
    let mut neg_used: HashSet<u32> = HashSet::new();
    let mut const_used = [false, false];
    {
        let mut mark = |lit: u32, line: usize| -> Result<(), IoError> {
            if lit <= 1 {
                const_used[lit as usize] = true;
                return Ok(());
            }
            let var = lit / 2;
            if !defs.contains_key(&var) {
                return Err(perr(
                    line.max(1),
                    format!("literal {lit} references undefined variable {var}"),
                ));
            }
            if lit.is_multiple_of(2) {
                pos_used.insert(var);
            } else {
                neg_used.insert(var);
            }
            Ok(())
        };
        for a in &file.ands {
            mark(a.rhs0, a.line)?;
            mark(a.rhs1, a.line)?;
        }
        for &(lit, line) in &file.outputs {
            mark(lit, line)?;
        }
    }
    // A variable used only complemented becomes one NAND gate; used both
    // ways it becomes an AND plus one shared NOT.
    let nand_var = |var: u32| -> bool { !pos_used.contains(&var) && neg_used.contains(&var) };

    // Pass 3: build the circuit. Node order is deterministic: inputs,
    // constants, one placeholder per AND in file order, then the shared
    // inverters (inputs first, then ANDs in file order).
    let name = file.comment_name.clone().unwrap_or_else(|| fallback_name.to_string());
    let mut c = Circuit::with_capacity(name, file.inputs.len() + file.ands.len());
    let mut used_names: HashSet<String> = HashSet::new();
    let mut input_nodes = Vec::with_capacity(file.inputs.len());
    for k in 0..file.inputs.len() {
        let base = match file.input_syms.get(&k) {
            Some(sym) => sanitize(sym),
            None => format!("i{k}"),
        };
        input_nodes.push(c.add_input(unique_name(&mut used_names, base)));
    }
    let const_nodes =
        [const_used[0].then(|| c.add_const(false)), const_used[1].then(|| c.add_const(true))];
    let and_nodes: Vec<NodeId> = file.ands.iter().map(|_| c.add_const(false)).collect();
    let mut not_nodes: HashMap<u32, NodeId> = HashMap::new();
    for (k, &lit) in file.inputs.iter().enumerate() {
        let var = lit / 2;
        if neg_used.contains(&var) {
            let n = c.add_gate(GateKind::Not, vec![input_nodes[k]]).expect("unary gate");
            not_nodes.insert(var, n);
        }
    }
    for (k, a) in file.ands.iter().enumerate() {
        let var = a.lhs / 2;
        if pos_used.contains(&var) && neg_used.contains(&var) {
            let n = c.add_gate(GateKind::Not, vec![and_nodes[k]]).expect("unary gate");
            not_nodes.insert(var, n);
        }
    }
    let node_of = |lit: u32, line: usize| -> Result<NodeId, IoError> {
        if lit <= 1 {
            return Ok(const_nodes[lit as usize].expect("constant usage pre-scanned"));
        }
        let var = lit / 2;
        let def = defs[&var];
        if lit.is_multiple_of(2) {
            Ok(match def {
                Def::Input(k) => input_nodes[k],
                Def::And(k) => and_nodes[k],
            })
        } else if matches!(def, Def::And(_)) && nand_var(var) {
            // The whole variable lives complemented: its node IS the NAND.
            Ok(match def {
                Def::And(k) => and_nodes[k],
                Def::Input(_) => unreachable!(),
            })
        } else {
            not_nodes
                .get(&var)
                .copied()
                .ok_or_else(|| perr(line.max(1), format!("internal: no inverter for {lit}")))
        }
    };
    for (k, a) in file.ands.iter().enumerate() {
        let var = a.lhs / 2;
        let kind = if nand_var(var) { GateKind::Nand } else { GateKind::And };
        // Store fanins in increasing-literal order. Binary AIGER mandates
        // rhs0 >= rhs1, while the export DFS numbers variables in fanin
        // order — flipping to (low, high) here makes re-export assign the
        // low operand the smaller variable again, so the literal ordering
        // (and hence the written bytes) is a fixpoint.
        let (lo, hi) = if a.rhs0 <= a.rhs1 { (a.rhs0, a.rhs1) } else { (a.rhs1, a.rhs0) };
        let fanins = vec![node_of(lo, a.line)?, node_of(hi, a.line)?];
        c.rewire(and_nodes[k], kind, fanins).map_err(|e| match e {
            NetlistError::Cycle(_) => {
                perr(a.line.max(1), format!("combinational cycle through variable {var}"))
            }
            other => IoError::from(other),
        })?;
    }
    for (slot, &(lit, line)) in file.outputs.iter().enumerate() {
        let driver = node_of(lit, line)?;
        let existing: Option<String> = c.node(driver).name().map(str::to_string);
        let label = match (file.output_syms.get(&slot), existing.as_deref()) {
            (Some(sym), Some(existing)) if sanitize(sym) == existing => existing.to_string(),
            (Some(sym), Some(_)) => unique_name(&mut used_names, sanitize(sym)),
            (Some(sym), None) => {
                let name = unique_name(&mut used_names, sanitize(sym));
                c.set_node_name(driver, name.clone());
                name
            }
            (None, Some(existing)) => existing.to_string(),
            (None, None) => {
                let name = unique_name(&mut used_names, format!("o{slot}"));
                c.set_node_name(driver, name.clone());
                name
            }
        };
        c.add_output(driver, label);
    }
    Ok(c)
}

/// Parses AIGER bytes (either encoding — the `aag`/`aig` magic decides)
/// into a [`Circuit`].
///
/// `fallback_name` names the circuit when the file carries no comment
/// section; otherwise the first comment line is used.
///
/// # Errors
///
/// Returns [`IoError::Parse`] (ASCII, with line numbers) or
/// [`IoError::Binary`] (binary, with byte offsets) for malformed headers,
/// truncated data, out-of-range or redefined literals, undefined
/// references, combinational cycles, latches, and headers exceeding
/// [`MAX_VARS`]/[`MAX_IMPORT_INPUTS`].
///
/// ```
/// use sft_io::aiger;
///
/// // y = a AND b, with symbol names.
/// let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 a\ni1 b\no0 y\n";
/// let c = aiger::parse(src.as_bytes(), "and2")?;
/// assert_eq!(c.inputs().len(), 2);
/// assert_eq!(c.eval_assignment(&[true, true]), vec![true]);
/// # Ok::<(), sft_io::IoError>(())
/// ```
pub fn parse(bytes: &[u8], fallback_name: &str) -> Result<Circuit, IoError> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| perr(1, "missing AIGER header line"))?;
    let header_line = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| perr(1, "AIGER header is not valid text"))?;
    let header = parse_header(header_line)?;
    let file = if header.binary {
        parse_binary(bytes, header)?
    } else {
        let text = std::str::from_utf8(bytes).map_err(|e| {
            perr(
                1 + bytes[..e.valid_up_to()].iter().filter(|&&b| b == b'\n').count(),
                "ASCII AIGER input is not valid UTF-8",
            )
        })?;
        parse_ascii(text)?
    };
    build(file, fallback_name)
}

/// An and-inverter graph extracted from a [`Circuit`], shared by the two
/// writers.
struct Aig {
    num_inputs: usize,
    /// `(rhs0, rhs1)` per AND, rhs0 ≥ rhs1; lhs is `2(num_inputs + i + 1)`.
    ands: Vec<(u32, u32)>,
    outputs: Vec<u32>,
    input_names: Vec<Option<String>>,
    output_names: Vec<Option<String>>,
    name: String,
}

/// Structural-hashing AND allocator: every distinct `(rhs0, rhs1)` pair is
/// created once, numbered in creation order.
struct AndBuilder {
    num_inputs: usize,
    hash: HashMap<(u32, u32), u32>,
    ands: Vec<(u32, u32)>,
}

impl AndBuilder {
    fn and2(&mut self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 || a == (b ^ 1) {
            return 0;
        }
        if a == 1 || a == b {
            return b;
        }
        if b == 1 {
            return a;
        }
        let key = if a >= b { (a, b) } else { (b, a) };
        if let Some(&lit) = self.hash.get(&key) {
            return lit;
        }
        self.ands.push(key);
        let lit = 2 * (self.num_inputs + self.ands.len()) as u32;
        self.hash.insert(key, lit);
        lit
    }

    fn or2(&mut self, a: u32, b: u32) -> u32 {
        self.and2(a ^ 1, b ^ 1) ^ 1
    }

    fn xor2(&mut self, a: u32, b: u32) -> u32 {
        let t0 = self.and2(a, b ^ 1);
        let t1 = self.and2(a ^ 1, b);
        self.and2(t0 ^ 1, t1 ^ 1) ^ 1
    }

    fn fold(&mut self, lits: &[u32], op: fn(&mut Self, u32, u32) -> u32) -> u32 {
        let mut acc = lits[0];
        for &l in &lits[1..] {
            acc = op(self, acc, l);
        }
        acc
    }
}

/// Translates the cone of `root` into AND literals via an iterative
/// post-order DFS. Creation order (and hence the whole byte stream) is a
/// function of the reachable DAG structure alone — node ids never enter —
/// which is what makes re-import → re-export a byte fixpoint.
fn lit_of(c: &Circuit, root: NodeId, memo: &mut [Option<u32>], b: &mut AndBuilder) -> u32 {
    enum Task {
        Visit(NodeId),
        Emit(NodeId),
    }
    let mut stack = vec![Task::Visit(root)];
    while let Some(task) = stack.pop() {
        match task {
            Task::Visit(id) => {
                if memo[id.index()].is_some() {
                    continue;
                }
                stack.push(Task::Emit(id));
                for &f in c.node(id).fanins().iter().rev() {
                    stack.push(Task::Visit(f));
                }
            }
            Task::Emit(id) => {
                if memo[id.index()].is_some() {
                    continue;
                }
                let node = c.node(id);
                let lits: Vec<u32> =
                    node.fanins().iter().map(|f| memo[f.index()].expect("post-order")).collect();
                let lit = match node.kind() {
                    GateKind::Input => unreachable!("inputs pre-assigned"),
                    GateKind::Const0 => 0,
                    GateKind::Const1 => 1,
                    GateKind::Buf => lits[0],
                    GateKind::Not => lits[0] ^ 1,
                    GateKind::And => b.fold(&lits, AndBuilder::and2),
                    GateKind::Nand => b.fold(&lits, AndBuilder::and2) ^ 1,
                    GateKind::Or => b.fold(&lits, AndBuilder::or2),
                    GateKind::Nor => b.fold(&lits, AndBuilder::or2) ^ 1,
                    GateKind::Xor => b.fold(&lits, AndBuilder::xor2),
                    GateKind::Xnor => b.fold(&lits, AndBuilder::xor2) ^ 1,
                };
                memo[id.index()] = Some(lit);
            }
        }
    }
    memo[root.index()].expect("root emitted")
}

fn build_aig(c: &Circuit) -> Result<Aig, IoError> {
    // Reject cyclic circuits up front with a typed error (the DFS below
    // assumes acyclicity).
    c.topo_order().map_err(IoError::from)?;
    let mut memo: Vec<Option<u32>> = vec![None; c.len()];
    let num_inputs = c.inputs().len();
    for (k, &i) in c.inputs().iter().enumerate() {
        memo[i.index()] = Some(2 * (k as u32 + 1));
    }
    let mut builder = AndBuilder { num_inputs, hash: HashMap::new(), ands: Vec::new() };
    let outputs: Vec<u32> =
        c.outputs().iter().map(|&o| lit_of(c, o, &mut memo, &mut builder)).collect();
    let ands = builder.ands;
    let input_names = c.inputs().iter().map(|&i| c.node(i).name().map(str::to_string)).collect();
    let output_names = (0..c.outputs().len())
        .map(|slot| {
            c.output_name(slot)
                .map(str::to_string)
                .or_else(|| c.node(c.outputs()[slot]).name().map(str::to_string))
        })
        .collect();
    Ok(Aig { num_inputs, ands, outputs, input_names, output_names, name: c.name().to_string() })
}

fn push_symbols_and_comment(out: &mut String, aig: &Aig) {
    for (k, name) in aig.input_names.iter().enumerate() {
        if let Some(name) = name {
            let _ = writeln!(out, "i{k} {name}");
        }
    }
    for (k, name) in aig.output_names.iter().enumerate() {
        if let Some(name) = name {
            let _ = writeln!(out, "o{k} {name}");
        }
    }
    if !aig.name.is_empty() {
        let _ = writeln!(out, "c");
        let _ = writeln!(out, "{}", aig.name);
    }
}

/// Serializes a circuit as ASCII AIGER (`aag`).
///
/// Input/output names travel in the symbol table and the circuit name in
/// the comment section, so a round trip through [`parse`] preserves them.
/// Only the output cones are representable; dead logic is dropped.
///
/// # Errors
///
/// Returns [`IoError::Netlist`] if the circuit is cyclic.
pub fn write_ascii(c: &Circuit) -> Result<Vec<u8>, IoError> {
    let aig = build_aig(c)?;
    let max_var = aig.num_inputs + aig.ands.len();
    let mut out = String::with_capacity(16 * (max_var + aig.outputs.len()) + 64);
    let _ = writeln!(
        out,
        "aag {max_var} {} 0 {} {}",
        aig.num_inputs,
        aig.outputs.len(),
        aig.ands.len()
    );
    for k in 0..aig.num_inputs {
        let _ = writeln!(out, "{}", 2 * (k + 1));
    }
    for &o in &aig.outputs {
        let _ = writeln!(out, "{o}");
    }
    for (i, &(rhs0, rhs1)) in aig.ands.iter().enumerate() {
        let _ = writeln!(out, "{} {rhs0} {rhs1}", 2 * (aig.num_inputs + i + 1));
    }
    push_symbols_and_comment(&mut out, &aig);
    Ok(out.into_bytes())
}

/// Serializes a circuit as binary AIGER (`aig`): implicit input literals
/// and delta-compressed AND operands — the compact encoding the AIGER
/// benchmark sets distribute.
///
/// # Errors
///
/// Returns [`IoError::Netlist`] if the circuit is cyclic.
pub fn write_binary(c: &Circuit) -> Result<Vec<u8>, IoError> {
    let aig = build_aig(c)?;
    let max_var = aig.num_inputs + aig.ands.len();
    let mut header = String::new();
    let _ = writeln!(
        header,
        "aig {max_var} {} 0 {} {}",
        aig.num_inputs,
        aig.outputs.len(),
        aig.ands.len()
    );
    let mut out = header.into_bytes();
    for &o in &aig.outputs {
        out.extend_from_slice(format!("{o}\n").as_bytes());
    }
    let encode = |out: &mut Vec<u8>, mut x: u64| {
        while x & !0x7f != 0 {
            out.push((x & 0x7f) as u8 | 0x80);
            x >>= 7;
        }
        out.push(x as u8);
    };
    for (i, &(rhs0, rhs1)) in aig.ands.iter().enumerate() {
        let lhs = 2 * (aig.num_inputs + i + 1) as u64;
        encode(&mut out, lhs - u64::from(rhs0));
        encode(&mut out, u64::from(rhs0) - u64::from(rhs1));
    }
    let mut tail = String::new();
    push_symbols_and_comment(&mut tail, &aig);
    out.extend_from_slice(tail.as_bytes());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format;

    fn same_function(a: &Circuit, b: &Circuit) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let n = a.inputs().len();
        assert!(n <= 12);
        for m in 0..1u64 << n {
            let v: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(a.eval_assignment(&v), b.eval_assignment(&v), "minterm {m}");
        }
    }

    const GATES: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\nOUTPUT(w)\n\
        t1 = NAND(a, b)\nt2 = NOR(t1, c)\ny = XOR(t1, t2)\nz = XNOR(a, c)\nk = CONST1\n\
        w = OR(z, k)\n";

    #[test]
    fn ascii_round_trip_all_gate_kinds() {
        let c = bench_format::parse(GATES, "gates").unwrap();
        let bytes = write_ascii(&c).unwrap();
        let back = parse(&bytes, "ignored").unwrap();
        assert_eq!(back.name(), "gates");
        same_function(&c, &back);
    }

    #[test]
    fn binary_round_trip_all_gate_kinds() {
        let c = bench_format::parse(GATES, "gates").unwrap();
        let bytes = write_binary(&c).unwrap();
        assert!(bytes.starts_with(b"aig "));
        let back = parse(&bytes, "ignored").unwrap();
        same_function(&c, &back);
    }

    #[test]
    fn write_reaches_byte_fixpoint_by_second_write() {
        // The first round trip may renumber AND variables (the XOR
        // expansion is re-discovered in DFS order); from then on the byte
        // stream is a fixpoint of parse → write.
        let c = bench_format::parse(GATES, "gates").unwrap();
        for write in [write_ascii as fn(&Circuit) -> _, write_binary] {
            let w1 = write(&c).unwrap();
            let back1 = parse(&w1, "x").unwrap();
            same_function(&c, &back1);
            let w2 = write(&back1).unwrap();
            let back2 = parse(&w2, "x").unwrap();
            let w3 = write(&back2).unwrap();
            assert_eq!(w2, w3, "parse -> write must be a fixpoint from the second write");
        }
    }

    #[test]
    fn ascii_and_binary_agree() {
        let c = bench_format::parse(GATES, "gates").unwrap();
        let a = parse(&write_ascii(&c).unwrap(), "x").unwrap();
        let b = parse(&write_binary(&c).unwrap(), "x").unwrap();
        same_function(&a, &b);
    }

    #[test]
    fn inverter_absorption_shapes() {
        // y = NOT(AND(a, b)): the AND variable is used only complemented,
        // so the import produces a single NAND — no NOT chain.
        let src = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\ni0 a\ni1 b\no0 y\n";
        let c = parse(src.as_bytes(), "t").unwrap();
        let nands = c.iter().filter(|(_, n)| n.kind() == GateKind::Nand).count();
        let nots = c.iter().filter(|(_, n)| n.kind() == GateKind::Not).count();
        assert_eq!((nands, nots), (1, 0));
        assert_eq!(c.eval_assignment(&[true, true]), vec![false]);
        assert_eq!(c.eval_assignment(&[false, true]), vec![true]);
    }

    #[test]
    fn shared_not_for_both_polarities() {
        // Variable 3 is used both plain (output 6) and complemented
        // (operand 7): one AND node plus exactly one shared NOT. Variable 4
        // is used only complemented (output 9): a NAND, no NOT.
        let src = "aag 5 2 0 2 3\n2\n4\n6\n9\n6 2 4\n8 7 2\n10 2 2\no0 y\no1 z\n";
        let c = parse(src.as_bytes(), "t").unwrap();
        let nots = c.iter().filter(|(_, n)| n.kind() == GateKind::Not).count();
        let nands = c.iter().filter(|(_, n)| n.kind() == GateKind::Nand).count();
        assert_eq!((nots, nands), (1, 1));
    }

    #[test]
    fn constants_and_input_outputs() {
        // Outputs: constant true, constant false, an input, a complemented input.
        let src = "aag 1 1 0 4 0\n2\n1\n0\n2\n3\ni0 a\n";
        let c = parse(src.as_bytes(), "t").unwrap();
        assert_eq!(c.eval_assignment(&[true]), vec![true, false, true, false]);
        assert_eq!(c.eval_assignment(&[false]), vec![true, false, false, true]);
    }

    #[test]
    fn forward_references_allowed_in_ascii() {
        let src = "aag 4 2 0 1 2\n2\n4\n8\n8 6 2\n6 2 4\n";
        let c = parse(src.as_bytes(), "t").unwrap();
        // 6 = a&b; 8 = 6&a = a&b.
        assert_eq!(c.eval_assignment(&[true, true]), vec![true]);
        assert_eq!(c.eval_assignment(&[true, false]), vec![false]);
    }

    // --- Adversarial fixtures: untrusted bytes must yield typed errors.

    #[test]
    fn latches_rejected() {
        let src = "aag 3 1 1 1 0\n2\n4 2\n4\n";
        match parse(src.as_bytes(), "t") {
            Err(IoError::Parse { line: 1, message }) => assert!(message.contains("latch")),
            other => panic!("expected latch rejection, got {other:?}"),
        }
    }

    #[test]
    fn oversized_header_rejected_before_allocation() {
        let m = MAX_VARS + 1;
        let src = format!("aag {m} {m} 0 0 0\n");
        assert!(matches!(parse(src.as_bytes(), "t"), Err(IoError::Parse { line: 1, .. })));
        // Binary input bomb: inputs are implicit, so the cap must fire.
        let i = MAX_IMPORT_INPUTS + 1;
        let src = format!("aig {} {i} 0 0 0\n", i + 1);
        assert!(matches!(parse(src.as_bytes(), "t"), Err(IoError::Parse { line: 1, .. })));
        // I + A > M is inconsistent.
        let src = "aag 2 2 0 0 2\n";
        assert!(matches!(parse(src.as_bytes(), "t"), Err(IoError::Parse { line: 1, .. })));
    }

    #[test]
    fn truncated_ascii_rejected() {
        let src = "aag 3 2 0 1 1\n2\n4\n6\n";
        assert!(matches!(parse(src.as_bytes(), "t"), Err(IoError::Parse { .. })));
    }

    #[test]
    fn truncated_binary_rejected() {
        let c = bench_format::parse(GATES, "gates").unwrap();
        let full = write_binary(&c).unwrap();
        // Find the start of the AND-delta section (after the header line
        // and one line per output): cutting one byte past it truncates the
        // mandatory deltas. Cutting only the trailing symbol table would be
        // legal, so the cut must land before it.
        let mut newlines = 0usize;
        let mut delta_start = 0usize;
        for (i, &b) in full.iter().enumerate() {
            if b == b'\n' {
                newlines += 1;
                if newlines == 1 + c.outputs().len() {
                    delta_start = i + 1;
                    break;
                }
            }
        }
        for cut in [3, 10, delta_start + 1] {
            let err = parse(&full[..cut], "t").unwrap_err();
            assert!(
                matches!(err, IoError::Binary { .. } | IoError::Parse { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn binary_delta_underflow_rejected() {
        // One AND (lhs 4) claiming rhs0 delta 0 (self-reference) or a
        // delta larger than lhs.
        for bad in [&[0x00u8, 0x00][..], &[0x7f, 0x00]] {
            let mut bytes = b"aig 2 1 0 1 1\n4\n".to_vec();
            bytes.extend_from_slice(bad);
            assert!(matches!(parse(&bytes, "t"), Err(IoError::Binary { .. })));
        }
    }

    #[test]
    fn unterminated_varint_rejected() {
        let mut bytes = b"aig 2 1 0 0 1\n".to_vec();
        bytes.extend_from_slice(&[0x80; 8]);
        match parse(&bytes, "t") {
            Err(IoError::Binary { message, .. }) => {
                assert!(message.contains("overflow") || message.contains("truncated"))
            }
            other => panic!("expected binary error, got {other:?}"),
        }
    }

    #[test]
    fn undefined_literal_rejected() {
        let src = "aag 3 1 0 1 0\n2\n6\n";
        match parse(src.as_bytes(), "t") {
            Err(IoError::Parse { message, .. }) => assert!(message.contains("undefined")),
            other => panic!("expected undefined-literal error, got {other:?}"),
        }
    }

    #[test]
    fn redefined_variable_rejected() {
        let src = "aag 3 1 0 1 2\n2\n4\n4 2 2\n4 2 2\n";
        assert!(matches!(parse(src.as_bytes(), "t"), Err(IoError::Parse { .. })));
    }

    #[test]
    fn ascii_cycle_rejected() {
        let src = "aag 3 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n";
        match parse(src.as_bytes(), "t") {
            Err(IoError::Parse { message, .. }) => assert!(message.contains("cycle")),
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_rejected_not_panicking() {
        for bytes in [
            &b"\x00\x01\x02\x03"[..],
            b"aig",
            b"aag 1 2 3\n",
            b"aag x y z w v\n",
            b"aig 1 0 0 0 1\n\xff\xff",
        ] {
            assert!(parse(bytes, "t").is_err());
        }
    }

    #[test]
    fn symbol_table_out_of_range_rejected() {
        let src = "aag 1 1 0 1 0\n2\n2\ni5 ghost\n";
        assert!(matches!(parse(src.as_bytes(), "t"), Err(IoError::Parse { .. })));
    }

    #[test]
    fn names_preserved_through_round_trip() {
        let c = bench_format::parse(GATES, "gates").unwrap();
        let back = parse(&write_binary(&c).unwrap(), "x").unwrap();
        let names: Vec<_> =
            back.inputs().iter().map(|&i| back.node(i).name().unwrap().to_string()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(back.output_name(0), Some("y"));
        assert_eq!(back.output_name(2), Some("w"));
        assert_eq!(back.name(), "gates");
    }
}
