//! Fork-join parallelism primitives for the `sft` workspace.
//!
//! The workspace's two hot paths — candidate-cone scoring in resynthesis
//! and fault-simulation campaigns — are embarrassingly parallel, but the
//! build environment vendors no external crates, so this crate provides
//! the minimal substrate on plain `std::thread`:
//!
//! - [`Jobs`] — the workspace-wide thread-count knob (the CLI's `--jobs`).
//!   `Jobs::serial()` restores the exact single-threaded execution order;
//!   [`Jobs::all_cores`] uses every available core.
//! - [`parallel_map`] — an order-preserving parallel map over a slice with
//!   atomic work stealing. Results come back in input order, so a
//!   deterministic sequential reduction over them is deterministic at any
//!   thread count.
//! - [`derive_seed`] — counter-based RNG stream derivation (SplitMix64
//!   finalizer). Engines derive the RNG stream of pattern block `b` as a
//!   pure function of `(seed, b)`, which makes randomized campaigns
//!   bit-identical at any thread count: a worker simulating block `b`
//!   regenerates exactly the patterns the single-threaded loop would have
//!   drawn, regardless of which other blocks run concurrently.
//!
//! Determinism contract: everything built on this crate must produce
//! bit-identical results at `--jobs 1` and `--jobs N`. [`parallel_map`]
//! guarantees order, [`derive_seed`] guarantees patterns; callers must
//! merge worker results in input order (never in completion order).
//!
//! # Examples
//!
//! ```
//! use sft_par::{parallel_map, Jobs};
//!
//! let squares = parallel_map(Jobs::new(4), &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]); // input order, any thread count
//! ```

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The number of worker threads an engine may use.
///
/// `Jobs` is the workspace-wide `--jobs` knob: every parallel engine takes
/// one and promises bit-identical results at any value. [`Jobs::serial`]
/// (the `Default`) additionally restores the exact single-threaded
/// execution *order* — no worker threads are spawned at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// Exactly one worker: no threads are spawned, work runs inline in the
    /// caller's deterministic order.
    pub fn serial() -> Self {
        Jobs(NonZeroUsize::MIN)
    }

    /// One worker per available core (at least one). Falls back to serial
    /// when the platform cannot report its parallelism.
    pub fn all_cores() -> Self {
        Jobs(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// `n` workers; `0` means [`all_cores`](Self::all_cores) (the CLI
    /// convention for `--jobs 0`).
    pub fn new(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) => Jobs(n),
            None => Jobs::all_cores(),
        }
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// Whether this is the inline, no-threads configuration.
    pub fn is_serial(self) -> bool {
        self.0.get() == 1
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::serial()
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::str::FromStr for Jobs {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "all" | "0" => Ok(Jobs::all_cores()),
            other => other
                .parse::<usize>()
                .map(Jobs::new)
                .map_err(|_| format!("bad job count {other:?} (use a number, 0 or \"all\")")),
        }
    }
}

/// Derives the seed of an independent RNG stream from a base seed and a
/// stream index (SplitMix64 finalizer over the pair).
///
/// Used by the campaign engines to give pattern block `b` the stream
/// `derive_seed(seed, b)`: the patterns of a block become a pure function
/// of the configuration seed and the block index, independent of thread
/// count, fault-drop history and every other block.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-preserving parallel map: applies `f` to every element of `items`
/// on up to `jobs` scoped worker threads and returns the results **in
/// input order**.
///
/// Work is distributed by atomic index stealing, so uneven per-item cost
/// balances automatically. With `jobs` serial (or one item), no thread is
/// spawned and `f` runs inline left to right — the exact sequential order.
/// `f` receives the item index alongside the item so callers can label
/// work or derive per-item RNG streams.
///
/// # Panics
///
/// Propagates the first panic of any worker (after all workers finish).
pub fn parallel_map<T, R, F>(jobs: Jobs, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.get().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("every index is produced exactly once")).collect()
}

/// A bounded admission gate: at most `capacity` permits are outstanding at
/// once. The service layer uses one on top of the [`Jobs`] knob to bound
/// accepted-but-unfinished work — when [`try_acquire`](Self::try_acquire)
/// returns `None` the caller *sheds load* (rejects the request with an
/// explicit outcome) instead of queueing unboundedly.
///
/// Permits are RAII: dropping an [`AdmissionPermit`] releases its slot and
/// wakes one blocked [`acquire`](Self::acquire) caller. The gate is
/// poison-tolerant — a thread that panics while holding the internal lock
/// (impossible through this API, but cheap to defend) does not wedge
/// admission for everyone else.
#[derive(Debug)]
pub struct Admission {
    capacity: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    /// A gate admitting at most `capacity` concurrent holders (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Admission { capacity: capacity.max(1), in_flight: Mutex::new(0), freed: Condvar::new() }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Permits currently outstanding.
    pub fn in_flight(&self) -> usize {
        *self.lock()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.in_flight.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Takes a permit if one is free; `None` means the gate is saturated
    /// and the caller should shed the request.
    pub fn try_acquire(&self) -> Option<AdmissionPermit<'_>> {
        let mut held = self.lock();
        if *held >= self.capacity {
            return None;
        }
        *held += 1;
        Some(AdmissionPermit { gate: self })
    }

    /// Blocks until a permit is free. Used by worker pools that *are* the
    /// bounded resource; front doors should prefer
    /// [`try_acquire`](Self::try_acquire) + shedding.
    pub fn acquire(&self) -> AdmissionPermit<'_> {
        let mut held = self.lock();
        while *held >= self.capacity {
            held = self.freed.wait(held).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        *held += 1;
        AdmissionPermit { gate: self }
    }

    fn release(&self) {
        let mut held = self.lock();
        *held = held.saturating_sub(1);
        drop(held);
        self.freed.notify_one();
    }
}

/// An outstanding [`Admission`] slot; dropping it frees the slot.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_constructors() {
        assert!(Jobs::serial().is_serial());
        assert_eq!(Jobs::serial(), Jobs::default());
        assert_eq!(Jobs::new(3).get(), 3);
        assert_eq!(Jobs::new(0), Jobs::all_cores());
        assert!(Jobs::all_cores().get() >= 1);
    }

    #[test]
    fn jobs_parses() {
        assert_eq!("4".parse::<Jobs>().unwrap().get(), 4);
        assert_eq!("all".parse::<Jobs>().unwrap(), Jobs::all_cores());
        assert_eq!("0".parse::<Jobs>().unwrap(), Jobs::all_cores());
        assert!("x".parse::<Jobs>().is_err());
        assert_eq!(Jobs::new(2).to_string(), "2");
    }

    #[test]
    fn map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = parallel_map(Jobs::new(jobs), &items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn map_passes_indices() {
        let items = vec!["a"; 50];
        let got = parallel_map(Jobs::new(4), &items, |i, _| i);
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(Jobs::new(8), &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(Jobs::new(8), &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
        // Stream 0 must not collapse to the raw seed.
        assert_ne!(derive_seed(42, 0), 42);
    }

    #[test]
    fn admission_bounds_outstanding_permits() {
        let gate = Admission::new(2);
        assert_eq!(gate.capacity(), 2);
        let a = gate.try_acquire().expect("slot 1");
        let b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "saturated gate must shed");
        assert_eq!(gate.in_flight(), 2);
        drop(a);
        let c = gate.try_acquire().expect("freed slot is reusable");
        assert_eq!(gate.in_flight(), 2);
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn admission_capacity_zero_is_clamped_to_one() {
        let gate = Admission::new(0);
        assert_eq!(gate.capacity(), 1);
        let permit = gate.try_acquire().expect("one slot");
        assert!(gate.try_acquire().is_none());
        drop(permit);
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let gate = Admission::new(1);
        let permit = gate.acquire();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let _p = gate.acquire();
                true
            });
            // Give the waiter time to block, then free the slot.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(permit);
            assert!(waiter.join().expect("waiter finishes"));
        });
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn admission_survives_panicking_holders() {
        let gate = Admission::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = gate.acquire();
            panic!("holder dies");
        }));
        assert!(result.is_err());
        // The permit was released during unwind; the gate is not wedged.
        assert_eq!(gate.in_flight(), 0);
        drop(gate.try_acquire().expect("slot free after panic"));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_propagates_worker_panics() {
        let items: Vec<u32> = (0..64).collect();
        parallel_map(Jobs::new(4), &items, |_, &x| {
            assert!(x != 63, "boom");
            x
        });
    }
}
