//! Reduced ordered binary decision diagrams (ROBDDs) and combinational
//! equivalence checking.
//!
//! The resynthesis procedures of the paper replace subcircuits by comparison
//! units; this crate is the exactness net around those edits. Every
//! transformation in the workspace can be (and, in the test suites, is)
//! verified by building BDDs for the original and modified circuits in a
//! shared manager and comparing node references.
//!
//! The manager is hash-consed without complement edges; a configurable node
//! cap turns pathological blowups into an error instead of memory
//! exhaustion.
//!
//! # Examples
//!
//! ```
//! use sft_bdd::Manager;
//!
//! let mut m = Manager::new();
//! let a = m.var(0)?;
//! let b = m.var(1)?;
//! let ab = m.and(a, b)?;
//! let ba = m.and(b, a)?;
//! assert_eq!(ab, ba); // hash-consing makes equivalence a pointer check
//! # Ok::<(), sft_bdd::BddError>(())
//! ```

mod bridge;
mod manager;

pub use bridge::{
    circuit_bdds, circuit_bdds_budgeted, circuit_node_bdds_budgeted, circuit_node_bdds_ordered,
    dfs_input_order, equivalent, equivalent_with_manager, equivalent_with_manager_budgeted,
    gate_bdd, CheckResult,
};
pub use manager::{BddError, BddRef, Manager, DEFAULT_NODE_LIMIT};
