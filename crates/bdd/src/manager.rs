use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiply-xor hasher (FxHash-style) for the manager's tables.
///
/// The unique table and operation cache are the hottest maps in the whole
/// pipeline — every `mk`/`ite` probes them — and their keys are tiny tuples
/// of `u32`s, the worst case for SipHash's per-call setup cost. This hasher
/// folds each word in with a rotate-xor-multiply step instead. It is *not*
/// DoS-resistant, which is fine for interned node indices.
///
/// Hash quality only affects bucket placement, never lookup results, and no
/// code iterates these maps, so swapping the hasher cannot change node
/// creation order or any published result.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A reference to a BDD node inside a [`Manager`].
///
/// References are only meaningful within the manager that produced them.
/// Because the manager hash-conses, two functions are equal **iff** their
/// references are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false function.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true function.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this is one of the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

impl fmt::Display for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BddRef::FALSE => write!(f, "⊥"),
            BddRef::TRUE => write!(f, "⊤"),
            BddRef(i) => write!(f, "b{i}"),
        }
    }
}

/// Errors produced by BDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The manager exceeded its node cap (BDD blowup).
    NodeLimit(usize),
    /// Construction was interrupted by an exhausted effort budget
    /// (deadline, step budget, or cooperative cancellation).
    Interrupted(sft_budget::Exhausted),
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit(n) => write!(f, "bdd node limit of {n} nodes exceeded"),
            BddError::Interrupted(e) => write!(f, "bdd construction interrupted: {e}"),
        }
    }
}

impl From<sft_budget::Exhausted> for BddError {
    fn from(e: sft_budget::Exhausted) -> Self {
        BddError::Interrupted(e)
    }
}

impl std::error::Error for BddError {}

#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// Node cap used by [`Manager::new`].
pub const DEFAULT_NODE_LIMIT: usize = 4_000_000;

/// A hash-consed ROBDD manager with an `ite`-based operation core.
///
/// Variables are identified by `u32` indices; the variable order is the
/// numeric order of those indices.
///
/// # Examples
///
/// ```
/// use sft_bdd::{BddRef, Manager};
///
/// let mut m = Manager::new();
/// let x = m.var(0)?;
/// let nx = m.not(x)?;
/// assert_eq!(m.or(x, nx)?, BddRef::TRUE);
/// assert_eq!(m.and(x, nx)?, BddRef::FALSE);
/// # Ok::<(), sft_bdd::BddError>(())
/// ```
pub struct Manager {
    nodes: Vec<Node>,
    unique: FxHashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: FxHashMap<(BddRef, BddRef, BddRef), BddRef>,
    node_limit: usize,
    generation: u64,
}

impl fmt::Debug for Manager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Manager")
            .field("nodes", &self.nodes.len())
            .field("node_limit", &self.node_limit)
            .finish()
    }
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates a manager with the default node cap (4M nodes).
    pub fn new() -> Self {
        Self::with_node_limit(DEFAULT_NODE_LIMIT)
    }

    /// Creates a manager that errors with [`BddError::NodeLimit`] once it
    /// holds more than `node_limit` nodes.
    pub fn with_node_limit(node_limit: usize) -> Self {
        Manager {
            nodes: vec![
                Node { var: TERMINAL_VAR, lo: BddRef::FALSE, hi: BddRef::FALSE },
                Node { var: TERMINAL_VAR, lo: BddRef::TRUE, hi: BddRef::TRUE },
            ],
            unique: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            node_limit,
            generation: 0,
        }
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// How many times [`Manager::compact`] has run. References obtained
    /// under an older generation and not passed through a `compact` call are
    /// invalid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Garbage-collects the manager: keeps only the nodes reachable from
    /// `keep` (plus the two terminals), renumbers them densely, rewrites the
    /// references in `keep` in place, rebuilds the unique table, and clears
    /// the operation cache. Bumps [`Manager::generation`].
    ///
    /// Every reference **not** in `keep` is invalidated; long-running
    /// callers that re-verify a circuit pass-by-pass use this between passes
    /// to keep the unique/`ite` tables bounded by the live working set
    /// instead of the whole run's history.
    pub fn compact(&mut self, keep: &mut [BddRef]) {
        let mut live = vec![false; self.nodes.len()];
        live[0] = true;
        live[1] = true;
        let mut stack: Vec<u32> = keep.iter().map(|r| r.0).collect();
        while let Some(i) = stack.pop() {
            if live[i as usize] {
                continue;
            }
            live[i as usize] = true;
            let n = self.nodes[i as usize];
            stack.push(n.lo.0);
            stack.push(n.hi.0);
        }
        // `mk` pushes a node only after both children exist, so every child
        // index is smaller than its parent's and one ascending pass remaps
        // children before they are read.
        let mut remap: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        let mut nodes: Vec<Node> = Vec::with_capacity(live.iter().filter(|&&l| l).count());
        let mut unique = FxHashMap::default();
        for (i, node) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let r = BddRef(nodes.len() as u32);
            remap[i] = r.0;
            if node.var == TERMINAL_VAR {
                nodes.push(*node);
            } else {
                let lo = BddRef(remap[node.lo.0 as usize]);
                let hi = BddRef(remap[node.hi.0 as usize]);
                unique.insert((node.var, lo, hi), r);
                nodes.push(Node { var: node.var, lo, hi });
            }
        }
        for r in keep.iter_mut() {
            *r = BddRef(remap[r.0 as usize]);
        }
        self.nodes = nodes;
        self.unique = unique;
        self.ite_cache.clear();
        self.generation += 1;
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// The single-variable function `x_var`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node cap is hit
    /// (possible with very small caps).
    pub fn var(&mut self, var: u32) -> Result<BddRef, BddError> {
        self.mk(var, BddRef::FALSE, BddRef::TRUE)
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> Result<BddRef, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return Ok(r);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(BddError::NodeLimit(self.node_limit));
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        Ok(r)
    }

    fn var_of(&self, f: BddRef) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        let n = self.nodes[f.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g + !f·h`. The core operation every
    /// other operator is built from.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the manager's node cap is hit.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, BddError> {
        // Terminal cases.
        if f == BddRef::TRUE {
            return Ok(g);
        }
        if f == BddRef::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(top, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Logical negation.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on blowup.
    pub fn not(&mut self, f: BddRef) -> Result<BddRef, BddError> {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Logical conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on blowup.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Logical disjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on blowup.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on blowup.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// Evaluates the function under a variable assignment (`assignment[i]`
    /// is the value of variable `i`; missing variables read as `false`).
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = if v { n.hi } else { n.lo };
        }
        cur == BddRef::TRUE
    }

    /// Number of satisfying assignments over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `f` mentions a variable `>= num_vars`.
    pub fn sat_count(&self, f: BddRef, num_vars: u32) -> u128 {
        fn walk(m: &Manager, f: BddRef, num_vars: u32, memo: &mut FxHashMap<BddRef, u128>) -> u128 {
            // Returns count / 2^(var_of(f) levels above): count over
            // remaining vars from var_of(f).
            if f == BddRef::FALSE {
                return 0;
            }
            if f == BddRef::TRUE {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = m.nodes[f.0 as usize];
            assert!(n.var < num_vars, "variable {} out of declared range", n.var);
            let lo = walk(m, n.lo, num_vars, memo);
            let hi = walk(m, n.hi, num_vars, memo);
            let lo_skip = m.var_of(n.lo).min(num_vars) - n.var - 1;
            let hi_skip = m.var_of(n.hi).min(num_vars) - n.var - 1;
            let c = (lo << lo_skip) + (hi << hi_skip);
            memo.insert(f, c);
            c
        }
        if f.is_const() {
            return if f == BddRef::TRUE { 1u128 << num_vars } else { 0 };
        }
        let mut memo = FxHashMap::default();
        let c = walk(self, f, num_vars, &mut memo);
        c << self.var_of(f).min(num_vars)
    }

    /// The set of variables the function depends on, ascending.
    pub fn support(&self, f: BddRef) -> Vec<u32> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.0 as usize];
            vars.insert(node.var);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        vars.into_iter().collect()
    }

    /// Existential quantification of variable `var`: `∃var. f`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on blowup.
    pub fn exists(&mut self, f: BddRef, var: u32) -> Result<BddRef, BddError> {
        let c0 = self.restrict(f, var, false)?;
        let c1 = self.restrict(f, var, true)?;
        self.or(c0, c1)
    }

    /// Universal quantification of variable `var`: `∀var. f`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on blowup.
    pub fn forall(&mut self, f: BddRef, var: u32) -> Result<BddRef, BddError> {
        let c0 = self.restrict(f, var, false)?;
        let c1 = self.restrict(f, var, true)?;
        self.and(c0, c1)
    }

    /// Restriction (cofactor): `f` with `var` fixed to `value`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on blowup.
    pub fn restrict(&mut self, f: BddRef, var: u32, value: bool) -> Result<BddRef, BddError> {
        if f.is_const() {
            return Ok(f);
        }
        let node = self.nodes[f.0 as usize];
        if node.var > var {
            return Ok(f); // var does not appear below the top
        }
        if node.var == var {
            return Ok(if value { node.hi } else { node.lo });
        }
        let lo = self.restrict(node.lo, var, value)?;
        let hi = self.restrict(node.hi, var, value)?;
        if lo == node.lo && hi == node.hi {
            return Ok(f);
        }
        self.mk(node.var, lo, hi)
    }

    /// One satisfying assignment (over the variables actually tested), or
    /// `None` if the function is unsatisfiable.
    pub fn any_sat(&self, f: BddRef) -> Option<Vec<(u32, bool)>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            if n.lo != BddRef::FALSE {
                path.push((n.var, false));
                cur = n.lo;
            } else {
                path.push((n.var, true));
                cur = n.hi;
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let m = Manager::new();
        assert_eq!(m.constant(true), BddRef::TRUE);
        assert_eq!(m.constant(false), BddRef::FALSE);
        assert!(BddRef::TRUE.is_const());
    }

    #[test]
    fn tautologies_and_contradictions() {
        let mut m = Manager::new();
        let x = m.var(0).unwrap();
        let nx = m.not(x).unwrap();
        assert_eq!(m.or(x, nx).unwrap(), BddRef::TRUE);
        assert_eq!(m.and(x, nx).unwrap(), BddRef::FALSE);
        assert_eq!(m.xor(x, x).unwrap(), BddRef::FALSE);
    }

    #[test]
    fn hash_consing_gives_canonical_forms() {
        let mut m = Manager::new();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        // (a & b) | c vs c | (b & a)
        let ab = m.and(a, b).unwrap();
        let lhs = m.or(ab, c).unwrap();
        let ba = m.and(b, a).unwrap();
        let rhs = m.or(c, ba).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = Manager::new();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let f = m.xor(a, b).unwrap();
        assert!(!m.eval(f, &[false, false]));
        assert!(m.eval(f, &[true, false]));
        assert!(m.eval(f, &[false, true]));
        assert!(!m.eval(f, &[true, true]));
    }

    #[test]
    fn sat_count_basics() {
        let mut m = Manager::new();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let f = m.and(a, b).unwrap();
        assert_eq!(m.sat_count(f, 2), 1);
        assert_eq!(m.sat_count(a, 2), 2);
        assert_eq!(m.sat_count(BddRef::TRUE, 3), 8);
        assert_eq!(m.sat_count(BddRef::FALSE, 3), 0);
        // f over a larger universe.
        assert_eq!(m.sat_count(f, 4), 4);
        // Function not mentioning var 0.
        assert_eq!(m.sat_count(b, 2), 2);
    }

    #[test]
    fn any_sat_finds_witness() {
        let mut m = Manager::new();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let nb = m.not(b).unwrap();
        let f = m.and(a, nb).unwrap();
        let w = m.any_sat(f).unwrap();
        assert!(w.contains(&(0, true)));
        assert!(w.contains(&(1, false)));
        assert!(m.any_sat(BddRef::FALSE).is_none());
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = Manager::with_node_limit(16);
        let vars: Vec<BddRef> = (0..8).map(|i| m.var(i).unwrap()).collect();
        let mut acc = vars[0];
        let mut hit = false;
        for &v in &vars[1..] {
            match m.xor(acc, v) {
                Ok(r) => acc = r,
                Err(BddError::NodeLimit(n)) => {
                    assert_eq!(n, 16);
                    hit = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(hit, "node limit should have been hit");
    }

    #[test]
    fn support_and_quantification() {
        let mut m = Manager::new();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        assert_eq!(m.support(f), vec![0, 1, 2]);
        assert_eq!(m.support(ab), vec![0, 1]);
        assert_eq!(m.support(BddRef::TRUE), Vec::<u32>::new());
        // ∃a. (ab + c) = b + c.
        let ex = m.exists(f, 0).unwrap();
        let bc = m.or(b, c).unwrap();
        assert_eq!(ex, bc);
        // ∀a. (ab + c) = c.
        let fa = m.forall(f, 0).unwrap();
        assert_eq!(fa, c);
        // Restriction: (ab + c)|b=1 = a + c.
        let r = m.restrict(f, 1, true).unwrap();
        let ac = m.or(a, c).unwrap();
        assert_eq!(r, ac);
        // Restricting an absent variable is the identity.
        assert_eq!(m.restrict(ab, 2, true).unwrap(), ab);
    }

    /// Compaction keeps exactly the reachable nodes, preserves semantics
    /// through the remapped references, and bumps the generation.
    #[test]
    fn compact_drops_garbage_and_preserves_semantics() {
        let mut m = Manager::new();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        // Garbage: functions we will not keep.
        let x = m.xor(a, b).unwrap();
        let _ = m.and(x, c).unwrap();
        let before = m.node_count();
        let truth: Vec<bool> =
            (0..8u32).map(|i| m.eval(f, &[i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1])).collect();
        let mut keep = [f];
        assert_eq!(m.generation(), 0);
        m.compact(&mut keep);
        assert_eq!(m.generation(), 1);
        assert!(m.node_count() < before, "garbage must be dropped");
        let after: Vec<bool> = (0..8u32)
            .map(|i| m.eval(keep[0], &[i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1]))
            .collect();
        assert_eq!(truth, after);
        // Hash-consing still canonical after the rebuild: reconstructing the
        // same function returns the kept reference.
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b).unwrap();
        let f2 = m.or(ab, c).unwrap();
        assert_eq!(f2, keep[0]);
    }

    /// Repeatedly building throwaway functions and compacting keeps the
    /// node count bounded by the live working set — the tables do not grow
    /// with the number of passes.
    #[test]
    fn compact_bounds_growth_over_repeated_passes() {
        let mut m = Manager::new();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let ab = m.and(a, b).unwrap();
        let mut keep = [ab];
        let mut baseline = None;
        for pass in 0..10 {
            // Per-pass scratch work that would otherwise accumulate.
            let vars: Vec<BddRef> = (2..10).map(|i| m.var(i).unwrap()).collect();
            let mut acc = keep[0];
            for &v in &vars {
                acc = m.xor(acc, v).unwrap();
            }
            m.compact(&mut keep);
            let count = m.node_count();
            match baseline {
                None => baseline = Some(count),
                Some(base) => assert_eq!(count, base, "pass {pass} leaked nodes"),
            }
        }
        assert_eq!(m.generation(), 10);
    }

    /// Exhaustive semantic check of ite on random 3-variable functions.
    #[test]
    fn ite_semantics_exhaustive_3vars() {
        let mut m = Manager::new();
        // Build BDDs for all 256 functions of 3 vars via minterm expansion.
        let mut fns = Vec::new();
        for bits in 0..=255u32 {
            let mut f = BddRef::FALSE;
            for minterm in 0..8u32 {
                if bits >> minterm & 1 == 1 {
                    let mut cube = BddRef::TRUE;
                    for v in 0..3u32 {
                        let x = m.var(v).unwrap();
                        let lit = if minterm >> v & 1 == 1 { x } else { m.not(x).unwrap() };
                        cube = m.and(cube, lit).unwrap();
                    }
                    f = m.or(f, cube).unwrap();
                }
            }
            fns.push(f);
        }
        // BDDs are canonical: all 256 refs are distinct.
        let mut sorted = fns.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256);
        // Spot-check ite semantics on a sample.
        for &(i, j, k) in &[(0b1010_1010u32, 0b1100_1100, 0b1111_0000), (17, 200, 99)] {
            let r = m.ite(fns[i as usize], fns[j as usize], fns[k as usize]).unwrap();
            let expect = (i & j) | (!i & k);
            assert_eq!(r, fns[(expect & 0xff) as usize]);
        }
    }
}
