//! Netlist → BDD bridge and combinational equivalence checking.

use crate::{BddError, BddRef, Manager};
use sft_budget::Budget;
use sft_netlist::{Circuit, GateKind};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// The circuits implement the same function on every output slot.
    Equivalent,
    /// The circuits differ; carries the index of the first differing output
    /// slot and a distinguishing input assignment (one bool per input, in
    /// input order).
    Different { output: usize, witness: Vec<bool> },
}

impl CheckResult {
    /// Whether the result is [`CheckResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, CheckResult::Equivalent)
    }
}

/// Builds a BDD for every primary output of `circuit` in `manager`.
///
/// Input `i` (in declaration order) is mapped to BDD variable `i`. Using the
/// same manager for several circuits with the same input arity makes their
/// output references directly comparable.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] if the manager's node cap is exceeded.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn circuit_bdds(manager: &mut Manager, circuit: &Circuit) -> Result<Vec<BddRef>, BddError> {
    circuit_bdds_budgeted(manager, circuit, &Budget::unlimited())
}

/// [`circuit_bdds`] with an effort budget checked at every circuit node, so
/// a deadline, step budget, or cancellation interrupts construction between
/// gates.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] on blowup and [`BddError::Interrupted`]
/// when the budget runs out.
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn circuit_bdds_budgeted(
    manager: &mut Manager,
    circuit: &Circuit,
    budget: &Budget,
) -> Result<Vec<BddRef>, BddError> {
    let refs = circuit_node_bdds_budgeted(manager, circuit, budget)?;
    Ok(circuit.outputs().iter().map(|o| refs[o.index()]).collect())
}

/// Builds a BDD for **every node** of `circuit` (not just the primary
/// outputs), indexed by node id. Input `i` in declaration order maps to BDD
/// variable `i`, exactly as in [`circuit_bdds`].
///
/// This is the substrate for incremental re-verification: a caller that
/// keeps the per-node references of a committed circuit can carry the
/// references of unchanged nodes across an edit and rebuild only the dirty
/// ones with [`gate_bdd`].
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] on blowup and [`BddError::Interrupted`]
/// when the budget runs out (checked once per node).
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn circuit_node_bdds_budgeted(
    manager: &mut Manager,
    circuit: &Circuit,
    budget: &Budget,
) -> Result<Vec<BddRef>, BddError> {
    let identity: Vec<u32> = (0..circuit.inputs().len() as u32).collect();
    circuit_node_bdds_ordered(manager, circuit, &identity, budget)
}

/// [`circuit_node_bdds_budgeted`] under an explicit variable order:
/// `var_order[i]` is the BDD variable assigned to input `i` (declaration
/// order). `var_order` must be a permutation of `0..inputs`.
///
/// Equivalence of references built through the same `(manager, var_order)`
/// pair is unaffected by the choice of order, but the *size* of the BDDs is
/// extremely order-sensitive; see [`dfs_input_order`] for a structural
/// heuristic. Callers comparing references across circuits (equivalence
/// checking, incremental re-verification) must use the same order for every
/// build in the manager.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] on blowup and [`BddError::Interrupted`]
/// when the budget runs out (checked once per node).
///
/// # Panics
///
/// Panics if the circuit is cyclic or `var_order` is shorter than the input
/// list.
pub fn circuit_node_bdds_ordered(
    manager: &mut Manager,
    circuit: &Circuit,
    var_order: &[u32],
    budget: &Budget,
) -> Result<Vec<BddRef>, BddError> {
    let order = circuit.topo_order().expect("combinational circuit");
    let mut refs: Vec<BddRef> = vec![BddRef::FALSE; circuit.len()];
    let input_var: std::collections::HashMap<_, _> =
        circuit.inputs().iter().enumerate().map(|(i, &id)| (id, var_order[i])).collect();
    for id in order {
        budget.check()?;
        let node = circuit.node(id);
        let r = match node.kind() {
            GateKind::Input => manager.var(input_var[&id])?,
            kind => {
                let fanins: Vec<BddRef> = node.fanins().iter().map(|f| refs[f.index()]).collect();
                gate_bdd(manager, kind, &fanins)?
            }
        };
        refs[id.index()] = r;
    }
    Ok(refs)
}

/// A structural variable order for [`circuit_node_bdds_ordered`]: inputs are
/// numbered in the order a depth-first walk from the primary outputs first
/// reaches them, with unreachable inputs appended in declaration order.
/// Returns `var_order[i]` = BDD variable of input `i` (declaration order).
///
/// Depth-first discovery keeps topologically related inputs adjacent in the
/// order, which is the classic static heuristic (Malik et al., ICCAD'88) for
/// small circuit BDDs: a ripple-carry adder interleaves `a_i`/`b_i` (linear
/// instead of exponential BDDs) and a mux tree lists the shared selects
/// before the data leaves (the decision-tree order).
pub fn dfs_input_order(circuit: &Circuit) -> Vec<u32> {
    let position: std::collections::HashMap<sft_netlist::NodeId, usize> =
        circuit.inputs().iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut var_order: Vec<u32> = vec![u32::MAX; circuit.inputs().len()];
    let mut next = 0u32;
    let mut seen = vec![false; circuit.len()];
    for &out in circuit.outputs() {
        // Explicit stack; fanins are pushed in reverse so the leftmost fanin
        // is explored (and its inputs numbered) first.
        let mut stack = vec![out];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            let node = circuit.node(id);
            if node.kind() == GateKind::Input {
                if let Some(&pos) = position.get(&id) {
                    var_order[pos] = next;
                    next += 1;
                }
                continue;
            }
            for &f in node.fanins().iter().rev() {
                if !seen[f.index()] {
                    stack.push(f);
                }
            }
        }
    }
    for slot in &mut var_order {
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
    }
    var_order
}

/// Builds the BDD of one gate from the BDDs of its fanins.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] on blowup.
///
/// # Panics
///
/// Panics on [`GateKind::Input`] — inputs are variables, not gates.
pub fn gate_bdd(
    manager: &mut Manager,
    kind: GateKind,
    fanins: &[BddRef],
) -> Result<BddRef, BddError> {
    Ok(match kind {
        GateKind::Input => panic!("gate_bdd called on an input node"),
        GateKind::Const0 => BddRef::FALSE,
        GateKind::Const1 => BddRef::TRUE,
        GateKind::Buf => fanins[0],
        GateKind::Not => manager.not(fanins[0])?,
        GateKind::And | GateKind::Nand => {
            let mut acc = BddRef::TRUE;
            for &f in fanins {
                acc = manager.and(acc, f)?;
            }
            if kind == GateKind::Nand {
                manager.not(acc)?
            } else {
                acc
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut acc = BddRef::FALSE;
            for &f in fanins {
                acc = manager.or(acc, f)?;
            }
            if kind == GateKind::Nor {
                manager.not(acc)?
            } else {
                acc
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = BddRef::FALSE;
            for &f in fanins {
                acc = manager.xor(acc, f)?;
            }
            if kind == GateKind::Xnor {
                manager.not(acc)?
            } else {
                acc
            }
        }
    })
}

/// Checks combinational equivalence of two circuits with the same numbers of
/// inputs and outputs (matched by position) using a caller-provided manager.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] on BDD blowup.
///
/// # Panics
///
/// Panics if the circuits disagree on the number of inputs or outputs, or if
/// either is cyclic.
pub fn equivalent_with_manager(
    manager: &mut Manager,
    a: &Circuit,
    b: &Circuit,
) -> Result<CheckResult, BddError> {
    equivalent_with_manager_budgeted(manager, a, b, &Budget::unlimited())
}

/// [`equivalent_with_manager`] with an effort budget; construction of either
/// side can be interrupted by a deadline, step budget, or cancellation.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] on BDD blowup and
/// [`BddError::Interrupted`] when the budget runs out.
///
/// # Panics
///
/// Same as [`equivalent_with_manager`].
pub fn equivalent_with_manager_budgeted(
    manager: &mut Manager,
    a: &Circuit,
    b: &Circuit,
    budget: &Budget,
) -> Result<CheckResult, BddError> {
    assert_eq!(a.inputs().len(), b.inputs().len(), "input arity mismatch");
    assert_eq!(a.outputs().len(), b.outputs().len(), "output arity mismatch");
    let fa = circuit_bdds_budgeted(manager, a, budget)?;
    let fb = circuit_bdds_budgeted(manager, b, budget)?;
    for (slot, (&x, &y)) in fa.iter().zip(&fb).enumerate() {
        if x != y {
            let diff = manager.xor(x, y)?;
            let partial = manager.any_sat(diff).expect("differing functions differ somewhere");
            let mut witness = vec![false; a.inputs().len()];
            for (var, val) in partial {
                witness[var as usize] = val;
            }
            return Ok(CheckResult::Different { output: slot, witness });
        }
    }
    Ok(CheckResult::Equivalent)
}

/// Convenience wrapper around [`equivalent_with_manager`] using a fresh
/// default manager.
///
/// # Errors
///
/// Returns [`BddError::NodeLimit`] on BDD blowup.
///
/// # Panics
///
/// Same as [`equivalent_with_manager`].
///
/// # Examples
///
/// ```
/// use sft_bdd::equivalent;
/// use sft_netlist::bench_format::parse;
///
/// let a = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "a")?;
/// let b = parse(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nnb = NOT(b)\ny = OR(na, nb)\n",
///     "b",
/// )?;
/// assert!(equivalent(&a, &b)?.is_equivalent());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn equivalent(a: &Circuit, b: &Circuit) -> Result<CheckResult, BddError> {
    equivalent_with_manager(&mut Manager::new(), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;
    use sft_netlist::{Circuit, GateKind};

    #[test]
    fn de_morgan_equivalence() {
        let a = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n", "a").unwrap();
        let b = parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nnb = NOT(b)\ny = AND(na, nb)\n",
            "b",
        )
        .unwrap();
        assert!(equivalent(&a, &b).unwrap().is_equivalent());
    }

    #[test]
    fn difference_produces_witness() {
        let a = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "a").unwrap();
        let b = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "b").unwrap();
        match equivalent(&a, &b).unwrap() {
            CheckResult::Different { output, witness } => {
                assert_eq!(output, 0);
                assert_ne!(a.eval_assignment(&witness), b.eval_assignment(&witness));
            }
            CheckResult::Equivalent => panic!("AND and OR are not equivalent"),
        }
    }

    #[test]
    fn multi_output_mismatch_reports_slot() {
        let a = parse("INPUT(a)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = BUF(a)\ny2 = BUF(a)\n", "a").unwrap();
        let b = parse("INPUT(a)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = BUF(a)\ny2 = NOT(a)\n", "b").unwrap();
        match equivalent(&a, &b).unwrap() {
            CheckResult::Different { output, .. } => assert_eq!(output, 1),
            CheckResult::Equivalent => panic!("should differ"),
        }
    }

    #[test]
    fn xor_parity_tree_vs_wide_gate() {
        let mut a = Circuit::new("wide");
        let ins: Vec<_> = (0..5).map(|i| a.add_input(format!("i{i}"))).collect();
        let g = a.add_gate(GateKind::Xor, ins).unwrap();
        a.add_output(g, "y");

        let mut b = Circuit::new("tree");
        let ins: Vec<_> = (0..5).map(|i| b.add_input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = b.add_gate(GateKind::Xor, vec![acc, x]).unwrap();
        }
        b.add_output(acc, "y");
        assert!(equivalent(&a, &b).unwrap().is_equivalent());
    }

    #[test]
    fn constants_in_circuits() {
        let a = parse("INPUT(a)\nOUTPUT(y)\nk = CONST1\ny = AND(a, k)\n", "a").unwrap();
        let b = parse("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "b").unwrap();
        assert!(equivalent(&a, &b).unwrap().is_equivalent());
    }

    #[test]
    fn budget_interrupts_construction() {
        use sft_budget::{Budget, CancelFlag, Exhausted};
        let c = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "c").unwrap();

        let expired = Budget::unlimited().with_time_limit(std::time::Duration::ZERO);
        let mut m = Manager::new();
        assert_eq!(
            circuit_bdds_budgeted(&mut m, &c, &expired),
            Err(BddError::Interrupted(Exhausted::Deadline))
        );

        let flag = CancelFlag::new();
        flag.cancel();
        let cancelled = Budget::unlimited().with_cancel(flag);
        let mut m = Manager::new();
        assert_eq!(
            equivalent_with_manager_budgeted(&mut m, &c, &c, &cancelled),
            Err(BddError::Interrupted(Exhausted::Cancelled))
        );

        // An unlimited budget changes nothing.
        let mut m = Manager::new();
        let refs = circuit_bdds_budgeted(&mut m, &c, &Budget::unlimited()).unwrap();
        assert_eq!(refs.len(), 1);
    }

    /// Random-circuit cross-validation: BDD equivalence agrees with
    /// exhaustive simulation on small random circuits.
    #[test]
    fn agrees_with_exhaustive_simulation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let mut c = Circuit::new(format!("r{trial}"));
            let ins: Vec<_> = (0..4).map(|i| c.add_input(format!("i{i}"))).collect();
            let mut pool = ins.clone();
            for _ in 0..8 {
                let kinds = [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Xor];
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let x = pool[rng.gen_range(0..pool.len())];
                let y = pool[rng.gen_range(0..pool.len())];
                let g = c.add_gate(kind, vec![x, y]).unwrap();
                pool.push(g);
            }
            let out = *pool.last().unwrap();
            c.add_output(out, "y");

            // A mutated copy: flip one gate kind.
            let mut d = c.clone();
            let victim = out;
            let kind = d.node(victim).kind();
            let fanins = d.node(victim).fanins().to_vec();
            d.rewire(victim, kind.complemented().unwrap(), fanins).unwrap();

            let same = equivalent(&c, &d).unwrap().is_equivalent();
            let mut sim_same = true;
            for m in 0..16u32 {
                let a: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
                if c.eval_assignment(&a) != d.eval_assignment(&a) {
                    sim_same = false;
                    break;
                }
            }
            assert_eq!(same, sim_same, "trial {trial}");
        }
    }
}
