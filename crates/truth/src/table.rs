use std::fmt;

/// Maximum number of inputs a [`TruthTable`] supports.
///
/// `2^7 = 128` minterms fit exactly in a `u128`.
pub const MAX_INPUTS: usize = 7;

/// Error type for truth-table construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruthError {
    /// The requested number of inputs exceeds [`MAX_INPUTS`].
    TooManyInputs(usize),
    /// A minterm index was out of range for the number of inputs.
    MintermOutOfRange {
        /// The offending minterm index.
        minterm: u64,
        /// The number of inputs of the table (minterms range over `2^inputs`).
        inputs: usize,
    },
    /// A permutation had the wrong length or was not a bijection.
    BadPermutation,
    /// An input index was out of range.
    InputOutOfRange {
        /// The offending input index.
        input: usize,
        /// The number of inputs of the table.
        inputs: usize,
    },
}

impl fmt::Display for TruthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthError::TooManyInputs(n) => {
                write!(f, "function has {n} inputs, more than the supported {MAX_INPUTS}")
            }
            TruthError::MintermOutOfRange { minterm, inputs } => {
                write!(f, "minterm {minterm} out of range for a {inputs}-input function")
            }
            TruthError::BadPermutation => write!(f, "permutation is not a bijection on the inputs"),
            TruthError::InputOutOfRange { input, inputs } => {
                write!(f, "input index {input} out of range for a {inputs}-input function")
            }
        }
    }
}

impl std::error::Error for TruthError {}

/// A dense truth table for a Boolean function of up to [`MAX_INPUTS`] inputs.
///
/// Bit `m` of [`bits`](Self::bits) holds the function value on minterm `m`.
/// Input 0 is the **most significant** bit of a minterm, matching the paper's
/// convention that `x_1` is the MSB of the decimal value of a minterm.
///
/// # Examples
///
/// ```
/// use sft_truth::TruthTable;
///
/// let xor2 = TruthTable::from_fn(2, |m| m.count_ones() % 2 == 1);
/// assert_eq!(xor2.on_set().collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    inputs: u8,
    bits: u128,
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} inputs, on-set {{", self.inputs)?;
        let mut first = true;
        for m in self.on_set() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
            first = false;
        }
        write!(f, "}})")
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in (0..self.size()).rev() {
            write!(f, "{}", u8::from(self.value(m)))?;
        }
        Ok(())
    }
}

impl TruthTable {
    /// The constant-0 function of `inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_INPUTS`.
    pub fn zero(inputs: usize) -> Self {
        assert!(inputs <= MAX_INPUTS, "at most {MAX_INPUTS} inputs supported");
        TruthTable { inputs: inputs as u8, bits: 0 }
    }

    /// The constant-1 function of `inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_INPUTS`.
    pub fn one(inputs: usize) -> Self {
        Self::zero(inputs).complement()
    }

    /// The projection function returning input `input` directly.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_INPUTS` or `input >= inputs`.
    pub fn variable(inputs: usize, input: usize) -> Self {
        assert!(input < inputs, "input index out of range");
        Self::from_fn(inputs, |m| m >> (inputs - 1 - input) & 1 == 1)
    }

    /// Builds a table by evaluating `f` on every minterm `0..2^inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_INPUTS`.
    pub fn from_fn(inputs: usize, mut f: impl FnMut(u64) -> bool) -> Self {
        let mut t = Self::zero(inputs);
        for m in 0..t.size() {
            if f(m) {
                t.bits |= 1u128 << m;
            }
        }
        t
    }

    /// Builds a table from an explicit on-set of decimal minterms.
    ///
    /// # Errors
    ///
    /// Returns [`TruthError::TooManyInputs`] if `inputs > MAX_INPUTS` and
    /// [`TruthError::MintermOutOfRange`] if any minterm is `>= 2^inputs`.
    pub fn from_minterms(inputs: usize, minterms: &[u64]) -> Result<Self, TruthError> {
        if inputs > MAX_INPUTS {
            return Err(TruthError::TooManyInputs(inputs));
        }
        let mut t = Self::zero(inputs);
        for &m in minterms {
            if m >= t.size() {
                return Err(TruthError::MintermOutOfRange { minterm: m, inputs });
            }
            t.bits |= 1u128 << m;
        }
        Ok(t)
    }

    /// Builds a table from a raw bit mask; bits above `2^inputs` are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_INPUTS`.
    pub fn from_bits(inputs: usize, bits: u128) -> Self {
        let mut t = Self::zero(inputs);
        t.bits = bits & t.full_mask();
        t
    }

    /// Number of inputs of the function.
    pub fn inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Number of minterms, `2^inputs`.
    pub fn size(&self) -> u64 {
        1u64 << self.inputs
    }

    /// The raw table as a bit mask (bit `m` = value on minterm `m`).
    pub fn bits(&self) -> u128 {
        self.bits
    }

    fn full_mask(&self) -> u128 {
        if self.inputs as usize == MAX_INPUTS {
            u128::MAX
        } else {
            (1u128 << self.size()) - 1
        }
    }

    /// Value of the function on decimal minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^inputs`.
    pub fn value(&self, m: u64) -> bool {
        assert!(m < self.size(), "minterm out of range");
        self.bits >> m & 1 == 1
    }

    /// Evaluates the function on an assignment; `assignment[0]` is `x_1`
    /// (the most significant bit of the minterm).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != inputs`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.inputs(), "assignment length mismatch");
        let mut m = 0u64;
        for &b in assignment {
            m = m << 1 | u64::from(b);
        }
        self.value(m)
    }

    /// Iterator over the on-set (minterms where the function is 1), ascending.
    pub fn on_set(&self) -> impl Iterator<Item = u64> + '_ {
        let size = self.size();
        let bits = self.bits;
        (0..size).filter(move |&m| bits >> m & 1 == 1)
    }

    /// Iterator over the off-set (minterms where the function is 0), ascending.
    pub fn off_set(&self) -> impl Iterator<Item = u64> + '_ {
        let size = self.size();
        let bits = self.bits;
        (0..size).filter(move |&m| bits >> m & 1 == 0)
    }

    /// Number of minterms in the on-set.
    pub fn on_count(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Whether the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Whether the function is constant 1.
    pub fn is_one(&self) -> bool {
        self.bits == self.full_mask()
    }

    /// The complement of the function.
    #[must_use]
    pub fn complement(&self) -> Self {
        TruthTable { inputs: self.inputs, bits: !self.bits & self.full_mask() }
    }

    /// Bitwise AND of two functions over the same inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.inputs, other.inputs, "input count mismatch");
        TruthTable { inputs: self.inputs, bits: self.bits & other.bits }
    }

    /// Bitwise OR of two functions over the same inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.inputs, other.inputs, "input count mismatch");
        TruthTable { inputs: self.inputs, bits: self.bits | other.bits }
    }

    /// Bitwise XOR of two functions over the same inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.inputs, other.inputs, "input count mismatch");
        TruthTable { inputs: self.inputs, bits: self.bits ^ other.bits }
    }

    /// Whether the function actually depends on input `input`.
    ///
    /// # Errors
    ///
    /// Returns [`TruthError::InputOutOfRange`] if `input >= inputs`.
    pub fn depends_on(&self, input: usize) -> Result<bool, TruthError> {
        let c0 = self.cofactor(input, false)?;
        let c1 = self.cofactor(input, true)?;
        Ok(c0 != c1)
    }

    /// The set of inputs the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.inputs()).filter(|&i| self.depends_on(i).expect("index in range")).collect()
    }

    /// Cofactor with respect to `input = value`, keeping the input count
    /// (the result no longer depends on `input`).
    ///
    /// # Errors
    ///
    /// Returns [`TruthError::InputOutOfRange`] if `input >= inputs`.
    pub fn cofactor(&self, input: usize, value: bool) -> Result<Self, TruthError> {
        if input >= self.inputs() {
            return Err(TruthError::InputOutOfRange { input, inputs: self.inputs() });
        }
        let bitpos = self.inputs() - 1 - input;
        let t = Self::from_fn(self.inputs(), |m| {
            let forced = if value { m | 1 << bitpos } else { m & !(1 << bitpos) };
            self.value(forced)
        });
        Ok(t)
    }

    /// Reorders the inputs: `perm[i]` is the original input placed at
    /// position `i` of the new function, so the new function `g` satisfies
    /// `g(x_0, .., x_{n-1}) = f(x_{perm^{-1}(0)}, ..)` — equivalently, new
    /// input `i` behaves like old input `perm[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`TruthError::BadPermutation`] if `perm` is not a permutation
    /// of `0..inputs`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sft_truth::TruthTable;
    ///
    /// // f = x1 (2 inputs). Swapping inputs gives g = x2.
    /// let f = TruthTable::variable(2, 0);
    /// let g = f.permute(&[1, 0])?;
    /// assert_eq!(g, TruthTable::variable(2, 1));
    /// # Ok::<(), sft_truth::TruthError>(())
    /// ```
    pub fn permute(&self, perm: &[usize]) -> Result<Self, TruthError> {
        let n = self.inputs();
        if perm.len() != n {
            return Err(TruthError::BadPermutation);
        }
        let mut seen = [false; MAX_INPUTS];
        for &p in perm {
            if p >= n || seen[p] {
                return Err(TruthError::BadPermutation);
            }
            seen[p] = true;
        }
        // New minterm bit i (MSB-first) comes from old input perm[i].
        let t = Self::from_fn(n, |m| {
            let mut old_m = 0u64;
            for (i, &p) in perm.iter().enumerate() {
                let bit = m >> (n - 1 - i) & 1;
                old_m |= bit << (n - 1 - p);
            }
            self.value(old_m)
        });
        Ok(t)
    }

    /// The function with input `input` complemented (reflecting the truth
    /// table along that axis).
    ///
    /// # Errors
    ///
    /// Returns [`TruthError::InputOutOfRange`] if `input >= inputs`.
    pub fn flip_input(&self, input: usize) -> Result<Self, TruthError> {
        if input >= self.inputs() {
            return Err(TruthError::InputOutOfRange { input, inputs: self.inputs() });
        }
        let bit = 1u64 << (self.inputs() - 1 - input);
        Ok(Self::from_fn(self.inputs(), |m| self.value(m ^ bit)))
    }

    /// Extends the function with `extra` fresh (ignored) inputs appended as
    /// least-significant minterm bits.
    ///
    /// # Errors
    ///
    /// Returns [`TruthError::TooManyInputs`] if the result would exceed
    /// [`MAX_INPUTS`] inputs.
    pub fn extend(&self, extra: usize) -> Result<Self, TruthError> {
        let n = self.inputs() + extra;
        if n > MAX_INPUTS {
            return Err(TruthError::TooManyInputs(n));
        }
        Ok(Self::from_fn(n, |m| self.value(m >> extra)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        let z = TruthTable::zero(3);
        assert!(z.is_zero());
        assert_eq!(z.on_count(), 0);
        let o = TruthTable::one(3);
        assert!(o.is_one());
        assert_eq!(o.on_count(), 8);
        assert_eq!(o.complement(), z);
    }

    #[test]
    fn max_width_table() {
        let o = TruthTable::one(MAX_INPUTS);
        assert!(o.is_one());
        assert_eq!(o.on_count(), 128);
        assert!(o.complement().is_zero());
    }

    #[test]
    fn variable_msb_convention() {
        // x1 of a 3-input function is 1 exactly on minterms with MSB set: 4..7.
        let x1 = TruthTable::variable(3, 0);
        assert_eq!(x1.on_set().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        let x3 = TruthTable::variable(3, 2);
        assert_eq!(x3.on_set().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn eval_matches_value() {
        let t = TruthTable::from_minterms(3, &[5]).unwrap();
        // 5 = 101 -> x1=1, x2=0, x3=1.
        assert!(t.eval(&[true, false, true]));
        assert!(!t.eval(&[true, false, false]));
    }

    #[test]
    fn from_minterms_rejects_out_of_range() {
        let err = TruthTable::from_minterms(2, &[4]).unwrap_err();
        assert_eq!(err, TruthError::MintermOutOfRange { minterm: 4, inputs: 2 });
        let err = TruthTable::from_minterms(9, &[]).unwrap_err();
        assert_eq!(err, TruthError::TooManyInputs(9));
    }

    #[test]
    fn boolean_ops() {
        let a = TruthTable::variable(2, 0);
        let b = TruthTable::variable(2, 1);
        assert_eq!(a.and(&b).on_set().collect::<Vec<_>>(), vec![3]);
        assert_eq!(a.or(&b).on_set().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(a.xor(&b).on_set().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn cofactor_and_support() {
        let a = TruthTable::variable(3, 0);
        let b = TruthTable::variable(3, 2);
        let f = a.and(&b);
        assert_eq!(f.support(), vec![0, 2]);
        assert!(!f.depends_on(1).unwrap());
        let c1 = f.cofactor(0, true).unwrap();
        assert_eq!(c1, b);
        let c0 = f.cofactor(0, false).unwrap();
        assert!(c0.is_zero());
        assert!(f.cofactor(3, true).is_err());
    }

    #[test]
    fn permute_round_trip() {
        // Paper example (Sec. 3.1): f2 is 1 on {1,5,6,9,10,14}; under the
        // reversal permutation the on-set becomes {5..10}.
        let f2 = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14]).unwrap();
        let g = f2.permute(&[3, 2, 1, 0]).unwrap();
        assert_eq!(g.on_set().collect::<Vec<_>>(), vec![5, 6, 7, 8, 9, 10]);
        // Applying the inverse permutation (reversal is an involution)
        // restores the original.
        assert_eq!(g.permute(&[3, 2, 1, 0]).unwrap(), f2);
    }

    #[test]
    fn permute_rejects_non_bijection() {
        let f = TruthTable::one(3);
        assert_eq!(f.permute(&[0, 0, 1]).unwrap_err(), TruthError::BadPermutation);
        assert_eq!(f.permute(&[0, 1]).unwrap_err(), TruthError::BadPermutation);
        assert_eq!(f.permute(&[0, 1, 3]).unwrap_err(), TruthError::BadPermutation);
    }

    #[test]
    fn extend_ignores_new_inputs() {
        let f = TruthTable::variable(2, 0);
        let g = f.extend(1).unwrap();
        assert_eq!(g.inputs(), 3);
        assert_eq!(g, TruthTable::variable(3, 0));
        assert!(TruthTable::one(5).extend(3).is_err());
    }

    #[test]
    fn flip_input_reflects_axis() {
        let x1 = TruthTable::variable(3, 0);
        let flipped = x1.flip_input(0).unwrap();
        assert_eq!(flipped, x1.complement());
        // Flipping twice restores.
        assert_eq!(flipped.flip_input(0).unwrap(), x1);
        // Flipping an independent input changes nothing.
        assert_eq!(x1.flip_input(2).unwrap(), x1);
        assert!(x1.flip_input(3).is_err());
    }

    #[test]
    fn display_is_msb_first() {
        let t = TruthTable::from_minterms(2, &[0]).unwrap();
        assert_eq!(t.to_string(), "0001");
    }
}
