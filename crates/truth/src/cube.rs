//! Cubes (product terms) and cube lists (sum-of-products covers).
//!
//! These are used to express comparison functions and the single-cube special
//! case of Sec. 3.2.2 of the paper, and by the greedy SOP extraction that
//! feeds the OR-of-comparison-units cover (Sec. 3.1).

use crate::{TruthError, TruthTable, MAX_INPUTS};
use std::fmt;

/// A literal polarity inside a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Literal {
    /// The input does not appear in the cube.
    DontCare,
    /// The input appears positively.
    Positive,
    /// The input appears negatively.
    Negative,
}

/// A product term over `inputs` inputs.
///
/// # Examples
///
/// ```
/// use sft_truth::{Cube, TruthTable};
///
/// // x1 * !x3 over 3 inputs.
/// let c = Cube::parse("1-0")?;
/// assert_eq!(c.literal_count(), 2);
/// assert!(c.to_table().eval(&[true, true, false]));
/// # Ok::<(), sft_truth::TruthError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    literals: Vec<Literal>,
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.literals {
            let c = match l {
                Literal::DontCare => '-',
                Literal::Positive => '1',
                Literal::Negative => '0',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl Cube {
    /// The universal cube (all don't-cares) over `inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_INPUTS`.
    pub fn universe(inputs: usize) -> Self {
        assert!(inputs <= MAX_INPUTS, "at most {MAX_INPUTS} inputs supported");
        Cube { literals: vec![Literal::DontCare; inputs] }
    }

    /// The cube containing the single minterm `m` (input 0 is MSB).
    ///
    /// # Errors
    ///
    /// Returns an error if `inputs > MAX_INPUTS` or `m >= 2^inputs`.
    pub fn from_minterm(inputs: usize, m: u64) -> Result<Self, TruthError> {
        if inputs > MAX_INPUTS {
            return Err(TruthError::TooManyInputs(inputs));
        }
        if m >= 1 << inputs {
            return Err(TruthError::MintermOutOfRange { minterm: m, inputs });
        }
        let literals =
            (0..inputs)
                .map(|i| {
                    if m >> (inputs - 1 - i) & 1 == 1 {
                        Literal::Positive
                    } else {
                        Literal::Negative
                    }
                })
                .collect();
        Ok(Cube { literals })
    }

    /// Parses a PLA-style cube string of `1`, `0` and `-` characters.
    ///
    /// # Errors
    ///
    /// Returns [`TruthError::TooManyInputs`] if the string is longer than
    /// [`MAX_INPUTS`], and [`TruthError::InputOutOfRange`] (carrying the
    /// character position) if any character is not `1`, `0` or `-`.
    pub fn parse(s: &str) -> Result<Self, TruthError> {
        if s.len() > MAX_INPUTS {
            return Err(TruthError::TooManyInputs(s.len()));
        }
        let mut literals = Vec::with_capacity(s.len());
        for (i, ch) in s.chars().enumerate() {
            literals.push(match ch {
                '-' => Literal::DontCare,
                '1' => Literal::Positive,
                '0' => Literal::Negative,
                _ => return Err(TruthError::InputOutOfRange { input: i, inputs: s.len() }),
            });
        }
        Ok(Cube { literals })
    }

    /// Number of inputs of the enclosing function.
    pub fn inputs(&self) -> usize {
        self.literals.len()
    }

    /// The literal for input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= inputs`.
    pub fn literal(&self, i: usize) -> Literal {
        self.literals[i]
    }

    /// Number of non-don't-care literals.
    pub fn literal_count(&self) -> usize {
        self.literals.iter().filter(|l| !matches!(l, Literal::DontCare)).count()
    }

    /// Whether minterm `m` is contained in the cube.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^inputs`.
    pub fn contains(&self, m: u64) -> bool {
        assert!(m < 1 << self.inputs(), "minterm out of range");
        let n = self.inputs();
        self.literals.iter().enumerate().all(|(i, l)| {
            let bit = m >> (n - 1 - i) & 1 == 1;
            match l {
                Literal::DontCare => true,
                Literal::Positive => bit,
                Literal::Negative => !bit,
            }
        })
    }

    /// Expands the cube into its truth table.
    pub fn to_table(&self) -> TruthTable {
        TruthTable::from_fn(self.inputs(), |m| self.contains(m))
    }

    /// Tries to drop literal `i`; returns the widened cube.
    ///
    /// # Panics
    ///
    /// Panics if `i >= inputs`.
    #[must_use]
    pub fn without_literal(&self, i: usize) -> Self {
        let mut c = self.clone();
        c.literals[i] = Literal::DontCare;
        c
    }
}

/// A list of cubes interpreted as a sum-of-products cover.
///
/// # Examples
///
/// ```
/// use sft_truth::{CubeList, TruthTable};
///
/// let f = TruthTable::from_minterms(3, &[3, 5, 6, 7])?; // majority
/// let cover = CubeList::from_table(&f);
/// assert_eq!(cover.to_table(), f);
/// # Ok::<(), sft_truth::TruthError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CubeList {
    cubes: Vec<Cube>,
}

impl CubeList {
    /// An empty cover (constant 0 over any number of inputs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts a greedy irredundant-ish cover from a truth table by
    /// expanding each uncovered minterm into a prime-ish cube (literals are
    /// dropped greedily while the cube stays inside the on-set).
    pub fn from_table(table: &TruthTable) -> Self {
        let mut cubes: Vec<Cube> = Vec::new();
        let inside = |c: &Cube| c.to_table().and(&table.complement()).is_zero();
        for m in table.on_set() {
            if cubes.iter().any(|c| c.contains(m)) {
                continue;
            }
            let mut cube = Cube::from_minterm(table.inputs(), m).expect("minterm in range");
            for i in 0..table.inputs() {
                let wider = cube.without_literal(i);
                if inside(&wider) {
                    cube = wider;
                }
            }
            cubes.push(cube);
        }
        CubeList { cubes }
    }

    /// Appends a cube to the cover.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the cover is empty (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total number of literals across all cubes.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Evaluates the cover into a truth table over `inputs` inputs taken from
    /// the first cube (or constant 0 over 0 inputs when empty).
    pub fn to_table(&self) -> TruthTable {
        match self.cubes.first() {
            None => TruthTable::zero(0),
            Some(first) => {
                let mut t = TruthTable::zero(first.inputs());
                for c in &self.cubes {
                    t = t.or(&c.to_table());
                }
                t
            }
        }
    }
}

impl FromIterator<Cube> for CubeList {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        CubeList { cubes: iter.into_iter().collect() }
    }
}

impl Extend<Cube> for CubeList {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        self.cubes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_parse_display_round_trip() {
        let c = Cube::parse("1-0").unwrap();
        assert_eq!(c.to_string(), "1-0");
        assert_eq!(c.literal_count(), 2);
        assert_eq!(c.literal(1), Literal::DontCare);
    }

    #[test]
    fn cube_parse_rejects_junk() {
        assert!(Cube::parse("1x0").is_err());
        assert!(Cube::parse("10101010").is_err());
    }

    #[test]
    fn cube_minterm_containment() {
        let c = Cube::from_minterm(3, 5).unwrap();
        assert_eq!(c.to_string(), "101");
        assert!(c.contains(5));
        assert!(!c.contains(4));
        assert_eq!(c.to_table().on_set().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn universe_contains_everything() {
        let u = Cube::universe(3);
        assert!((0..8).all(|m| u.contains(m)));
        assert_eq!(u.literal_count(), 0);
    }

    #[test]
    fn cover_round_trip_all_3_input_functions() {
        for bits in 0..=255u128 {
            let t = TruthTable::from_bits(3, bits);
            let cover = CubeList::from_table(&t);
            assert_eq!(cover.to_table().bits(), t.bits(), "cover mismatch for {bits:#x}");
        }
    }

    #[test]
    fn cover_of_single_cube_function_is_one_cube() {
        // x1 * x3 over 3 inputs (paper Sec. 3.2.2 single-prime-implicant case).
        let f = TruthTable::variable(3, 0).and(&TruthTable::variable(3, 2));
        let cover = CubeList::from_table(&f);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.cubes()[0].to_string(), "1-1");
    }
}
