//! Truth tables and cube utilities for small Boolean functions.
//!
//! This crate provides [`TruthTable`], a dense truth-table representation for
//! single-output Boolean functions of up to [`MAX_INPUTS`] (= 7) inputs,
//! packed into a `u128`. Seven inputs is exactly the range the resynthesis
//! procedures of Pomeranz & Reddy (DAC 1995) explore (the paper uses cone
//! input limits `K = 5..7`), so a fixed-width representation keeps every
//! operation branch-free and allocation-free.
//!
//! Bit `m` of the table is the value of the function on the input minterm
//! with decimal value `m`, where **input 0 is the most significant bit** of
//! the minterm — the same convention the paper uses (`x_1` is the MSB).
//!
//! # Examples
//!
//! ```
//! use sft_truth::TruthTable;
//!
//! // f(x1, x2) = x1 AND x2 — true only on minterm 3 (binary 11).
//! let and2 = TruthTable::from_minterms(2, &[3])?;
//! assert!(and2.eval(&[true, true]));
//! assert!(!and2.eval(&[true, false]));
//! assert_eq!(and2.on_set().collect::<Vec<_>>(), vec![3]);
//! # Ok::<(), sft_truth::TruthError>(())
//! ```

#![warn(missing_docs)]

mod cube;
mod table;

pub use cube::{Cube, CubeList, Literal};
pub use table::{TruthError, TruthTable, MAX_INPUTS};
