//! Property-based tests for the truth-table algebra.

use proptest::prelude::*;
use sft_truth::{CubeList, TruthTable};

fn arb_table(n: usize) -> impl Strategy<Value = TruthTable> {
    any::<u128>().prop_map(move |bits| TruthTable::from_bits(n, bits))
}

fn arb_perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Permutation is a group action: applying a permutation and then its
    /// inverse restores the function.
    #[test]
    fn permute_inverse_round_trip(t in arb_table(5), perm in arb_perm(5)) {
        let permuted = t.permute(&perm).expect("valid");
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        prop_assert_eq!(permuted.permute(&inverse).expect("valid"), t);
    }

    /// Permutation composition: permuting by `p` then `q` equals permuting
    /// once by the composition.
    #[test]
    fn permute_composes(t in arb_table(4), p in arb_perm(4), q in arb_perm(4)) {
        let two_step = t.permute(&p).expect("valid").permute(&q).expect("valid");
        // New input i of the q-result behaves like input q[i] of the
        // p-result, which behaves like input p[q[i]] of t.
        let composed: Vec<usize> = q.iter().map(|&i| p[i]).collect();
        prop_assert_eq!(t.permute(&composed).expect("valid"), two_step);
    }

    /// De Morgan over the table algebra.
    #[test]
    fn de_morgan(a in arb_table(5), b in arb_table(5)) {
        let lhs = a.and(&b).complement();
        let rhs = a.complement().or(&b.complement());
        prop_assert_eq!(lhs, rhs);
    }

    /// Shannon expansion: f = x_i·f|x_i=1 + !x_i·f|x_i=0.
    #[test]
    fn shannon_expansion(t in arb_table(5), i in 0usize..5) {
        let x = TruthTable::variable(5, i);
        let c1 = t.cofactor(i, true).expect("in range");
        let c0 = t.cofactor(i, false).expect("in range");
        let rebuilt = x.and(&c1).or(&x.complement().and(&c0));
        prop_assert_eq!(rebuilt, t);
    }

    /// Flipping an input twice is the identity; flipping commutes with
    /// complement.
    #[test]
    fn flip_involution_and_commutation(t in arb_table(5), i in 0usize..5) {
        let f = t.flip_input(i).expect("in range");
        prop_assert_eq!(f.flip_input(i).expect("in range"), t);
        prop_assert_eq!(
            t.complement().flip_input(i).expect("in range"),
            f.complement()
        );
    }

    /// Support is exact: the function is invariant under flipping exactly
    /// the non-support inputs.
    #[test]
    fn support_is_exact(t in arb_table(5)) {
        let support = t.support();
        for i in 0..5 {
            let flipped = t.flip_input(i).expect("in range");
            if support.contains(&i) {
                prop_assert_ne!(flipped, t, "support input {} must matter", i);
            } else {
                prop_assert_eq!(flipped, t, "non-support input {} must not matter", i);
            }
        }
    }

    /// Cube covers reproduce the function exactly, for any function.
    #[test]
    fn cover_round_trip(t in arb_table(6)) {
        let cover = CubeList::from_table(&t);
        if t.is_zero() {
            prop_assert!(cover.is_empty());
        } else {
            prop_assert_eq!(cover.to_table(), t);
        }
    }

    /// on_count + off minterms = 2^n; eval agrees with value.
    #[test]
    fn counting_and_eval_consistency(t in arb_table(5), m in 0u64..32) {
        prop_assert_eq!(
            t.on_count() as u64 + t.off_set().count() as u64,
            t.size()
        );
        let assignment: Vec<bool> = (0..5).map(|i| m >> (4 - i) & 1 == 1).collect();
        prop_assert_eq!(t.eval(&assignment), t.value(m));
    }
}
