//! Identifying comparison functions (Section 3.4 of the paper).
//!
//! Two procedures are provided:
//!
//! - [`IdentifyMethod::Permutations`] — the paper's method: try input
//!   permutations (all of them when `n!` fits the budget, otherwise a
//!   deterministic prefix) and check whether the 1-minterms become
//!   consecutive; the paper's experiments cap this at 200 permutations and
//!   also check the **complement** of the function.
//! - [`IdentifyMethod::Exact`] — a complete recursive decision procedure
//!   based on the interval structure: an on-set is an interval iff some
//!   variable either (a) is constant on it (a *free variable*) with the
//!   rest an interval, or (b) splits it into a suffix-interval (`>=L'`)
//!   low half and a prefix-interval (`<=U'`) high half under a shared
//!   permutation of the remaining variables. This removes the `n!` factor
//!   the paper mentions (their sketched alternative is a Hamiltonian-path
//!   formulation) while remaining exact for all `n <= 7`.
//!
//! Satisfiability don't-cares are supported by the permutation method: the
//! interval must contain all 1-minterms and no 0-minterm, while don't-cares
//! may fall on either side.

use crate::ComparisonSpec;
use sft_truth::TruthTable;

/// Which identification procedure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdentifyMethod {
    /// The paper's capped permutation search.
    Permutations,
    /// The exact recursive interval decomposition (default).
    #[default]
    Exact,
}

/// Options for [`identify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifyOptions {
    /// The procedure to use.
    pub method: IdentifyMethod,
    /// Permutation budget for [`IdentifyMethod::Permutations`] (the paper
    /// used 200).
    pub max_permutations: usize,
    /// Also try to certify the complement (the paper's experiments do; the
    /// comparison unit then gets an output inverter).
    pub try_complement: bool,
}

impl Default for IdentifyOptions {
    fn default() -> Self {
        IdentifyOptions {
            method: IdentifyMethod::Exact,
            max_permutations: 200,
            try_complement: true,
        }
    }
}

impl IdentifyOptions {
    /// The configuration the paper's experiments used: up to 200
    /// permutations, complement included.
    pub fn paper() -> Self {
        IdentifyOptions {
            method: IdentifyMethod::Permutations,
            max_permutations: 200,
            try_complement: true,
        }
    }
}

/// Decides whether `f` is a comparison function and returns a certificate.
///
/// Constant functions are certified with the full or empty interval (their
/// comparison units degenerate to constants).
///
/// # Examples
///
/// ```
/// use sft_core::{identify, IdentifyOptions};
/// use sft_truth::TruthTable;
///
/// // XOR of two inputs is the interval [1, 2].
/// let xor2 = TruthTable::from_fn(2, |m| m.count_ones() % 2 == 1);
/// let spec = identify(&xor2, &IdentifyOptions::default()).expect("xor2 is comparison");
/// assert_eq!((spec.lower, spec.upper), (1, 2));
///
/// // 3-input majority is not a comparison function.
/// let maj = TruthTable::from_minterms(3, &[3, 5, 6, 7]).expect("in range");
/// assert!(identify(&maj, &IdentifyOptions::default()).is_none());
/// ```
pub fn identify(f: &TruthTable, options: &IdentifyOptions) -> Option<ComparisonSpec> {
    let n = f.inputs();
    if f.is_one() {
        let upper = if n == 0 { 0 } else { (1u64 << n) - 1 };
        return ComparisonSpec::new((0..n).collect(), 0, upper).ok();
    }
    if f.is_zero() {
        // Empty interval: certify as the complement of the full interval.
        let upper = if n == 0 { 0 } else { (1u64 << n) - 1 };
        return ComparisonSpec::new_complemented((0..n).collect(), 0, upper).ok();
    }
    let direct = match options.method {
        IdentifyMethod::Permutations => identify_permutations(f, options.max_permutations),
        IdentifyMethod::Exact => identify_exact(f),
    };
    if direct.is_some() {
        return direct;
    }
    if options.try_complement {
        let g = f.complement();
        let comp = match options.method {
            IdentifyMethod::Permutations => identify_permutations(&g, options.max_permutations),
            IdentifyMethod::Exact => identify_exact(&g),
        };
        if let Some(spec) = comp {
            return ComparisonSpec::new_complemented(spec.perm, spec.lower, spec.upper).ok();
        }
    }
    None
}

/// Identification extended with **input polarities**: searches for a
/// polarity assignment (which inputs to complement) under which `f`
/// becomes a comparison function. This strictly generalizes
/// [`identify`] — the unit is then fed through inverters on the negated
/// inputs, which cost no equivalent 2-input gates and add no paths.
///
/// Returns the certificate together with the polarity vector
/// (`negate[j] == true` means original input `j` is complemented before
/// entering the unit). The all-false polarity is tried first, so plain
/// comparison functions get plain certificates.
pub fn identify_with_polarities(
    f: &TruthTable,
    options: &IdentifyOptions,
) -> Option<(ComparisonSpec, Vec<bool>)> {
    let n = f.inputs();
    for polarity_bits in 0..1u32 << n {
        let negate: Vec<bool> = (0..n).map(|j| polarity_bits >> j & 1 == 1).collect();
        let mut g = *f;
        for (j, &neg) in negate.iter().enumerate() {
            if neg {
                g = g.flip_input(j).expect("index in range");
            }
        }
        if let Some(spec) = identify(&g, options) {
            return Some((spec, negate));
        }
    }
    None
}

/// Permutation-driven identification with satisfiability don't-cares: the
/// chosen interval must contain every minterm of `on` and no minterm of the
/// off-set (`!on & !dc`); don't-care minterms may land anywhere. Returns a
/// spec whose [`to_table`](ComparisonSpec::to_table) agrees with `on` on
/// every care minterm.
///
/// The complement is also tried when `options.try_complement` is set. Only
/// [`IdentifyMethod::Permutations`] supports don't-cares; the `method`
/// option is ignored here.
///
/// # Panics
///
/// Panics if `on` and `dc` have different input counts.
pub fn identify_with_dc(
    on: &TruthTable,
    dc: &TruthTable,
    options: &IdentifyOptions,
) -> Option<ComparisonSpec> {
    assert_eq!(on.inputs(), dc.inputs(), "on/dc input count mismatch");
    if dc.is_zero() {
        return identify(on, options);
    }
    let care_on = on.and(&dc.complement());
    let care_off = on.complement().and(&dc.complement());
    if care_on.is_zero() || care_off.is_zero() {
        // Some constant covers all care minterms.
        return identify(
            &if care_off.is_zero() {
                TruthTable::one(on.inputs())
            } else {
                TruthTable::zero(on.inputs())
            },
            options,
        );
    }
    if let Some(spec) = interval_search_dc(&care_on, &care_off, options.max_permutations) {
        return Some(spec);
    }
    if options.try_complement {
        if let Some(spec) = interval_search_dc(&care_off, &care_on, options.max_permutations) {
            return ComparisonSpec::new_complemented(spec.perm, spec.lower, spec.upper).ok();
        }
    }
    None
}

/// Generates permutations of `0..n` in lexicographic order, up to `cap`.
fn permutations(n: usize, cap: usize) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    loop {
        result.push(current.clone());
        if result.len() >= cap || !next_permutation(&mut current) {
            return result;
        }
    }
}

fn next_permutation(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

fn interval_of(g: &TruthTable) -> Option<(u64, u64)> {
    let mut min = None;
    let mut max = 0;
    let mut count = 0u64;
    for m in g.on_set() {
        if min.is_none() {
            min = Some(m);
        }
        max = m;
        count += 1;
    }
    let min = min?;
    (max - min + 1 == count).then_some((min, max))
}

fn identify_permutations(f: &TruthTable, cap: usize) -> Option<ComparisonSpec> {
    for perm in permutations(f.inputs(), cap) {
        let g = f.permute(&perm).expect("generated permutations are valid");
        if let Some((lower, upper)) = interval_of(&g) {
            return ComparisonSpec::new(perm, lower, upper).ok();
        }
    }
    None
}

fn interval_search_dc(
    care_on: &TruthTable,
    care_off: &TruthTable,
    cap: usize,
) -> Option<ComparisonSpec> {
    for perm in permutations(care_on.inputs(), cap) {
        let on_p = care_on.permute(&perm).expect("valid permutation");
        let off_p = care_off.permute(&perm).expect("valid permutation");
        let lower = on_p.on_set().next()?;
        let upper = on_p.on_set().last()?;
        let clash = off_p.on_set().any(|m| lower <= m && m <= upper);
        if !clash {
            return ComparisonSpec::new(perm, lower, upper).ok();
        }
    }
    None
}

/// Exact recursive identification: removes the `n!` factor.
fn identify_exact(f: &TruthTable) -> Option<ComparisonSpec> {
    let n = f.inputs();
    let vars: Vec<usize> = (0..n).collect();
    let (perm, lower, upper) = find_interval(f, &vars)?;
    ComparisonSpec::new(perm, lower, upper).ok()
}

/// Finds `(perm_suffix, L, U)` over the remaining `vars` such that the
/// on-set of `f` restricted to those vars is exactly `[L, U]`.
fn find_interval(f: &TruthTable, vars: &[usize]) -> Option<(Vec<usize>, u64, u64)> {
    if f.is_zero() {
        return None; // handled by the caller (constant certificates)
    }
    if vars.is_empty() {
        // f is a nonzero constant over no remaining vars: the 1-point
        // interval [0, 0].
        return Some((Vec::new(), 0, 0));
    }
    let k = vars.len();
    for (vi, &v) in vars.iter().enumerate() {
        let rest: Vec<usize> =
            vars.iter().enumerate().filter(|&(i, _)| i != vi).map(|(_, &w)| w).collect();
        let c0 = f.cofactor(v, false).expect("var in range");
        let c1 = f.cofactor(v, true).expect("var in range");
        if c1.is_zero() {
            if let Some((mut perm, l, u)) = find_interval(&c0, &rest) {
                let mut p = vec![v];
                p.append(&mut perm);
                return Some((p, l, u));
            }
            continue;
        }
        if c0.is_zero() {
            if let Some((mut perm, l, u)) = find_interval(&c1, &rest) {
                let half = 1u64 << (k - 1);
                let mut p = vec![v];
                p.append(&mut perm);
                return Some((p, half + l, half + u));
            }
            continue;
        }
        // Both halves populated: need c0 to be a suffix interval and c1 a
        // prefix interval under a *shared* permutation.
        if let Some((mut perm, l, u)) = find_straddle(&c0, &c1, &rest) {
            let half = 1u64 << (k - 1);
            let mut p = vec![v];
            p.append(&mut perm);
            return Some((p, l, half + u));
        }
    }
    None
}

/// Whether `f` is constant 1 over the remaining variables `vars` (it may
/// still formally mention other, already-cofactored variables — those are
/// filled uniformly by `cofactor`, so a global check suffices).
fn is_one_over(f: &TruthTable) -> bool {
    f.is_one()
}

/// Finds a shared permutation of `vars` under which `g0`'s on-set is the
/// suffix interval `[L', max]` and `g1`'s the prefix `[0, U']`.
fn find_straddle(
    g0: &TruthTable,
    g1: &TruthTable,
    vars: &[usize],
) -> Option<(Vec<usize>, u64, u64)> {
    if g0.is_zero() || g1.is_zero() {
        return None; // straddle requires both halves populated
    }
    if vars.is_empty() {
        return (is_one_over(g0) && is_one_over(g1)).then(|| (Vec::new(), 0, 0));
    }
    let k = vars.len();
    for (vi, &v) in vars.iter().enumerate() {
        let rest: Vec<usize> =
            vars.iter().enumerate().filter(|&(i, _)| i != vi).map(|(_, &w)| w).collect();
        let g0_0 = g0.cofactor(v, false).expect("var in range");
        let g0_1 = g0.cofactor(v, true).expect("var in range");
        let g1_0 = g1.cofactor(v, false).expect("var in range");
        let g1_1 = g1.cofactor(v, true).expect("var in range");
        // Suffix candidates for g0: (l_bit, remaining suffix function).
        let mut g0_cases: Vec<(u64, &TruthTable)> = Vec::new();
        if is_one_over(&g0_1) {
            g0_cases.push((0, &g0_0)); // l=0: high half all 1, low half >= L''
        }
        if g0_0.is_zero() {
            g0_cases.push((1, &g0_1)); // l=1: low half all 0, high half >= L''
        }
        // Prefix candidates for g1.
        let mut g1_cases: Vec<(u64, &TruthTable)> = Vec::new();
        if is_one_over(&g1_0) {
            g1_cases.push((1, &g1_1)); // u=1: low half all 1, high half <= U''
        }
        if g1_1.is_zero() {
            g1_cases.push((0, &g1_0)); // u=0: high half all 0, low half <= U''
        }
        for &(lb, s0) in &g0_cases {
            for &(ub, s1) in &g1_cases {
                // s0 must remain a suffix interval, s1 a prefix interval.
                // Reuse find_straddle with the roles: suffix-only and
                // prefix-only are the degenerate cases where the partner is
                // constant 1.
                if let Some((mut perm, l, u)) = find_straddle(s0, s1, &rest) {
                    let bit = 1u64 << (k - 1);
                    let mut p = vec![v];
                    p.append(&mut perm);
                    return Some((p, lb * bit + l, ub * bit + u));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_spec(f: &TruthTable, spec: &ComparisonSpec) {
        assert_eq!(&spec.to_table(), f, "certificate must reproduce the function");
    }

    #[test]
    fn paper_f2_identified_by_both_methods() {
        let f2 = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14]).unwrap();
        for method in [IdentifyMethod::Exact, IdentifyMethod::Permutations] {
            let opts = IdentifyOptions { method, max_permutations: 200, try_complement: true };
            let spec = identify(&f2, &opts).expect("f2 is a comparison function");
            check_spec(&f2, &spec);
            assert_eq!(spec.upper - spec.lower, 5, "interval holds 6 minterms");
        }
    }

    #[test]
    fn majority_rejected_by_both_methods() {
        let maj = TruthTable::from_minterms(3, &[3, 5, 6, 7]).unwrap();
        for method in [IdentifyMethod::Exact, IdentifyMethod::Permutations] {
            let opts = IdentifyOptions { method, max_permutations: 720, try_complement: true };
            assert!(identify(&maj, &opts).is_none(), "majority is not comparison ({method:?})");
        }
    }

    #[test]
    fn constants_certified() {
        let opts = IdentifyOptions::default();
        let one = TruthTable::one(3);
        let spec = identify(&one, &opts).unwrap();
        check_spec(&one, &spec);
        let zero = TruthTable::zero(3);
        let spec = identify(&zero, &opts).unwrap();
        check_spec(&zero, &spec);
    }

    #[test]
    fn basic_gates_are_comparison_functions() {
        let opts = IdentifyOptions::default();
        for n in 1..=4usize {
            let and = TruthTable::from_fn(n, |m| m == (1 << n) - 1);
            check_spec(&and, &identify(&and, &opts).unwrap());
            let or = TruthTable::from_fn(n, |m| m != 0);
            check_spec(&or, &identify(&or, &opts).unwrap());
            let nand = and.complement();
            check_spec(&nand, &identify(&nand, &opts).unwrap());
        }
        let xor2 = TruthTable::from_fn(2, |m| m.count_ones() % 2 == 1);
        check_spec(&xor2, &identify(&xor2, &opts).unwrap());
        // 3-input parity is NOT a comparison function.
        let xor3 = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
        assert!(identify(&xor3, &opts).is_none());
    }

    /// The exact method agrees with the exhaustive permutation method on
    /// every 4-input function class sampled densely, and on ALL 3-input
    /// functions.
    #[test]
    fn exact_equals_exhaustive_all_3input_functions() {
        let exhaustive = IdentifyOptions {
            method: IdentifyMethod::Permutations,
            max_permutations: 6,
            try_complement: false,
        };
        let exact = IdentifyOptions {
            method: IdentifyMethod::Exact,
            max_permutations: 0,
            try_complement: false,
        };
        for bits in 0..=255u128 {
            let f = TruthTable::from_bits(3, bits);
            if f.is_zero() || f.is_one() {
                continue;
            }
            let a = identify(&f, &exhaustive);
            let b = identify(&f, &exact);
            assert_eq!(a.is_some(), b.is_some(), "disagreement on {bits:#04x}");
            if let Some(spec) = b {
                check_spec(&f, &spec);
            }
        }
    }

    #[test]
    fn exact_equals_exhaustive_sampled_4input_functions() {
        let exhaustive = IdentifyOptions {
            method: IdentifyMethod::Permutations,
            max_permutations: 24,
            try_complement: false,
        };
        let exact = IdentifyOptions {
            method: IdentifyMethod::Exact,
            max_permutations: 0,
            try_complement: false,
        };
        // Dense deterministic sample of the 65536 4-input functions.
        for i in 0..4096u128 {
            let bits = i * 16 + (i % 16);
            let f = TruthTable::from_bits(4, bits);
            if f.is_zero() || f.is_one() {
                continue;
            }
            let a = identify(&f, &exhaustive);
            let b = identify(&f, &exact);
            assert_eq!(a.is_some(), b.is_some(), "disagreement on {bits:#06x}");
            if let Some(spec) = b {
                check_spec(&f, &spec);
            }
        }
    }

    #[test]
    fn complement_certificates_work() {
        // NOR is the complement of OR = [1, max].
        let nor3 = TruthTable::from_fn(3, |m| m == 0);
        let opts = IdentifyOptions::default();
        let spec = identify(&nor3, &opts).unwrap();
        check_spec(&nor3, &spec);
    }

    #[test]
    fn dc_identification_uses_freedom() {
        // Majority is not comparison, but with its middle minterms DC it is.
        let on = TruthTable::from_minterms(3, &[3, 5, 6, 7]).unwrap();
        let opts = IdentifyOptions::paper();
        assert!(identify(&on, &opts).is_none());
        // Declare minterm 4 a don't-care: on-set {3,5,6,7}, off {0,1,2}.
        // Interval [3,7] then works under the identity permutation.
        let dc = TruthTable::from_minterms(3, &[4]).unwrap();
        let spec = identify_with_dc(&on, &dc, &opts).expect("dc freedom suffices");
        let t = spec.to_table();
        // Must agree on care minterms.
        for m in 0..8u64 {
            if !dc.value(m) {
                assert_eq!(t.value(m), on.value(m), "care minterm {m}");
            }
        }
    }

    #[test]
    fn dc_everything_is_trivially_comparison() {
        let on = TruthTable::from_minterms(2, &[1]).unwrap();
        let dc = TruthTable::one(2);
        let opts = IdentifyOptions::paper();
        assert!(identify_with_dc(&on, &dc, &opts).is_some());
    }

    #[test]
    fn polarity_extension_strictly_generalizes() {
        let opts = IdentifyOptions::default();
        // On-set {0, 3} over 3 inputs: not an interval under any
        // permutation, but flipping x3 maps it to {1, 2} = [1, 2].
        let f = TruthTable::from_minterms(3, &[0, 3]).unwrap();
        assert!(identify(&f, &IdentifyOptions { try_complement: false, ..opts.clone() }).is_none());
        let (spec, negate) = identify_with_polarities(
            &f,
            &IdentifyOptions { try_complement: false, ..opts.clone() },
        )
        .expect("polarity freedom suffices");
        // Applying the negations to the certificate's table restores f.
        let mut g = spec.to_table();
        for (j, &neg) in negate.iter().enumerate() {
            if neg {
                g = g.flip_input(j).unwrap();
            }
        }
        assert_eq!(g, f);
        assert!(negate.iter().any(|&b| b), "must actually use a negation");
        // Plain comparison functions get the all-false polarity.
        let plain = ComparisonSpec::new(vec![0, 1, 2], 2, 5).unwrap().to_table();
        let (_, negate) = identify_with_polarities(&plain, &opts).unwrap();
        assert!(negate.iter().all(|&b| !b));
    }

    #[test]
    fn permutation_generator_is_lexicographic_and_capped() {
        let perms = permutations(3, 100);
        assert_eq!(perms.len(), 6);
        assert_eq!(perms[0], vec![0, 1, 2]);
        assert_eq!(perms[5], vec![2, 1, 0]);
        assert_eq!(permutations(4, 5).len(), 5);
        assert_eq!(permutations(0, 10), vec![Vec::<usize>::new()]);
    }

    /// Every identified certificate, complemented or not, reproduces the
    /// function exactly (dense scan over 5-input functions built from
    /// random intervals plus permutations — these must ALL be identified).
    #[test]
    fn all_interval_functions_are_identified() {
        let opts = IdentifyOptions::default();
        // All intervals over 4 inputs under a fixed scrambled permutation.
        let perm = vec![2, 0, 3, 1];
        for l in 0..16u64 {
            for u in l..16 {
                let spec = ComparisonSpec::new(perm.clone(), l, u).unwrap();
                let f = spec.to_table();
                if f.is_one() {
                    continue;
                }
                let found = identify(&f, &opts).expect("interval functions must be identified");
                check_spec(&f, &found);
            }
        }
    }
}
