//! Building comparison units (Figures 1–5 of the paper).
//!
//! A comparison unit for a spec `(perm, L, U)` with `F` free variables is:
//!
//! ```text
//!        x_1..x_F ──(literals)──┐
//!   x_{F+1}..x_n ──> [>=L_F] ───┤ AND ──> f
//!   x_{F+1}..x_n ──> [<=U_F] ───┘
//! ```
//!
//! The `>=L` block (Figure 2a) is a chain of 2-input gates built from the
//! LSB up: `G_i = AND(x_i, G_{i+1})` when `l_i = 1`, `OR(x_i, G_{i+1})` when
//! `l_i = 0`, with trailing gates omitted when the suffix of `L` is zero.
//! The `<=U` block (Figure 2b) is dual with complemented inputs. Consecutive
//! same-kind gates are merged into wider gates (Figure 4), which leaves the
//! equivalent-2-input gate count and the path count unchanged but reduces
//! the gate count.
//!
//! The unit has at most **two** paths from any input to its output — one
//! through each block — and fewer for free variables (one) and for inputs
//! whose chain gate is omitted (Section 3.2).

use crate::ComparisonSpec;
use sft_netlist::{Circuit, GateKind, NetlistError, NodeId};

/// Cost summary of a comparison unit, used by the resynthesis procedures to
/// score candidate replacements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitCost {
    /// Equivalent 2-input gates of the unit.
    pub two_input_gates: u64,
    /// Paths from each input position (original input order) to the unit
    /// output: 0, 1 or 2.
    pub input_paths: Vec<u64>,
    /// Number of logic levels of the unit.
    pub depth: u32,
}

impl UnitCost {
    /// Total paths through the unit given external path labels `N_p` of the
    /// inputs (Section 2 of the paper: `N_p(g) = Σ N_p(g_i)·K_p(g_i)`).
    pub fn paths_with_labels(&self, labels: &[u128]) -> u128 {
        self.input_paths
            .iter()
            .zip(labels)
            .fold(0u128, |acc, (&k, &n)| acc.saturating_add(n.saturating_mul(k as u128)))
    }
}

/// What the top gate of a built unit should become. Building *in* a circuit
/// returns this so the caller can graft it onto an existing node id.
#[derive(Debug, Clone)]
pub struct UnitTop {
    /// Gate kind of the unit's output node.
    pub kind: GateKind,
    /// Fanins of the unit's output node.
    pub fanins: Vec<NodeId>,
}

/// Builds the comparison unit for `spec` inside `circuit`, fed by `inputs`
/// (one line per original input position, i.e. `inputs[j]` is the paper's
/// `y_{j+1}`). Interior nodes are appended to the circuit; the unit's
/// output gate is **returned, not created**, so the caller can either graft
/// it onto an existing node (resynthesis) or add it as a fresh gate.
///
/// # Errors
///
/// Returns an error if `inputs.len() != spec.inputs()` (reported as
/// [`NetlistError::Cone`]) or if node creation fails.
pub fn build_unit_in(
    circuit: &mut Circuit,
    inputs: &[NodeId],
    spec: &ComparisonSpec,
) -> Result<UnitTop, NetlistError> {
    if inputs.len() != spec.inputs() {
        return Err(NetlistError::Cone(format!(
            "unit needs {} inputs, got {}",
            spec.inputs(),
            inputs.len()
        )));
    }
    let n = spec.inputs();
    let f = spec.free_count();
    // Nodes with index >= base were created by this builder; only those may
    // be widened by the chain merge (host-circuit lines must never be
    // rewired).
    let base = circuit.len();
    let x = |i: usize| inputs[spec.perm[i]]; // the paper's x_{i+1}

    // AND-gate terms: free literals, then the blocks.
    let mut terms: Vec<NodeId> = Vec::new();
    for i in 0..f {
        if spec.lower_bit(i) {
            terms.push(x(i));
        } else {
            terms.push(circuit.add_gate(GateKind::Not, vec![x(i)])?);
        }
    }

    // >=L_F block (omitted when trivial, Section 3.2.2).
    if !spec.geq_block_trivial() {
        let mut acc: Option<NodeId> = None; // None = constant 1 (chain not started)
        for i in (f..n).rev() {
            if spec.lower_bit(i) {
                acc = Some(match acc {
                    None => x(i),
                    Some(a) => chain_gate(circuit, GateKind::And, x(i), a, base)?,
                });
            } else {
                acc = match acc {
                    None => None, // OR with constant 1: gate omitted
                    Some(a) => Some(chain_gate(circuit, GateKind::Or, x(i), a, base)?),
                };
            }
        }
        terms.push(acc.expect("non-trivial L_F yields a chain"));
    }

    // <=U_F block (dual; inputs complemented).
    if !spec.leq_block_trivial() {
        let mut acc: Option<NodeId> = None;
        for i in (f..n).rev() {
            if !spec.upper_bit(i) {
                let lit = circuit.add_gate(GateKind::Not, vec![x(i)])?;
                acc = Some(match acc {
                    None => lit,
                    Some(a) => chain_gate(circuit, GateKind::And, lit, a, base)?,
                });
            } else {
                acc = match acc {
                    None => None,
                    Some(a) => {
                        let lit = circuit.add_gate(GateKind::Not, vec![x(i)])?;
                        Some(chain_gate(circuit, GateKind::Or, lit, a, base)?)
                    }
                };
            }
        }
        terms.push(acc.expect("non-trivial U_F yields a chain"));
    }

    let top = match terms.len() {
        0 => UnitTop { kind: GateKind::Const1, fanins: Vec::new() },
        1 => UnitTop { kind: GateKind::Buf, fanins: terms },
        _ => UnitTop { kind: GateKind::And, fanins: terms },
    };
    Ok(if spec.complemented { complement_top(top) } else { top })
}

/// Extends a freshly-built same-kind chain gate instead of stacking a new
/// 2-input gate on top (the Figure 4 merge). `prev` is the gate built in
/// the previous chain step; it has exactly one consumer-to-be (us), so
/// widening it is safe.
fn chain_gate(
    circuit: &mut Circuit,
    kind: GateKind,
    lit: NodeId,
    prev: NodeId,
    base: usize,
) -> Result<NodeId, NetlistError> {
    if prev.index() >= base && circuit.node(prev).kind() == kind {
        let mut fanins = vec![lit];
        fanins.extend_from_slice(circuit.node(prev).fanins());
        circuit.rewire(prev, kind, fanins)?;
        Ok(prev)
    } else {
        circuit.add_gate(kind, vec![lit, prev])
    }
}

/// Materializes a [`UnitTop`] as an actual node in `circuit` (used when
/// the top is a term of a larger structure rather than a graft target).
///
/// # Errors
///
/// Returns an error if gate creation fails.
pub fn materialize_top(circuit: &mut Circuit, top: UnitTop) -> Result<NodeId, NetlistError> {
    match top.kind {
        GateKind::Buf => Ok(top.fanins[0]),
        GateKind::Const0 | GateKind::Const1 => Ok(circuit.add_const(top.kind == GateKind::Const1)),
        kind => circuit.add_gate(kind, top.fanins),
    }
}

fn complement_top(top: UnitTop) -> UnitTop {
    let kind = match top.kind {
        GateKind::And => GateKind::Nand,
        GateKind::Buf => GateKind::Not,
        GateKind::Const1 => GateKind::Const0,
        GateKind::Const0 => GateKind::Const1,
        other => other.complemented().unwrap_or(other),
    };
    UnitTop { kind, fanins: top.fanins }
}

/// Builds a standalone circuit implementing the unit for `spec`, with
/// primary inputs `y1..yn` and a single output `f`.
///
/// # Errors
///
/// Returns an error if the spec is malformed.
///
/// # Examples
///
/// ```
/// use sft_core::{build_standalone_unit, ComparisonSpec};
///
/// // Figure 4: the >=7 unit over 4 inputs.
/// let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 7, 15)?;
/// let c = build_standalone_unit(&spec)?;
/// assert_eq!(c.eval_assignment(&[false, true, true, true]), vec![true]);  // 7
/// assert_eq!(c.eval_assignment(&[false, true, true, false]), vec![false]); // 6
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_standalone_unit(spec: &ComparisonSpec) -> Result<Circuit, Box<dyn std::error::Error>> {
    spec.validate()?;
    let mut c = Circuit::new(format!("unit_{}_{}", spec.lower, spec.upper));
    let inputs: Vec<NodeId> =
        (0..spec.inputs()).map(|j| c.add_input(format!("y{}", j + 1))).collect();
    let top = build_unit_in(&mut c, &inputs, spec)?;
    let out = if top.kind == GateKind::Buf {
        top.fanins[0]
    } else if top.fanins.is_empty() {
        c.add_const(top.kind == GateKind::Const1)
    } else {
        c.add_gate(top.kind, top.fanins)?
    };
    c.add_output(out, "f");
    Ok(c)
}

/// Computes the cost of the unit for `spec` (by building it in a scratch
/// circuit and measuring).
///
/// # Errors
///
/// Returns an error if the spec is malformed.
pub fn unit_cost(spec: &ComparisonSpec) -> Result<UnitCost, Box<dyn std::error::Error>> {
    let c = build_standalone_unit(spec)?;
    let out = c.outputs()[0];
    let input_paths = c.inputs().iter().map(|&i| c.path_count_between(i, out) as u64).collect();
    Ok(UnitCost { two_input_gates: c.two_input_gate_count(), input_paths, depth: c.depth() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{identify, IdentifyOptions};
    use sft_truth::TruthTable;

    fn table_of(c: &Circuit) -> TruthTable {
        let n = c.inputs().len();
        TruthTable::from_fn(n, |m| {
            let assignment: Vec<bool> = (0..n).map(|j| m >> (n - 1 - j) & 1 == 1).collect();
            c.eval_assignment(&assignment)[0]
        })
    }

    #[test]
    fn figure3_geq3_structure() {
        // >=3 over 4 inputs (Figure 3a): OR(x1, OR(x2, AND(x3, x4))),
        // merged: OR(x1, x2, AND(x3, x4)).
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 3, 15).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), spec.to_table());
        // 1 OR (3-input) + 1 AND (2-input) = 3 equivalent 2-input gates.
        assert_eq!(c.two_input_gate_count(), 3);
    }

    #[test]
    fn figure3_geq12_omits_trailing_gates() {
        // >=12 = (1100): unit is AND(x1, x2); x3, x4 disappear.
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 12, 15).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), spec.to_table());
        assert_eq!(c.two_input_gate_count(), 1);
        let cost = unit_cost(&spec).unwrap();
        assert_eq!(cost.input_paths, vec![1, 1, 0, 0]);
    }

    #[test]
    fn figure3_leq12_and_leq3() {
        // <=12 (Figure 3c): f = !x1 + !x2 + !x3!x4.
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 0, 12).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), spec.to_table());
        // <=3 (Figure 3d): f = !x1 !x2 — trailing 1-bits omitted.
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 0, 3).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), spec.to_table());
        assert_eq!(c.two_input_gate_count(), 1);
        assert_eq!(unit_cost(&spec).unwrap().input_paths, vec![1, 1, 0, 0]);
    }

    #[test]
    fn figure4_chain_merging() {
        // >=7 = (0111): OR(x1, AND(x2, x3, x4)) after merging.
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 7, 15).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), spec.to_table());
        // Gates: one 3-input AND (2 eq2) + one 2-input OR (1 eq2).
        assert_eq!(c.two_input_gate_count(), 3);
        let gates: Vec<_> = c
            .iter()
            .filter(|(_, n)| n.kind().is_gate())
            .map(|(_, n)| (n.kind(), n.fanins().len()))
            .collect();
        assert!(gates.contains(&(GateKind::And, 3)), "AND chain must merge: {gates:?}");
    }

    #[test]
    fn figure1_f2_unit() {
        // The paper's f2: L=5, U=10 under input reversal.
        let spec = ComparisonSpec::new(vec![3, 2, 1, 0], 5, 10).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        let t = table_of(&c);
        assert_eq!(t.on_set().collect::<Vec<_>>(), vec![1, 5, 6, 9, 10, 14]);
        // At most two paths from any input.
        let cost = unit_cost(&spec).unwrap();
        assert!(cost.input_paths.iter().all(|&k| k <= 2), "{:?}", cost.input_paths);
    }

    #[test]
    fn figure5_free_variables_single_path() {
        // L=5=(0101), U=7=(0111): x1, x2 free.
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 5, 7).unwrap();
        let cost = unit_cost(&spec).unwrap();
        assert_eq!(cost.input_paths[0], 1, "free variables have one path");
        assert_eq!(cost.input_paths[1], 1);
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), spec.to_table());
    }

    #[test]
    fn figure6_unit_l11_u12() {
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 11, 12).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), spec.to_table());
        assert_eq!(spec.free_count(), 1);
    }

    #[test]
    fn single_cube_becomes_bare_and() {
        // Section 3.2.2: f = y1 y3 -> permutation (y1, y3, y2), L=6, U=7.
        let spec = ComparisonSpec::new(vec![0, 2, 1], 6, 7).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(c.two_input_gate_count(), 1);
        let t = table_of(&c);
        let expect = TruthTable::variable(3, 0).and(&TruthTable::variable(3, 2));
        assert_eq!(t, expect);
    }

    #[test]
    fn complemented_unit() {
        // NOR3 is itself the interval [0, 0]; the identifier certifies it
        // directly. Complemented units are exercised explicitly.
        let nor3 = TruthTable::from_fn(3, |m| m == 0);
        let spec = identify(&nor3, &IdentifyOptions::default()).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), nor3);
        // An explicitly complemented spec builds the complement function.
        let spec = ComparisonSpec::new_complemented(vec![1, 0, 2], 2, 5).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert_eq!(table_of(&c), spec.to_table());
        assert_eq!(
            table_of(&c).complement(),
            ComparisonSpec::new(vec![1, 0, 2], 2, 5).unwrap().to_table()
        );
    }

    #[test]
    fn constant_units() {
        let spec = ComparisonSpec::new(vec![0, 1], 0, 3).unwrap();
        let c = build_standalone_unit(&spec).unwrap();
        assert!(table_of(&c).is_one());
        assert_eq!(c.two_input_gate_count(), 0);
    }

    /// Exhaustive: every interval over 3..=5 inputs builds a unit that (a)
    /// implements exactly the interval function, (b) has at most two paths
    /// per input, and (c) has depth at most n + 1.
    #[test]
    fn all_intervals_build_correct_cheap_units() {
        for n in 3..=5usize {
            let max = (1u64 << n) - 1;
            for l in 0..=max {
                for u in l..=max {
                    let spec = ComparisonSpec::new((0..n).collect(), l, u).unwrap();
                    let c = build_standalone_unit(&spec).unwrap();
                    assert_eq!(table_of(&c), spec.to_table(), "L={l} U={u} n={n}");
                    let cost = unit_cost(&spec).unwrap();
                    assert!(
                        cost.input_paths.iter().all(|&k| k <= 2),
                        "more than two paths for L={l} U={u}"
                    );
                    assert!(cost.depth as usize <= n + 1, "depth too large for L={l} U={u}");
                }
            }
        }
    }

    #[test]
    fn cost_paths_with_labels_matches_section2_formula() {
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 5, 10).unwrap();
        let cost = unit_cost(&spec).unwrap();
        let labels = [10u128, 100, 20, 20];
        let manual: u128 =
            cost.input_paths.iter().zip(labels.iter()).map(|(&k, &n)| n * k as u128).sum();
        assert_eq!(cost.paths_with_labels(&labels), manual);
    }
}
