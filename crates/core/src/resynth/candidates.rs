//! Candidate subcircuits: cone enumeration, comparison-function
//! identification, and scoring.
//!
//! Everything here is read-only on the circuit, which is what lets the pass
//! fan candidate scoring out to worker threads. Fanout facts come from the
//! maintained [`CircuitViews`] (exact after every edit); path labels come
//! from the pass-start snapshot in [`ScoreCtx`].

use super::{Objective, ResynthOptions};
use crate::cover::{comparison_cover, cover_cost};
use crate::unit::unit_cost;
use crate::{identify, identify_with_dc, identify_with_polarities, ComparisonSpec};
use sft_budget::{Budget, Exhausted};
use sft_netlist::{two_input_cost, Circuit, CircuitViews, NodeId};
use std::collections::HashSet;

/// What a candidate replaces the subcircuit with.
pub(super) enum Replacement {
    /// A single comparison unit (the paper's procedure).
    Unit(ComparisonSpec),
    /// A unit fed through inverters on the negated inputs (polarity
    /// extension).
    NegatedUnit(ComparisonSpec, Vec<bool>),
    /// An OR of several comparison units (concluding remark 2).
    Cover(Vec<ComparisonSpec>),
}

/// A scored candidate subcircuit.
pub(super) struct Candidate {
    pub(super) gates: Vec<NodeId>,
    pub(super) inputs: Vec<NodeId>,
    pub(super) replacement: Replacement,
    pub(super) gate_reduction: i64,
    pub(super) new_paths_at_g: u128,
}

/// Per-gate read-only context shared by every candidate scoring of one
/// replacement site (and by all scoring workers).
pub(super) struct ScoreCtx<'a> {
    pub(super) g: NodeId,
    /// Path labels snapshotted at pass start (the scoring contract: every
    /// candidate of a pass is scored against the same labels).
    pub(super) labels: &'a [u128],
}

pub(super) fn combined_score(
    c: &Candidate,
    old_paths: u128,
    gate_weight: u32,
    path_weight: u32,
) -> i128 {
    let path_delta = old_paths as i128 - c.new_paths_at_g as i128;
    c.gate_reduction as i128 * gate_weight as i128 + path_delta * path_weight as i128
}

pub(super) fn pick_better(a: Candidate, b: Candidate, objective: Objective) -> Candidate {
    match objective {
        Objective::Gates => {
            if (b.gate_reduction, std::cmp::Reverse(b.new_paths_at_g))
                > (a.gate_reduction, std::cmp::Reverse(a.new_paths_at_g))
            {
                b
            } else {
                a
            }
        }
        Objective::Paths => {
            if b.new_paths_at_g < a.new_paths_at_g {
                b
            } else {
                a
            }
        }
        Objective::Combined { gate_weight, path_weight } => {
            // old_paths cancels when comparing two candidates at the same g.
            let sa = combined_score(&a, 0, gate_weight, path_weight);
            let sb = combined_score(&b, 0, gate_weight, path_weight);
            if sb > sa {
                b
            } else {
                a
            }
        }
    }
}

/// Enumerates candidate subcircuits rooted at `g`: cones grown by absorbing
/// one fanin gate at a time, with at most `K` inputs (Section 4.1). Returns
/// `(cone gate set, ordered input cut)` pairs; the single-gate cone is
/// always first.
pub(super) fn enumerate_candidates(
    circuit: &Circuit,
    g: NodeId,
    options: &ResynthOptions,
) -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
    let inputs_of = |gates: &[NodeId]| -> Vec<NodeId> {
        let set: HashSet<NodeId> = gates.iter().copied().collect();
        let mut inputs = Vec::new();
        for &x in gates {
            for &f in circuit.node(x).fanins() {
                let kind = circuit.node(f).kind();
                if matches!(kind, sft_netlist::GateKind::Const0 | sft_netlist::GateKind::Const1) {
                    continue; // constants stay inside the cone
                }
                if !set.contains(&f) && !inputs.contains(&f) {
                    inputs.push(f);
                }
            }
        }
        inputs
    };

    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
    let mut result: Vec<(Vec<NodeId>, Vec<NodeId>)> = Vec::new();
    let mut queue: Vec<Vec<NodeId>> = vec![vec![g]];
    seen.insert(vec![g]);
    while let Some(gates) = queue.pop() {
        let inputs = inputs_of(&gates);
        if inputs.len() > options.max_inputs || inputs.is_empty() {
            continue;
        }
        result.push((gates.clone(), inputs.clone()));
        if result.len() >= options.max_candidates_per_gate {
            break;
        }
        for h in inputs {
            if !circuit.node(h).kind().is_gate() {
                continue;
            }
            let mut next = gates.clone();
            next.push(h);
            next.sort_unstable();
            if seen.insert(next.clone()) {
                queue.push(next);
            }
        }
    }
    result
}

/// Scores one candidate cone at `ctx.g`: extracts the cone function,
/// identifies a comparison replacement (a unit, a negated-input unit, or a
/// cover), and computes the gate/path deltas. Returns `Ok(None)` when the
/// cone has no admissible replacement.
///
/// Read-only on the circuit — safe to call from worker threads. Consumes
/// one budget step (the pass's unit of work) before doing anything
/// expensive, so once the budget is exhausted all pending scorings return
/// immediately; concurrent workers can overshoot the step limit by at most
/// the number of in-flight calls.
pub(super) fn score_candidate(
    circuit: &Circuit,
    options: &ResynthOptions,
    budget: &Budget,
    ctx: &ScoreCtx<'_>,
    dc: Option<&mut (sft_bdd::Manager, Vec<sft_bdd::BddRef>)>,
    gates: &[NodeId],
    inputs: &[NodeId],
) -> Result<Option<Candidate>, Exhausted> {
    budget.consume(1)?;
    let Ok(truth) = circuit.cone_function(ctx.g, inputs) else { return Ok(None) };
    // Don't-care-widened identification depends on the cut, not just the
    // function, so only the plain queries go through the P-class memo.
    let plain = |truth: &sft_truth::TruthTable| {
        if options.memoize_identification {
            crate::memo::identify_memo(truth, &options.identify)
        } else {
            identify(truth, &options.identify)
        }
    };
    let spec = match dc {
        Some((manager, per_node)) => match reachable_dc(manager, per_node, circuit, inputs) {
            Ok(Some(dc)) => identify_with_dc(&truth, &dc, &options.identify),
            _ => plain(&truth),
        },
        None => plain(&truth),
    };
    let (replacement, cost) = match spec {
        Some(spec) => {
            let Ok(cost) = unit_cost(&spec) else { return Ok(None) };
            (Replacement::Unit(spec), cost)
        }
        None => {
            let negated = options
                .allow_input_negation
                .then(|| identify_with_polarities(&truth, &options.identify))
                .flatten();
            if let Some((spec, negate)) = negated {
                // Inverters on unit inputs change neither the eq-2 count
                // nor the per-input path counts.
                let Ok(mut cost) = unit_cost(&spec) else { return Ok(None) };
                cost.depth += 1;
                (Replacement::NegatedUnit(spec, negate), cost)
            } else if options.max_cover_units > 1 {
                let cover = comparison_cover(&truth, &options.identify);
                if cover.is_empty() || cover.len() > options.max_cover_units {
                    return Ok(None);
                }
                let Ok(cost) = cover_cost(&cover) else { return Ok(None) };
                (Replacement::Cover(cover), cost)
            } else {
                return Ok(None);
            }
        }
    };
    // Old gate cost: g itself plus the cone gates that would die.
    let views = circuit.views().expect("resynthesis runs with views enabled");
    let removable = removable_gates(ctx.g, gates, views);
    let old_cost: u64 = removable
        .iter()
        .map(|&x| {
            let n = circuit.node(x);
            two_input_cost(n.kind(), n.fanins().len())
        })
        .sum();
    let gate_reduction = old_cost as i64 - cost.two_input_gates as i64;
    let input_labels: Vec<u128> = inputs.iter().map(|i| ctx.labels[i.index()]).collect();
    let new_paths_at_g = cost.paths_with_labels(&input_labels);
    Ok(Some(Candidate {
        gates: gates.to_vec(),
        inputs: inputs.to_vec(),
        replacement,
        gate_reduction,
        new_paths_at_g,
    }))
}

/// The cone gates that die if `g` is rewired away from this cone: gates
/// (other than `g`) that drive no primary output and all of whose consumers
/// are `g` or other dying gates. `g` itself is always included (its old
/// gate is replaced).
///
/// Both liveness facts — the primary-output references and the gate
/// consumers — come from the one maintained view. (The rebuilt-table
/// implementation derived "has external consumers" by comparing the lengths
/// of two independently constructed structures, `fanout_counts` vs
/// `fanout_table`; the only thing that difference can ever be is the
/// primary-output reference count, which the view tracks directly.)
pub(super) fn removable_gates(g: NodeId, cone: &[NodeId], views: &CircuitViews) -> Vec<NodeId> {
    let cone_set: HashSet<NodeId> = cone.iter().copied().collect();
    let mut removable: HashSet<NodeId> = cone_set.clone();
    removable.remove(&g);
    loop {
        let mut changed = false;
        let current: Vec<NodeId> = removable.iter().copied().collect();
        for x in current {
            let ok = !views.drives_output(x)
                && views.fanout(x).iter().all(|&(c, _)| c == g || removable.contains(&c));
            if !ok {
                removable.remove(&x);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut v: Vec<NodeId> = removable.into_iter().collect();
    v.push(g);
    v.sort_unstable();
    v
}

/// The unreachable cone-input combinations (satisfiability don't-cares) of
/// a cut, as a truth table over the cut. Returns `None` when everything is
/// reachable. Node BDDs must come from the same circuit *before any pass
/// edits* — stale entries (for rewired nodes) make the result conservative
/// only if unchanged; to stay sound we recompute reachability only for cuts
/// whose lines all predate the pass (checked by the caller via index
/// bounds).
pub(super) fn reachable_dc(
    manager: &mut sft_bdd::Manager,
    per_node: &[sft_bdd::BddRef],
    _circuit: &Circuit,
    inputs: &[NodeId],
) -> Result<Option<sft_truth::TruthTable>, sft_bdd::BddError> {
    if inputs.iter().any(|i| i.index() >= per_node.len()) {
        return Ok(None); // cut touches nodes created during this pass
    }
    let k = inputs.len();
    let mut dc = sft_truth::TruthTable::zero(k);
    for m in 0..(1u64 << k) {
        let mut acc = sft_bdd::BddRef::TRUE;
        for (i, &line) in inputs.iter().enumerate() {
            let bit = m >> (k - 1 - i) & 1 == 1;
            let f = per_node[line.index()];
            let lit = if bit { f } else { manager.not(f)? };
            acc = manager.and(acc, lit)?;
            if acc == sft_bdd::BddRef::FALSE {
                break;
            }
        }
        if acc == sft_bdd::BddRef::FALSE {
            dc = dc.or(&sft_truth::TruthTable::from_minterms(k, &[m]).expect("in range"));
        }
    }
    Ok(if dc.is_zero() { None } else { Some(dc) })
}
