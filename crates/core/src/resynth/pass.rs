//! One output-to-input traversal of the resynthesis procedure, applying
//! accepted replacements through journaled edits on the live circuit.

use super::candidates::{
    combined_score, enumerate_candidates, pick_better, removable_gates, score_candidate, Candidate,
    Replacement, ScoreCtx,
};
use super::{Objective, ResynthOptions};
use crate::unit::build_unit_in;
use sft_budget::{Budget, Exhausted};
use sft_netlist::{Circuit, GateKind, NodeId};
use sft_par::parallel_map;

/// Why a pass could not run to completion. Budget exhaustion is recoverable
/// (rollback + report); netlist errors are not.
pub(super) enum PassAbort {
    Budget(Exhausted),
    Netlist(sft_netlist::NetlistError),
}

impl From<sft_netlist::NetlistError> for PassAbort {
    fn from(e: sft_netlist::NetlistError) -> Self {
        PassAbort::Netlist(e)
    }
}

impl From<Exhausted> for PassAbort {
    fn from(e: Exhausted) -> Self {
        PassAbort::Budget(e)
    }
}

/// One output-to-input pass. Returns the number of replacements, or the
/// reason the pass had to be abandoned (the caller rolls back).
///
/// Runs inside the caller's edit transaction with views enabled: path
/// labels and the traversal order are snapshotted once at pass start (the
/// scoring contract), while fanout facts are read live from the maintained
/// view, which every rewire patches in place.
///
/// `skip[g]` replays a previous rejection at `g` without re-scoring; the
/// caller guarantees (via [`super::commit`]'s dirty-region diff) that `g`'s
/// scoring environment is unchanged since that rejection, and the flags are
/// honored only while this pass has not yet edited the circuit — after the
/// first replacement the environment is mid-pass state the caller could not
/// have diffed. `rejected` records (under the same freshness rule) the
/// gates this pass scored-and-rejected or replay-skipped, as input for the
/// next pass's skip set.
pub(super) fn one_pass(
    circuit: &mut Circuit,
    options: &ResynthOptions,
    budget: &Budget,
    skip: &[bool],
    rejected: &mut [bool],
) -> Result<usize, PassAbort> {
    circuit.refresh_views();
    let (labels, order) = {
        let views = circuit.views().expect("resynthesis runs with views enabled");
        (views.path_labels(), views.bfs_order())
    };
    let mut marked = vec![false; circuit.len()];
    for &o in circuit.outputs() {
        marked[o.index()] = true;
    }
    let mut consumed = vec![false; circuit.len()];
    // Satisfiability-don't-care support: BDDs of every original line. SDCs
    // only widen the search, so hitting the node limit here degrades to
    // plain identification instead of aborting the pass.
    let mut dc_state = if options.use_satisfiability_dont_cares {
        let mut manager = sft_bdd::Manager::new();
        match sft_bdd::circuit_node_bdds_budgeted(&mut manager, circuit, budget) {
            Ok(per_node) => Some((manager, per_node)),
            Err(sft_bdd::BddError::NodeLimit(_)) => None,
            Err(sft_bdd::BddError::Interrupted(e)) => return Err(e.into()),
        }
    } else {
        None
    };

    // Skip flags (and newly recorded rejections) are valid only against the
    // pass-start state the caller diffed; the first edit invalidates both.
    let mut untouched = true;
    let mut replacements = 0usize;
    for &g in order.iter().rev() {
        if g.index() >= marked.len() {
            continue; // nodes appended during this pass
        }
        if !marked[g.index()] || consumed[g.index()] {
            continue;
        }
        if !circuit.node(g).kind().is_gate() {
            continue;
        }
        budget.check()?;
        if untouched && skip.get(g.index()).copied().unwrap_or(false) {
            // Replayed rejection: same traversal as the reject branch below,
            // with the scoring skipped.
            rejected[g.index()] = true;
            for f in circuit.node(g).fanins().to_vec() {
                if f.index() < marked.len() && circuit.node(f).kind().is_gate() {
                    marked[f.index()] = true;
                }
            }
            continue;
        }
        let candidates = enumerate_candidates(circuit, g, options);
        let ctx = ScoreCtx { g, labels: &labels };
        // Scoring is read-only on the circuit, so candidates fan out to
        // worker threads; the SDC path shares one mutable BDD manager and
        // stays sequential. Merging in enumeration order keeps the chosen
        // candidate identical at any thread count.
        let scored: Vec<Result<Option<Candidate>, Exhausted>> = match &mut dc_state {
            Some(dc) => candidates
                .iter()
                .map(|(gates, inputs)| {
                    score_candidate(circuit, options, budget, &ctx, Some(dc), gates, inputs)
                })
                .collect(),
            None => {
                let circuit: &Circuit = circuit;
                parallel_map(options.jobs, &candidates, |_, (gates, inputs)| {
                    score_candidate(circuit, options, budget, &ctx, None, gates, inputs)
                })
            }
        };
        let mut best: Option<Candidate> = None;
        for s in scored {
            if let Some(candidate) = s? {
                best = Some(match best {
                    None => candidate,
                    Some(b) => pick_better(b, candidate, options.objective),
                });
            }
        }
        let old_paths_at_g = labels[g.index()];
        let accept = best.as_ref().is_some_and(|b| match options.objective {
            Objective::Gates => {
                b.gate_reduction > 0 || (b.gate_reduction == 0 && b.new_paths_at_g < old_paths_at_g)
            }
            Objective::Paths => b.new_paths_at_g < old_paths_at_g,
            Objective::Combined { gate_weight, path_weight } => {
                combined_score(b, old_paths_at_g, gate_weight, path_weight) > 0
            }
        });
        if accept {
            let b = best.expect("accept implies candidate");
            // Mark the dying cone gates as consumed *before* rewiring (the
            // removable set is computed against the pre-rewire structure).
            let removable = {
                let views = circuit.views().expect("resynthesis runs with views enabled");
                removable_gates(g, &b.gates, views)
            };
            for x in removable {
                if x != g && x.index() < consumed.len() {
                    consumed[x.index()] = true;
                }
            }
            let (kind, fanins) = match &b.replacement {
                Replacement::Unit(spec) => {
                    let top = build_unit_in(circuit, &b.inputs, spec)?;
                    match top.kind {
                        GateKind::Const0 | GateKind::Const1 => (top.kind, Vec::new()),
                        k => (k, top.fanins),
                    }
                }
                Replacement::NegatedUnit(spec, negate) => {
                    let lines: Vec<NodeId> = b
                        .inputs
                        .iter()
                        .zip(negate)
                        .map(|(&line, &neg)| {
                            if neg {
                                circuit.add_gate(GateKind::Not, vec![line])
                            } else {
                                Ok(line)
                            }
                        })
                        .collect::<Result<_, _>>()?;
                    let top = build_unit_in(circuit, &lines, spec)?;
                    match top.kind {
                        GateKind::Const0 | GateKind::Const1 => (top.kind, Vec::new()),
                        k => (k, top.fanins),
                    }
                }
                Replacement::Cover(specs) => {
                    let outs: Vec<NodeId> = specs
                        .iter()
                        .map(|spec| {
                            let top = build_unit_in(circuit, &b.inputs, spec)?;
                            crate::unit::materialize_top(circuit, top)
                        })
                        .collect::<Result<_, _>>()?;
                    if outs.len() == 1 {
                        (GateKind::Buf, outs)
                    } else {
                        (GateKind::Or, outs)
                    }
                }
            };
            circuit.rewire(g, kind, fanins)?;
            replacements += 1;
            untouched = false;
            for i in &b.inputs {
                if i.index() < marked.len() && circuit.node(*i).kind().is_gate() {
                    marked[i.index()] = true;
                }
            }
        } else {
            if untouched {
                rejected[g.index()] = true;
            }
            // The single-gate candidate is implicitly selected: continue the
            // traversal through g's fanins (Procedure 2, step 2d).
            for f in circuit.node(g).fanins().to_vec() {
                if f.index() < marked.len() && circuit.node(f).kind().is_gate() {
                    marked[f.index()] = true;
                }
            }
        }
    }
    Ok(replacements)
}
