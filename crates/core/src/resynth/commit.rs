//! The pass loop: journal checkpoints, dirty-region diffing against the
//! edit journal, incremental BDD verification, and commit/rollback.

use super::pass::{one_pass, PassAbort};
use super::{Objective, ResynthError, ResynthOptions, ResynthReport};
use sft_budget::{Budget, StopReason};
use sft_netlist::{simplify, Checkpoint, Circuit, GateKind, NodeId};
use std::collections::HashMap;

/// The cumulative verification state: one shared manager holding the
/// reference output BDDs **and** the per-node BDDs of the last committed
/// circuit. Verification is incremental: a pass result reuses the committed
/// references for every node outside the modified region and rebuilds only
/// the dirty ones, so hash-consing makes equivalence a reference comparison
/// and per-pass BDD work is proportional to the pass's edits, not the
/// circuit.
struct Verifier {
    manager: sft_bdd::Manager,
    /// Output BDDs of the input circuit — the spec every pass must match.
    reference: Vec<sft_bdd::BddRef>,
    /// Per-node BDDs of the last committed circuit, indexed by node id.
    node_refs: Vec<sft_bdd::BddRef>,
    /// BDD variable of each input position, fixed at reference build time
    /// (a DFS-derived order; see [`sft_bdd::dfs_input_order`]). Inputs are
    /// never added, dropped, or reordered by a pass, so the same map stays
    /// valid for every incremental rebuild.
    var_order: Vec<u32>,
    /// Largest node count the manager ever held.
    peak: usize,
}

impl Verifier {
    /// Checks an unswept pass result against the reference. The circuit
    /// still carries the pass's dead nodes, so its ids are the committed
    /// circuit's ids (plus the appended tail): `dirty` marks the nodes
    /// whose function may differ from the committed one, everything else
    /// keeps its committed BDD, and only live dirty nodes are rebuilt
    /// (`live` is the sweep-survival mask). On a match returns the per-node
    /// refs in pass-id space, for [`adopt`](Self::adopt) after the sweep;
    /// on a mismatch returns `None` and the caller rolls the journal back.
    fn check_pass(
        &mut self,
        circuit: &Circuit,
        dirty: &[bool],
        live: &[bool],
        budget: &Budget,
    ) -> Result<Option<Vec<sft_bdd::BddRef>>, sft_bdd::BddError> {
        let mut refs = vec![sft_bdd::BddRef::FALSE; circuit.len()];
        let mut have = vec![false; circuit.len()];
        for (i, &r) in self.node_refs.iter().enumerate() {
            if !dirty[i] {
                refs[i] = r;
                have[i] = true;
            }
        }
        let input_var: HashMap<NodeId, u32> =
            circuit.inputs().iter().enumerate().map(|(i, &id)| (id, self.var_order[i])).collect();
        // Infallible: every structural edit is cycle-checked by `rewire`.
        let order = circuit.topo_order().expect("combinational circuit");
        for id in order {
            if have[id.index()] || !live[id.index()] {
                continue;
            }
            budget.check()?;
            let node = circuit.node(id);
            let r = match node.kind() {
                GateKind::Input => self.manager.var(input_var[&id])?,
                kind => {
                    let fanins: Vec<sft_bdd::BddRef> =
                        node.fanins().iter().map(|f| refs[f.index()]).collect();
                    sft_bdd::gate_bdd(&mut self.manager, kind, &fanins)?
                }
            };
            refs[id.index()] = r;
            have[id.index()] = true;
        }
        let outs: Vec<sft_bdd::BddRef> =
            circuit.outputs().iter().map(|o| refs[o.index()]).collect();
        Ok((outs == self.reference).then_some(refs))
    }

    /// Installs the refs returned by a successful [`check_pass`] as the new
    /// committed refs, remapped from pass-id space into the swept circuit's
    /// ids.
    fn adopt(&mut self, refs: &[sft_bdd::BddRef], map: &sft_netlist::NodeMap, new_len: usize) {
        let mut node_refs = vec![sft_bdd::BddRef::FALSE; new_len];
        for (old, &r) in refs.iter().enumerate() {
            if let Some(new) = map.get(NodeId::from_index(old)) {
                node_refs[new.index()] = r;
            }
        }
        self.node_refs = node_refs;
    }

    /// Garbage-collects the manager down to the reference and the committed
    /// circuit's node BDDs, remapping both reference sets consistently.
    fn compact(&mut self) {
        let split = self.node_refs.len();
        let mut keep = std::mem::take(&mut self.node_refs);
        keep.extend_from_slice(&self.reference);
        self.manager.compact(&mut keep);
        self.reference = keep.split_off(split);
        self.node_refs = keep;
    }
}

/// The modified region of `current` (post-simplify, **unswept** — its ids
/// below `len_at(cp)` are the committed circuit's ids), reconstructed from
/// the edit journal instead of a node-by-node diff against a snapshot.
/// Three masks over `current`'s ids:
///
/// - `.0` — verification-dirty: nodes whose function of the primary inputs
///   may differ from the committed circuit's. Seeds are the changed nodes
///   (a pre-transaction image differing from the current state, or appended
///   this pass); the set is closed downstream, so everything outside keeps
///   its committed BDD. A node rewired away and back compares equal to its
///   pre-image and stays clean.
/// - `.1` — scoring-dirty: nodes whose next-pass scoring environment may
///   differ. Seeds additionally include every fanin of a changed node in
///   either its current or pre-transaction structure (its consumer multiset
///   changed) and every fanin of a node the sweep is about to drop (it
///   loses that consumer), again closed downstream. A rejected gate outside
///   this set sees byte-identical path labels, cone functions, and fanout
///   views next pass, so its rejection replays without re-scoring.
/// - `.2` — the sweep-survival (liveness) mask, shared with verification.
fn dirty_regions(current: &Circuit, cp: Checkpoint) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
    let n = current.len();
    let start_len = current.len_at(cp);
    let live = current.live_mask();
    let mut pre: Vec<Option<(GateKind, &[NodeId])>> = vec![None; start_len];
    for (id, kind, fanins) in current.pre_images_since(cp) {
        // Pre-images of appended-then-rewired nodes are irrelevant: those
        // nodes are changed by virtue of not existing at the checkpoint.
        if id.index() < start_len {
            pre[id.index()] = Some((kind, fanins));
        }
    }
    let mut bdd = vec![false; n];
    let mut score = vec![false; n];
    for i in 0..n {
        let id = NodeId::from_index(i);
        let node = current.node(id);
        let changed = i >= start_len
            || pre[i].is_some_and(|(kind, fanins)| kind != node.kind() || fanins != node.fanins());
        if changed {
            bdd[i] = true;
            score[i] = true;
            for f in node.fanins() {
                score[f.index()] = true;
            }
            if let Some(Some((_, old_fanins))) = pre.get(i) {
                for f in *old_fanins {
                    score[f.index()] = true;
                }
            }
        }
        if !live[i] {
            score[i] = true;
            for f in node.fanins() {
                score[f.index()] = true;
            }
        }
    }
    // Close both masks downstream: a node fed by a dirty node is dirty.
    let order = current.topo_order().expect("combinational circuit");
    for &id in &order {
        if bdd[id.index()] && score[id.index()] {
            continue;
        }
        for f in current.node(id).fanins() {
            if bdd[f.index()] {
                bdd[id.index()] = true;
            }
            if score[f.index()] {
                score[id.index()] = true;
            }
        }
    }
    (bdd, score, live)
}

/// The driver behind [`super::resynthesize_with_budget`]: runs passes as
/// edit transactions on the live circuit, verifying before committing and
/// rolling the journal back on any interruption.
pub(super) fn run(
    circuit: &mut Circuit,
    options: &ResynthOptions,
    budget: &Budget,
) -> Result<ResynthReport, ResynthError> {
    circuit.validate()?;
    let mut report = ResynthReport {
        gates_before: circuit.two_input_gate_count(),
        paths_before: circuit.path_count_exact(),
        ..ResynthReport::default()
    };
    // Every successful exit funnels through `finish`, which detaches the
    // views the run attached below.
    let finish = |circuit: &mut Circuit, mut report: ResynthReport, reason: StopReason| {
        circuit.disable_views();
        report.stop_reason = reason;
        report.gates_after = circuit.two_input_gate_count();
        report.paths_after = circuit.path_count_exact();
        Ok(report)
    };
    circuit.enable_views();
    // Build the reference BDDs once. If even the input circuit does not fit
    // the verification manager, no verified replacement is possible: return
    // the untouched circuit with the reason.
    let mut verifier = if options.verify_each_pass {
        let mut manager = sft_bdd::Manager::with_node_limit(options.verify_node_limit);
        let var_order = sft_bdd::dfs_input_order(circuit);
        match sft_bdd::circuit_node_bdds_ordered(&mut manager, circuit, &var_order, budget) {
            Ok(node_refs) => {
                let reference: Vec<sft_bdd::BddRef> =
                    circuit.outputs().iter().map(|o| node_refs[o.index()]).collect();
                let peak = manager.node_count();
                Some(Verifier { manager, reference, node_refs, var_order, peak })
            }
            Err(e) => {
                report.verify_nodes = manager.node_count();
                let reason = match e {
                    sft_bdd::BddError::NodeLimit(_) => StopReason::BddBlowup,
                    sft_bdd::BddError::Interrupted(x) => x.into(),
                };
                return finish(circuit, report, reason);
            }
        }
    } else {
        None
    };
    // Gates (ids of the committed circuit) whose rejection last pass is
    // outside this pass's modified region: the next pass replays the
    // rejection without re-scoring.
    let mut skip: Vec<bool> = Vec::new();
    let reason = loop {
        if report.passes >= options.max_passes {
            break StopReason::MaxPasses;
        }
        if let Err(e) = budget.check() {
            break e.into();
        }
        let before_gates = circuit.two_input_gate_count();
        let before_paths = circuit.path_count();
        let mut rejected = vec![false; circuit.len()];
        // The whole pass — replacements and the simplify cleanups — is one
        // edit transaction; every abort below rolls it back in O(#edits).
        let cp = circuit.begin_edit();
        let replacements = match one_pass(circuit, options, budget, &skip, &mut rejected) {
            Ok(n) => n,
            Err(PassAbort::Budget(e)) => {
                circuit.rollback_to(cp);
                break e.into();
            }
            Err(PassAbort::Netlist(e)) => {
                // Structural corruption is a bug, not an effort problem;
                // still hand back the last good circuit.
                circuit.rollback_to(cp);
                circuit.disable_views();
                return Err(e.into());
            }
        };
        simplify::propagate_constants(circuit);
        simplify::collapse_buffers(circuit);
        let (bdd_dirty, score_dirty, live) = dirty_regions(circuit, cp);
        // Verify *before* sweeping: the journal can still undo everything
        // (sweep compacts ids and closes the rollback window).
        let mut pending = None;
        if let Some(v) = &mut verifier {
            let outcome = v.check_pass(circuit, &bdd_dirty, &live, budget);
            v.peak = v.peak.max(v.manager.node_count());
            match outcome {
                Ok(Some(refs)) => pending = Some(refs),
                Ok(None) => {
                    circuit.rollback_to(cp);
                    break StopReason::VerificationRollback;
                }
                Err(sft_bdd::BddError::NodeLimit(_)) => {
                    circuit.rollback_to(cp);
                    break StopReason::BddBlowup;
                }
                Err(sft_bdd::BddError::Interrupted(e)) => {
                    circuit.rollback_to(cp);
                    break e.into();
                }
            }
        }
        // Commit the verified pass; only now is it safe to compact the ids.
        circuit.commit(cp);
        let map = circuit.sweep();
        if let (Some(v), Some(refs)) = (&mut verifier, &pending) {
            v.adopt(refs, &map, circuit.len());
        }
        skip = vec![false; circuit.len()];
        if options.incremental_rescoring {
            for (old, &was_rejected) in rejected.iter().enumerate() {
                if was_rejected && !score_dirty[old] {
                    if let Some(new) = map.get(NodeId::from_index(old)) {
                        skip[new.index()] = true;
                    }
                }
            }
        }
        report.passes += 1;
        report.replacements += replacements;
        let improved = match options.objective {
            Objective::Gates => circuit.two_input_gate_count() < before_gates,
            Objective::Paths => circuit.path_count() < before_paths,
            Objective::Combined { .. } => {
                circuit.two_input_gate_count() < before_gates || circuit.path_count() < before_paths
            }
        };
        if replacements == 0 || !improved {
            break StopReason::Converged;
        }
        // Another pass follows: bound the manager by the live working set.
        // Compacting on the way *into* a pass (rather than after every
        // verification) skips the pointless rebuild on the final,
        // converging pass.
        if options.compact_verifier {
            if let Some(v) = &mut verifier {
                v.compact();
            }
        }
    };
    if let Some(v) = &verifier {
        report.verify_nodes = v.peak.max(v.manager.node_count());
    }
    finish(circuit, report, reason)
}
